"""Link-level contention model for the simulated RMA fabric.

The base :class:`~repro.rma.latency.LatencyModel` charges every remote access
a distance-dependent latency and serializes accesses at the *target rank*
(end-point occupancy).  That reproduces hot-spot contention on a lock word
but not congestion *inside* the network, where many node pairs share the same
Dragonfly links — most importantly the few global links between groups.

:class:`FabricContentionModel` adds that missing piece: every inter-node RMA
call is routed over the minimal Dragonfly path
(:class:`~repro.topology.dragonfly.DragonflyTopology`) and serializes on each
link it crosses for a link-class-specific occupancy time.  Concurrent
transfers that share a link are therefore spread out in time, while transfers
on disjoint paths proceed in parallel — the behaviour that penalizes
topology-oblivious communication patterns (e.g. a D-MCS queue whose
neighbours live in different groups) relative to topology-aware ones.

The model is optional: pass it to :class:`~repro.rma.sim_runtime.SimRuntime`
via the ``fabric`` argument.  The per-run link state (when each link becomes
free) is owned by the runtime so that one model instance can be shared
between runs and configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, MutableMapping, Tuple

from repro.topology.dragonfly import DragonflyTopology, Link
from repro.topology.machine import Machine

__all__ = ["FabricContentionModel", "LinkState"]

#: Mutable map from link identifier to the virtual time at which it frees up.
LinkState = MutableMapping[Link, float]


@dataclass(frozen=True)
class FabricContentionModel:
    """Per-link latency and serialization costs over a Dragonfly topology.

    Args:
        topology: The Dragonfly connecting the machine's compute nodes.
        hop_latency_us: Propagation/forwarding latency added per traversed link.
        terminal_occupancy_us: Serialization time of a NIC/terminal link.
        local_occupancy_us: Serialization time of an intra-group (local) link.
        global_occupancy_us: Serialization time of an inter-group (global)
            link — the scarce, shared resource of a Dragonfly.
    """

    topology: DragonflyTopology
    hop_latency_us: float = 0.08
    terminal_occupancy_us: float = 0.05
    local_occupancy_us: float = 0.10
    global_occupancy_us: float = 0.35

    def __post_init__(self) -> None:
        for name in (
            "hop_latency_us",
            "terminal_occupancy_us",
            "local_occupancy_us",
            "global_occupancy_us",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        # Per-(src, dst) route cache: tuple of (link, occupancy) pairs.
        # Routes are pure functions of the (frozen) topology, so the cache is
        # safe to share between runs; it is attached via object.__setattr__
        # because the dataclass itself is frozen.  It deliberately does not
        # participate in equality/hashing.
        object.__setattr__(self, "_route_cache", {})

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def for_machine(
        cls,
        machine: Machine,
        *,
        nodes_per_router: int = 2,
        routers_per_group: int = 4,
        **costs: float,
    ) -> "FabricContentionModel":
        """Build a model whose Dragonfly hosts every compute node of ``machine``."""
        topology = DragonflyTopology.for_machine(
            machine,
            nodes_per_router=nodes_per_router,
            routers_per_group=routers_per_group,
        )
        return cls(topology=topology, **costs)

    # ------------------------------------------------------------------ #
    # Costs
    # ------------------------------------------------------------------ #

    def link_occupancy(self, link: Link) -> float:
        """Serialization time of one message on ``link``."""
        kind = link[0]
        if kind == "terminal":
            return self.terminal_occupancy_us
        if kind == "local":
            return self.local_occupancy_us
        if kind == "global":
            return self.global_occupancy_us
        raise ValueError(f"unknown link kind {kind!r}")

    def validate_machine(self, machine: Machine) -> None:
        """Ensure the topology can host every compute node of ``machine``."""
        nodes = machine.num_elements(machine.n_levels)
        if nodes > self.topology.num_nodes:
            raise ValueError(
                f"fabric topology hosts {self.topology.num_nodes} nodes but the "
                f"machine has {nodes} compute nodes"
            )

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #

    def new_state(self) -> Dict[Link, float]:
        """Fresh per-run link-availability state."""
        return {}

    def traverse(self, state: LinkState, src_node: int, dst_node: int, start_time: float) -> float:
        """Route one message and return its arrival time at the destination.

        The message crosses the minimal route link by link; on every link it
        waits until the link is free, occupies it for the link's serialization
        time and pays the per-hop latency.  ``state`` is updated in place.
        """
        if src_node == dst_node:
            return start_time
        t = float(start_time)
        hop = self.hop_latency_us
        for link, occupancy in self._route(src_node, dst_node):
            free_at = state.get(link, 0.0)
            if free_at > t:
                t = free_at
            state[link] = t + occupancy
            t += hop
        return t

    def _route(self, src_node: int, dst_node: int) -> Tuple[Tuple[Link, float], ...]:
        """Cached minimal route with the per-link occupancy pre-resolved.

        ``topology.route`` rebuilds the path (and ``link_occupancy`` re-branches
        on the link kind) on every message; under contention the same node
        pairs exchange thousands of messages, so the hot path reuses one
        immutable tuple per pair.
        """
        key = (src_node, dst_node)
        cached = self._route_cache.get(key)
        if cached is None:
            cached = tuple(
                (link, self.link_occupancy(link))
                for link in self.topology.route(src_node, dst_node)
            )
            self._route_cache[key] = cached
        return cached

    def path_latency(self, src_node: int, dst_node: int) -> float:
        """Uncontended latency of the route between two nodes."""
        if src_node == dst_node:
            return 0.0
        return self.hop_latency_us * len(self.topology.route(src_node, dst_node))

    def describe(self) -> str:
        return (
            f"{self.topology.describe()} hop={self.hop_latency_us}us "
            f"occupancy terminal/local/global="
            f"{self.terminal_occupancy_us}/{self.local_occupancy_us}/{self.global_occupancy_us}us"
        )
