"""Small-P abstract model *generated from* :mod:`repro.core.rma_rw`.

The hand-written :func:`~repro.verification.lock_models.rw_counter_model`
abstracts the writer queue to a single test-and-set word; this module builds
the model the paper's Section 4.4 SPIN experiment actually calls for: the
**implementation's own state machine**, extracted step by step from
``RMARWLockHandle``'s writer and reader acquire/release paths at ``N = 1``
(one tree level, one physical counter — the shape of
``Machine.single_node(P)``).

Fidelity rules:

* every RMA call of the real code (``put``/``fao``/``cas``/``accumulate``/
  ``get``) is one atomic model transition, in the exact order the
  implementation issues them — including the *non-atomic, multi-step counter
  reset* of ``DistributedCounterHandle.reset_counter`` whose read/accumulate
  race is the subtlest part of the protocol;
* every spin (``spin_while`` / ``spin_on_cells``) is a blocked transition
  guarded by the same predicate the implementation evaluates, including the
  ``ARRIVE > T_R`` deviation from Listing 9 and the stranded-counter
  recovery path of ``spin_until_read_mode``;
* the protocol constants (``NULL_RANK``, ``STATUS_WAIT``,
  ``STATUS_MODE_CHANGE``, ``ACQUIRE_START``, ``WRITE_FLAG``) are imported
  from :mod:`repro.core.constants` — the very objects the implementation
  uses — and the thresholds default to the values of a real
  :class:`~repro.core.rma_rw.RMARWLockSpec` built through the scheme
  registry for the same process count.

``mutant`` deliberately re-introduces known-unsafe variants so the
test-suite can prove the checker finds real violations in *this* state
machine, not just in toy models:

* ``"skip-drain"`` — the writer skips the reader-drain wait of Section 4.1
  (an invented bug; the checker finds the reader/writer overlap);
* ``"racy-reset"`` — the counter reset as the seed port implemented it: two
  unconditional accumulates from a stale read, clearing the WRITE flag in
  every caller.  This is the **actual bug this model found** (see
  ``DistributedCounterHandle.reset_counter``): a reader's saturation reset
  racing a writer's mode switch erases the WRITE flag and lets a reader and
  the writer coexist in the critical section; racing resets can also drive
  ``DEPART`` negative and deadlock every participant.  The live chaos sweep
  reproduced the deadlock (``t_r=1``, perturbation seed 51); the fixed
  CAS-claimed reset passes both the checker and the sweep.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.constants import (
    ACQUIRE_START,
    NULL_RANK,
    STATUS_MODE_CHANGE,
    STATUS_WAIT,
    WRITE_FLAG,
)
from repro.verification.lock_models import ModelSpec

__all__ = [
    "alock_impl_model",
    "lease_impl_model",
    "lock_server_impl_model",
    "repair_queue_impl_model",
    "rma_rw_impl_model",
]

_NIL = NULL_RANK


def _real_spec(num_processes: int, t_r: Optional[int], t_w: Optional[int]):
    """Build the real RMA-RW spec through the registry (single-node shape)."""
    from repro.api.registry import get_scheme
    from repro.topology.machine import Machine

    machine = Machine.single_node(num_processes)
    params: Dict[str, int] = {}
    if t_r is not None:
        params["t_r"] = t_r
    if t_w is not None:
        params["t_w"] = t_w
    return get_scheme("rma-rw").build(machine, **params)


def rma_rw_impl_model(
    num_readers: int = 2,
    num_writers: int = 1,
    *,
    t_r: Optional[int] = 1,
    t_w: Optional[int] = 2,
    reader_rounds: int = 1,
    writer_rounds: int = 1,
    mutant: Optional[str] = None,
) -> ModelSpec:
    """The RMA-RW root protocol as implemented, ready for the model checker.

    Process ids ``0 .. num_readers-1`` are readers, the rest writers.
    ``t_r``/``t_w`` default to the listed small values to keep the state
    space exhaustive-checkable; passing ``None`` adopts the real spec's
    defaults instead.  ``mutant="skip-drain"`` removes the writer's
    reader-drain wait (the bug the paper's Section 4.1 argument rules out).
    """
    if num_readers < 0 or num_writers < 0 or num_readers + num_writers < 1:
        raise ValueError("need at least one process")
    if mutant not in (None, "skip-drain", "racy-reset"):
        raise ValueError(f"unknown mutant {mutant!r}")
    num_processes = num_readers + num_writers
    spec = _real_spec(num_processes, t_r, t_w)
    if spec.counter.num_counters != 1:
        raise ValueError("the N=1 model assumes a single physical counter")
    t_r_val = spec.reader_threshold
    t_w_val = spec.writer_threshold
    skip_drain = mutant == "skip-drain"
    racy_reset = mutant == "racy-reset"

    initial_state = {
        "tail": _NIL,
        "next": [_NIL] * num_processes,
        "status": [0] * num_processes,
        "arrive": 0,
        "depart": 0,
        "readers_in": 0,
        "writers_in": 0,
        "procs": [
            {
                "pc": "r_top" if pid < num_readers else "w_set_next",
                "pred": _NIL,
                "succ": _NIL,
                "s": 0,
                "nstat": 0,
                "creset": False,
                "prev": 0,
                "tail_snap": _NIL,
                "a_snap": 0,
                "d_snap": 0,
                "cont": "",
                "clear": False,
                "barrier": False,
                "rounds": 0,
            }
            for pid in range(num_processes)
        ],
    }

    def is_reader(pid: int) -> bool:
        return pid < num_readers

    def active_readers(state: Dict) -> int:
        arrive = state["arrive"]
        if arrive >= WRITE_FLAG:
            arrive -= WRITE_FLAG
        return arrive - state["depart"]

    def step(state: Dict, pid: int) -> bool:  # noqa: C901 - mirrors the impl
        me = state["procs"][pid]
        pc = me["pc"]

        # -- DistributedCounterHandle.reset_counter (Listing 6, middle) ----- #
        # One RMA call per transition, in the implementation's issue order.
        # The fixed algorithm CAS-claims the depart fold and clears the WRITE
        # flag only when me["clear"] (writer paths); the "racy-reset" mutant
        # replays the seed port's unconditional stale-read accumulates.
        if pc == "rst_read_arrive":
            me["a_snap"] = state["arrive"]
            me["pc"] = "rst_read_depart"
        elif pc == "rst_read_depart":
            me["d_snap"] = state["depart"]
            me["pc"] = "rst_apply_arrive" if racy_reset else "rst_claim"
        elif pc == "rst_claim":
            # cas(0, d_snap) on DEPART: claim exactly the observed departures.
            if state["depart"] != me["d_snap"]:
                me["pc"] = "rst_read_arrive"  # lost the race; re-read
            else:
                state["depart"] = 0
                me["pc"] = "rst_fold"
        elif pc == "rst_fold":
            sub = -me["d_snap"]
            if me["clear"] and me["a_snap"] >= WRITE_FLAG:
                sub -= WRITE_FLAG
            state["arrive"] += sub
            me["pc"] = me["cont"]
        elif pc == "rst_apply_arrive":  # racy-reset mutant only
            sub = -me["d_snap"]
            if me["a_snap"] >= WRITE_FLAG:
                sub -= WRITE_FLAG
            state["arrive"] += sub
            me["pc"] = "rst_apply_depart"
        elif pc == "rst_apply_depart":  # racy-reset mutant only
            state["depart"] += -me["d_snap"]
            me["pc"] = me["cont"]

        # -- Reader: RMARWLockHandle.acquire_read (Listing 9) --------------- #
        elif pc == "r_top":
            me["pc"] = "r_wait" if me["barrier"] else "r_arrive"
        elif pc == "r_arrive":
            # dc.reader_arrive(): FAO(+1) on ARRIVE.
            me["prev"] = state["arrive"]
            state["arrive"] += 1
            me["pc"] = "r_check"
        elif pc == "r_check":
            if me["prev"] < t_r_val:
                me["pc"] = "r_enter"
            else:
                me["barrier"] = True
                me["pc"] = "r_read_tail" if me["prev"] == t_r_val else "r_backoff"
        elif pc == "r_read_tail":
            # First to saturate: defer to a queued writer, else reset ourselves.
            if state["tail"] == _NIL:
                me["cont"] = "r_reset_done"
                me["clear"] = False  # reader resets never clear the flag
                me["pc"] = "rst_read_arrive"
            else:
                me["pc"] = "r_backoff"
        elif pc == "r_reset_done":
            me["barrier"] = False
            me["pc"] = "r_backoff"
        elif pc == "r_backoff":
            # dc.reader_backoff(): undo the optimistic arrival.
            state["arrive"] -= 1
            me["pc"] = "r_top"
        elif pc == "r_wait":
            # dc.spin_until_read_mode: spin while saturated (ARRIVE > T_R —
            # the implementation's liveness deviation from Listing 9), in
            # WRITE mode, or while admitted readers are still inside.
            arrive = state["arrive"]
            if arrive > t_r_val and (arrive >= WRITE_FLAG or active_readers(state) > 0):
                return False
            if arrive <= t_r_val:
                me["pc"] = "r_arrive"
            else:
                # Stranded: saturated, READ mode, nobody active.
                me["pc"] = "r_stranded_tail"
        elif pc == "r_stranded_tail":
            # writer_waiting(): a queued root writer will reset the counter.
            if state["tail"] != _NIL:
                me["pc"] = "r_stranded_spin"
            else:
                me["cont"] = "r_arrive"
                me["clear"] = False  # recovery is a reader reset
                me["pc"] = "rst_read_arrive"
        elif pc == "r_stranded_spin":
            if state["arrive"] > t_r_val:
                return False
            me["pc"] = "r_arrive"
        elif pc == "r_enter":
            state["readers_in"] += 1
            me["pc"] = "r_exit"
        elif pc == "r_exit":
            state["readers_in"] -= 1
            me["pc"] = "r_depart"
        elif pc == "r_depart":
            # release_read -> dc.reader_depart(): accumulate(+1) on DEPART.
            state["depart"] += 1
            me["rounds"] += 1
            me["pc"] = "done" if me["rounds"] >= reader_rounds else "r_top"

        # -- Writer: RMARWLockHandle._writer_acquire_root (Listing 7) ------- #
        elif pc == "w_set_next":
            state["next"][pid] = _NIL
            me["pc"] = "w_set_status"
        elif pc == "w_set_status":
            state["status"][pid] = STATUS_WAIT
            me["pc"] = "w_swap"
        elif pc == "w_swap":
            # FAO(REPLACE) on the root tail.
            me["pred"] = state["tail"]
            state["tail"] = pid
            me["pc"] = "w_to_write" if me["pred"] == _NIL else "w_link"
        elif pc == "w_link":
            state["next"][me["pred"]] = pid
            me["pc"] = "w_spin"
        elif pc == "w_spin":
            if state["status"][pid] == STATUS_WAIT:
                return False
            me["s"] = state["status"][pid]
            if me["s"] == STATUS_MODE_CHANGE:
                # The readers have the lock; win it back.
                me["pc"] = "w_to_write"
            else:
                # Passed directly in WRITE mode with its count intact.
                me["pc"] = "w_enter"
        elif pc == "w_to_write":
            # dc.set_counters_to_write(): accumulate(+WRITE_FLAG) on ARRIVE.
            state["arrive"] += WRITE_FLAG
            me["pc"] = "w_enter" if skip_drain else "w_drain"
        elif pc == "w_drain":
            # dc.wait_readers_drained(): Section 4.1's re-check.
            if active_readers(state) > 0:
                return False
            me["pc"] = "w_ack"
        elif pc == "w_ack":
            state["status"][pid] = ACQUIRE_START
            me["pc"] = "w_enter"
        elif pc == "w_enter":
            state["writers_in"] += 1
            me["pc"] = "w_exit"
        elif pc == "w_exit":
            state["writers_in"] -= 1
            me["pc"] = "wr_read_stat"

        # -- Writer: RMARWLockHandle._writer_release_root (Listing 8) ------- #
        elif pc == "wr_read_stat":
            me["nstat"] = state["status"][pid] + 1
            me["creset"] = False
            if me["nstat"] >= t_w_val:
                # T_W reached: reset the counter, pass to the readers.
                me["cont"] = "wr_reset_tw_done"
                me["clear"] = True  # the writer clears its own flag
                me["pc"] = "rst_read_arrive"
            else:
                me["pc"] = "wr_read_succ"
        elif pc == "wr_reset_tw_done":
            me["nstat"] = STATUS_MODE_CHANGE
            me["creset"] = True
            me["pc"] = "wr_read_succ"
        elif pc == "wr_read_succ":
            me["succ"] = state["next"][pid]
            if me["succ"] != _NIL:
                me["pc"] = "wr_pass"
            elif not me["creset"]:
                # Nobody known to wait: let the readers in.
                me["cont"] = "wr_reset_nosucc_done"
                me["clear"] = True
                me["pc"] = "rst_read_arrive"
            else:
                me["pc"] = "wr_cas"
        elif pc == "wr_reset_nosucc_done":
            me["nstat"] = STATUS_MODE_CHANGE
            me["pc"] = "wr_cas"
        elif pc == "wr_cas":
            if state["tail"] == pid:
                state["tail"] = _NIL
                me["pc"] = "w_round"
            else:
                me["pc"] = "wr_waitnext"
        elif pc == "wr_waitnext":
            if state["next"][pid] == _NIL:
                return False
            me["succ"] = state["next"][pid]
            me["pc"] = "wr_pass"
        elif pc == "wr_pass":
            state["status"][me["succ"]] = me["nstat"]
            me["pc"] = "w_round"
        elif pc == "w_round":
            me["rounds"] += 1
            me["pc"] = "done" if me["rounds"] >= writer_rounds else "w_set_next"
        else:  # pragma: no cover - "done" filtered by is_done
            return False
        return True

    def is_done(state: Dict, pid: int) -> bool:
        return state["procs"][pid]["pc"] == "done"

    def invariant(state: Dict) -> bool:
        if state["writers_in"] > 1:
            return False
        if state["writers_in"] == 1 and state["readers_in"] > 0:
            return False
        return True

    variant = f",{mutant}" if mutant else ""
    return ModelSpec(
        name=(
            f"rma_rw_impl[r={num_readers},w={num_writers},"
            f"T_R={t_r_val},T_W={t_w_val}{variant}]"
        ),
        num_processes=num_processes,
        initial_state=initial_state,
        step=step,
        is_done=is_done,
        invariant=invariant,
        invariant_name="reader/writer exclusion (implementation model)",
    )


# --------------------------------------------------------------------------- #
# Crash-extended models (the fault subsystem's exhaustive counterpart)
# --------------------------------------------------------------------------- #
#
# The live fault sweep (repro faults) kills ranks at *one* seeded point per
# run; these models let the checker explore *every* crash timing at P=2-3.
# Crashes and lease expiry are modelled as virtual processes appended after
# the real ones: their single job is "fire the event if its guard allows,
# else finish as a no-op", so the checker's interleaving enumeration doubles
# as an enumeration of crash/expiry timings.  A crashed process's pc becomes
# "dead", which counts as done — death must not read as a deadlock.

def lease_impl_model(
    num_processes: int = 2,
    *,
    rounds: int = 1,
    crash_pid: int = 0,
    mutant: Optional[str] = None,
) -> ModelSpec:
    """The lease lock of :mod:`repro.fault.lease_lock` with a crashing holder.

    Real processes ``0 .. num_processes-1`` run ``rounds`` acquire/release
    pairs against a single abstract lock word ``(owner, epoch, expired)``.
    Two virtual processes follow: a **crash process** that kills
    ``crash_pid`` at any reachable point (the checker explores all of them),
    and an **expiry process** whose guard is the failure-detector contract —
    it may mark the lease expired only while the word's owner is the crashed
    process (a lease term far above every critical-section length means an
    unexpired lease implies a live holder; see the scheme's docstring).

    Mutants:

    * ``"no-lease"`` — the expiry process never fires: a holder death inside
      the critical section strands every waiter (the checker reports the
      deadlock — the lost-lock hazard of non-recovering locks).
    * ``"early-expiry"`` — the expiry guard drops the holder-is-dead clause:
      expiry can hit a *live* holder mid-CS and the takeover double-grants
      (the checker reports the mutual-exclusion violation — the hazard a
      too-short lease term creates in production).
    """
    if num_processes < 1:
        raise ValueError("need at least one real process")
    if not 0 <= crash_pid < num_processes:
        raise ValueError(f"crash_pid {crash_pid} out of range")
    if mutant not in (None, "no-lease", "early-expiry"):
        raise ValueError(f"unknown mutant {mutant!r}")
    no_lease = mutant == "no-lease"
    early_expiry = mutant == "early-expiry"
    crash_proc = num_processes
    expiry_proc = num_processes + 1

    initial_state = {
        "owner": _NIL,
        "epoch": 0,
        "expired": False,
        "cs": [],
        "crashed": _NIL,
        "procs": [
            {"pc": "a_poll", "my_epoch": -1, "rounds": 0}
            for _ in range(num_processes)
        ]
        + [{"pc": "fire"}, {"pc": "fire"}],
    }

    def step(state: Dict, pid: int) -> bool:  # noqa: C901 - mirrors the impl
        # -- virtual crash process ------------------------------------------ #
        if pid == crash_proc:
            victim = state["procs"][crash_pid]
            if victim["pc"] not in ("done", "dead"):
                state["crashed"] = crash_pid
                if crash_pid in state["cs"]:
                    state["cs"].remove(crash_pid)
                victim["pc"] = "dead"
            state["procs"][pid]["pc"] = "done"
            return True
        # -- virtual lease-expiry process ----------------------------------- #
        if pid == expiry_proc:
            owner = state["owner"]
            can_expire = owner != _NIL and not state["expired"] and (
                early_expiry or owner == state["crashed"]
            )
            if can_expire and not no_lease:
                state["expired"] = True
                state["procs"][pid]["pc"] = "done"
                return True
            if all(
                state["procs"][p]["pc"] in ("done", "dead")
                for p in range(num_processes)
            ):
                # Nothing left to recover: retire without firing.  (Finishing
                # earlier would let the checker discard the expiry exactly in
                # the branches that need it.)
                state["procs"][pid]["pc"] = "done"
                return True
            return False

        # -- real processes: LeaseLockHandle, one RMA per transition -------- #
        me = state["procs"][pid]
        pc = me["pc"]
        if pc == "a_poll":
            # get + CAS folded into one atomic transition each way: the real
            # lock's get/CAS pair retries on interference, which the model
            # expresses by only stepping when the claim would succeed.
            if state["owner"] == _NIL:
                state["owner"] = pid
                state["epoch"] += 1
                state["expired"] = False
                me["my_epoch"] = state["epoch"]
                me["pc"] = "cs_enter"
            elif state["expired"]:
                # Lease takeover: bump the epoch so the stale release fences.
                state["owner"] = pid
                state["epoch"] += 1
                state["expired"] = False
                me["my_epoch"] = state["epoch"]
                me["pc"] = "cs_enter"
            else:
                return False  # polling: blocked until free or expired
        elif pc == "cs_enter":
            state["cs"].append(pid)
            me["pc"] = "cs_exit"
        elif pc == "cs_exit":
            state["cs"].remove(pid)
            me["pc"] = "rel"
        elif pc == "rel":
            # Full-word CAS: only the exact installed (owner, epoch) unlocks;
            # a takeover bumped the epoch, so the stale release is a no-op.
            if state["owner"] == pid and state["epoch"] == me["my_epoch"]:
                state["owner"] = _NIL
                state["expired"] = False
            me["rounds"] += 1
            me["pc"] = "done" if me["rounds"] >= rounds else "a_poll"
        else:  # pragma: no cover - done/dead filtered by is_done
            return False
        return True

    def is_done(state: Dict, pid: int) -> bool:
        return state["procs"][pid]["pc"] in ("done", "dead")

    def invariant(state: Dict) -> bool:
        return len(state["cs"]) <= 1

    variant = f",{mutant}" if mutant else ""
    return ModelSpec(
        name=f"lease_impl[P={num_processes},crash={crash_pid}{variant}]",
        num_processes=num_processes + 2,
        initial_state=initial_state,
        step=step,
        is_done=is_done,
        invariant=invariant,
        invariant_name="mutual exclusion under holder crash (lease model)",
    )


def repair_queue_impl_model(
    num_processes: int = 3,
    *,
    crash_pid: int = 1,
    racy: bool = False,
) -> ModelSpec:
    """The repair-MCS queue of :mod:`repro.fault.repair_mcs` with a dying waiter.

    Real processes each acquire once through the MCS enqueue (reset node,
    tail swap, predecessor link, status spin) and release through the repair
    walk, one RMA call per transition.  A virtual crash process kills
    ``crash_pid`` — but only while it is *parked* on its status word with the
    grant still pending, which is the waiter-crash scenario the scheme
    declares.  (A crash between the tail swap and the predecessor link
    strands the releaser behind a link that never comes; no queue-repair
    scheme can recover that without leases, which is exactly why the fault
    sweep's kill placement targets the parked phase and why holder crashes
    are expected-unavailable.)

    The checker explores every interleaving of the crash against the other
    processes' enqueues, which includes the repair walk's hardest case: the
    dead waiter sits at the tail while a racer is mid-enqueue behind it.  The
    correct walk re-polls the dead node's next pointer after the closing CAS
    fails; the ``racy=True`` mutant treats the failed CAS as "queue drained",
    orphans the racer, and the checker reports the resulting deadlock.
    """
    if num_processes < 2:
        raise ValueError("need at least two real processes")
    if not 0 <= crash_pid < num_processes:
        raise ValueError(f"crash_pid {crash_pid} out of range")
    crash_proc = num_processes
    wait, granted = 0, 1

    initial_state = {
        "tail": _NIL,
        "next": [_NIL] * num_processes,
        "status": [wait] * num_processes,
        "cs": [],
        "crashed": _NIL,
        "procs": [
            {"pc": "init", "pred": _NIL, "succ": _NIL} for _ in range(num_processes)
        ]
        + [{"pc": "fire"}],
    }

    def step(state: Dict, pid: int) -> bool:  # noqa: C901 - mirrors the impl
        # -- virtual crash process ------------------------------------------ #
        if pid == crash_proc:
            victim = state["procs"][crash_pid]
            window_open = victim["pc"] == "spin" and state["status"][crash_pid] == wait
            # A releaser at g_grant already consulted the failure detector
            # (g_check) and committed to this successor; a crash inside that
            # write is a grant-to-a-corpse TOCTOU no detector-based repair can
            # see, i.e. a holder crash — outside the declared scenario, so
            # the crash process waits it out.
            committed = any(
                p["pc"] == "g_grant" and p["succ"] == crash_pid
                for p in state["procs"][:num_processes]
            )
            if window_open and not committed:
                state["crashed"] = crash_pid
                victim["pc"] = "dead"
                state["procs"][pid]["pc"] = "done"
                return True
            if victim["pc"] in ("init", "swap", "link", "spin"):
                return False  # the parked window may still open: wait for it
            state["procs"][pid]["pc"] = "done"  # window closed: retire unfired
            return True

        # -- real processes: RepairMCSLockHandle ----------------------------- #
        me = state["procs"][pid]
        pc = me["pc"]
        if pc == "init":
            state["next"][pid] = _NIL
            state["status"][pid] = wait
            me["pc"] = "swap"
        elif pc == "swap":
            me["pred"] = state["tail"]
            state["tail"] = pid
            me["pc"] = "cs_enter" if me["pred"] == _NIL else "link"
        elif pc == "link":
            state["next"][me["pred"]] = pid
            me["pc"] = "spin"
        elif pc == "spin":
            if state["status"][pid] == wait:
                return False
            me["pc"] = "cs_enter"
        elif pc == "cs_enter":
            state["cs"].append(pid)
            me["pc"] = "cs_exit"
        elif pc == "cs_exit":
            state["cs"].remove(pid)
            me["pc"] = "rel_read"
        elif pc == "rel_read":
            me["succ"] = state["next"][pid]
            me["pc"] = "g_check" if me["succ"] != _NIL else "rel_cas"
        elif pc == "rel_cas":
            if state["tail"] == pid:
                state["tail"] = _NIL
                me["pc"] = "done"
            else:
                me["pc"] = "rel_waitnext"
        elif pc == "rel_waitnext":
            if state["next"][pid] == _NIL:
                return False
            me["succ"] = state["next"][pid]
            me["pc"] = "g_check"
        # -- the repair walk (_grant) --------------------------------------- #
        elif pc == "g_check":
            if state["crashed"] == me["succ"]:
                me["pc"] = "g_read_next"
            else:
                me["pc"] = "g_grant"
        elif pc == "g_read_next":
            nn = state["next"][me["succ"]]
            if nn == _NIL:
                me["pc"] = "g_cas"
            else:
                me["succ"] = nn
                me["pc"] = "g_check"
        elif pc == "g_cas":
            if state["tail"] == me["succ"]:
                state["tail"] = _NIL
                me["pc"] = "done"  # queue drained over the dead tail
            elif racy:
                me["pc"] = "done"  # WRONG: the mid-enqueue racer is orphaned
            else:
                me["pc"] = "g_settle"
        elif pc == "g_settle":
            # The closing CAS lost: re-poll the dead node's next pointer
            # until the racer's link write lands.
            if state["next"][me["succ"]] == _NIL:
                return False
            me["succ"] = state["next"][me["succ"]]
            me["pc"] = "g_check"
        elif pc == "g_grant":
            state["status"][me["succ"]] = granted
            me["pc"] = "done"
        else:  # pragma: no cover - done/dead filtered by is_done
            return False
        return True

    def is_done(state: Dict, pid: int) -> bool:
        return state["procs"][pid]["pc"] in ("done", "dead")

    def invariant(state: Dict) -> bool:
        return len(state["cs"]) <= 1

    variant = ",racy" if racy else ""
    return ModelSpec(
        name=f"repair_queue_impl[P={num_processes},crash={crash_pid}{variant}]",
        num_processes=num_processes + 1,
        initial_state=initial_state,
        step=step,
        is_done=is_done,
        invariant=invariant,
        invariant_name="mutual exclusion under waiter crash (repair-MCS model)",
    )


# --------------------------------------------------------------------------- #
# Competing lock families (the PR-9 gauntlet entries)
# --------------------------------------------------------------------------- #

def alock_impl_model(
    num_local: int = 1,
    num_remote: int = 2,
    *,
    rounds: int = 1,
    mutant: Optional[str] = None,
) -> ModelSpec:
    """The asymmetric lock of :mod:`repro.related.alock`, one RMA per step.

    Process ids ``0 .. num_local-1`` are node-local fast-path ranks (a
    blocked CAS transition on the owner word — the model's analogue of the
    backoff retry loop); the rest are remote ranks running the MCS enqueue,
    the status park and the head-only owner claim, in the implementation's
    issue order.  The safety argument the checker certifies is exactly the
    one the scheme's docstring makes: both paths enter only through
    ``CAS(free -> rank)`` on the single owner word, so no interleaving of
    barging locals, parked waiters and queue hand-offs can double-grant.

    ``mutant="skip-owner-cas"`` replays the tempting wrong design where a
    granted remote head trusts the queue hand-off and enters without
    claiming the owner word — the checker finds the mutual-exclusion
    violation against a barging local.
    """
    if num_local < 0 or num_remote < 0 or num_local + num_remote < 1:
        raise ValueError("need at least one process")
    if mutant not in (None, "skip-owner-cas"):
        raise ValueError(f"unknown mutant {mutant!r}")
    skip_owner_cas = mutant == "skip-owner-cas"
    num_processes = num_local + num_remote

    initial_state = {
        "owner": _NIL,
        "tail": _NIL,
        "next": [_NIL] * num_processes,
        "head": [False] * num_processes,
        "cs": [],
        "procs": [
            {
                "pc": "l_claim" if pid < num_local else "r_init",
                "pred": _NIL,
                "succ": _NIL,
                "rounds": 0,
            }
            for pid in range(num_processes)
        ],
    }

    def is_local(pid: int) -> bool:
        return pid < num_local

    def step(state: Dict, pid: int) -> bool:  # noqa: C901 - mirrors the impl
        me = state["procs"][pid]
        pc = me["pc"]

        # -- shared owner-word claim (the CAS retry loop, both paths) ------- #
        if pc in ("l_claim", "r_claim"):
            if state["owner"] != _NIL:
                return False  # CAS lost: the impl backs off and retries
            state["owner"] = pid
            me["pc"] = "cs_enter"
        elif pc == "cs_enter":
            state["cs"].append(pid)
            me["pc"] = "cs_exit"
        elif pc == "cs_exit":
            state["cs"].remove(pid)
            me["pc"] = "rel_owner"
        elif pc == "rel_owner":
            state["owner"] = _NIL
            me["pc"] = "round_done" if is_local(pid) else "rel_read"

        # -- remote slow path: MCS enqueue + head-only claim ---------------- #
        elif pc == "r_init":
            state["next"][pid] = _NIL
            state["head"][pid] = False
            me["pc"] = "r_swap"
        elif pc == "r_swap":
            me["pred"] = state["tail"]
            state["tail"] = pid
            if me["pred"] == _NIL:
                me["pc"] = "cs_enter" if skip_owner_cas else "r_claim"
            else:
                me["pc"] = "r_link"
        elif pc == "r_link":
            state["next"][me["pred"]] = pid
            me["pc"] = "r_spin"
        elif pc == "r_spin":
            if not state["head"][pid]:
                return False
            me["pc"] = "cs_enter" if skip_owner_cas else "r_claim"

        # -- remote release: hand the headship down the queue --------------- #
        elif pc == "rel_read":
            me["succ"] = state["next"][pid]
            me["pc"] = "r_notify" if me["succ"] != _NIL else "rel_cas"
        elif pc == "rel_cas":
            if state["tail"] == pid:
                state["tail"] = _NIL
                me["pc"] = "round_done"
            else:
                me["pc"] = "rel_waitnext"
        elif pc == "rel_waitnext":
            if state["next"][pid] == _NIL:
                return False
            me["succ"] = state["next"][pid]
            me["pc"] = "r_notify"
        elif pc == "r_notify":
            state["head"][me["succ"]] = True
            me["pc"] = "round_done"

        elif pc == "round_done":
            me["rounds"] += 1
            if me["rounds"] >= rounds:
                me["pc"] = "done"
            else:
                me["pc"] = "l_claim" if is_local(pid) else "r_init"
        else:  # pragma: no cover - "done" filtered by is_done
            return False
        return True

    def is_done(state: Dict, pid: int) -> bool:
        return state["procs"][pid]["pc"] == "done"

    def invariant(state: Dict) -> bool:
        return len(state["cs"]) <= 1

    variant = f",{mutant}" if mutant else ""
    return ModelSpec(
        name=f"alock_impl[l={num_local},r={num_remote}{variant}]",
        num_processes=num_processes,
        initial_state=initial_state,
        step=step,
        is_done=is_done,
        invariant=invariant,
        invariant_name="mutual exclusion (asymmetric-lock model)",
    )


def lock_server_impl_model(
    num_processes: int = 3,
    *,
    queue_threshold: int = 1,
    rounds: int = 1,
    mutant: Optional[str] = None,
) -> ModelSpec:
    """The lock-server grant queue of :mod:`repro.related.lock_server`.

    Every client runs the implementation's decision loop with the real read
    granularity: the ``next_ticket`` read, the ``grant`` read and the claim
    RMW are three separate transitions, so the checker explores exactly the
    stale-snapshot races the retry path is exposed to.  The claim CAS on
    ``next_ticket`` validates the snapshot the way the implementation does;
    the queue path is an unconditional FAO.  The invariant is the ticket
    invariant: at most one client holds (and it owns ticket ``grant``).

    ``mutant="blind-fast-path"`` replays the naive retry design the paper
    warns against: a client that *observed* an empty queue enters without
    the claim RMW.  Two clients sharing the observation double-grant — the
    checker reports the mutual-exclusion violation.
    """
    if num_processes < 1:
        raise ValueError("need at least one process")
    if queue_threshold < 0:
        raise ValueError("queue_threshold must be >= 0")
    if mutant not in (None, "blind-fast-path"):
        raise ValueError(f"unknown mutant {mutant!r}")
    blind = mutant == "blind-fast-path"

    initial_state = {
        "nxt": 0,
        "grant": 0,
        "cs": [],
        "procs": [
            {"pc": "c_read_next", "t": 0, "g": 0, "ticket": -1, "rounds": 0}
            for _ in range(num_processes)
        ],
    }

    def step(state: Dict, pid: int) -> bool:  # noqa: C901 - mirrors the impl
        me = state["procs"][pid]
        pc = me["pc"]
        if pc == "c_read_next":
            me["t"] = state["nxt"]
            me["pc"] = "c_read_grant"
        elif pc == "c_read_grant":
            me["g"] = state["grant"]
            me["pc"] = "c_decide"
        elif pc == "c_decide":
            depth = me["t"] - me["g"]
            if depth > queue_threshold:
                me["pc"] = "c_enqueue"
            elif depth == 0:
                me["pc"] = "c_blind_enter" if blind else "c_cas"
            else:
                # Retry mode: poll until the queue drains or overflows.  The
                # guard keeps the transition blocked while the *current*
                # state still reads as mid-depth, so polling does not spin
                # the checker through unchanged states.
                cur_depth = state["nxt"] - state["grant"]
                if 0 < cur_depth <= queue_threshold:
                    return False
                me["pc"] = "c_read_next"
        elif pc == "c_cas":
            # CAS(next_ticket: t -> t+1): the claim validates the snapshot.
            if state["nxt"] == me["t"]:
                state["nxt"] += 1
                me["ticket"] = me["t"]
                me["pc"] = "c_spin"
            else:
                me["pc"] = "c_read_next"
        elif pc == "c_blind_enter":  # blind-fast-path mutant only
            me["ticket"] = state["grant"]
            me["pc"] = "cs_enter"
        elif pc == "c_enqueue":
            me["ticket"] = state["nxt"]
            state["nxt"] += 1
            me["pc"] = "c_spin"
        elif pc == "c_spin":
            if state["grant"] != me["ticket"]:
                return False
            me["pc"] = "cs_enter"
        elif pc == "cs_enter":
            state["cs"].append(pid)
            me["pc"] = "cs_exit"
        elif pc == "cs_exit":
            state["cs"].remove(pid)
            me["pc"] = "c_rel"
        elif pc == "c_rel":
            state["grant"] += 1
            me["ticket"] = -1
            me["rounds"] += 1
            me["pc"] = "done" if me["rounds"] >= rounds else "c_read_next"
        else:  # pragma: no cover - "done" filtered by is_done
            return False
        return True

    def is_done(state: Dict, pid: int) -> bool:
        return state["procs"][pid]["pc"] == "done"

    def invariant(state: Dict) -> bool:
        return len(state["cs"]) <= 1

    variant = f",{mutant}" if mutant else ""
    return ModelSpec(
        name=f"lock_server_impl[P={num_processes},Q={queue_threshold}{variant}]",
        num_processes=num_processes,
        initial_state=initial_state,
        step=step,
        is_done=is_done,
        invariant=invariant,
        invariant_name="mutual exclusion (lock-server model)",
    )
