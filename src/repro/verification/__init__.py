"""Model checking of the lock protocols (the paper's Section 4.4, without SPIN)."""

from repro.verification.fairness import (
    BypassAnalyzer,
    BypassResult,
    FairnessSpec,
    mcs_fairness,
    tas_fairness,
    ticket_fairness,
)
from repro.verification.interleaving import (
    CheckResult,
    InvariantViolation,
    ModelChecker,
    ModelDeadlock,
    StateExplosionError,
)
from repro.verification.lock_models import (
    ModelSpec,
    broken_test_and_set_model,
    build_checker,
    dining_deadlock_model,
    mcs_model,
    rw_counter_model,
)

__all__ = [
    "BypassAnalyzer",
    "BypassResult",
    "CheckResult",
    "FairnessSpec",
    "InvariantViolation",
    "ModelChecker",
    "ModelDeadlock",
    "ModelSpec",
    "StateExplosionError",
    "broken_test_and_set_model",
    "build_checker",
    "dining_deadlock_model",
    "mcs_fairness",
    "mcs_model",
    "rw_counter_model",
    "tas_fairness",
    "ticket_fairness",
]
