"""Model checking and live oracles for the lock protocols (Section 4.4).

The package covers both halves of the paper's verification story — and the
half the paper could not do, checking the *running implementations*:

* :mod:`repro.verification.interleaving` — the explicit-state model checker
  (the offline SPIN stand-in): exhaustive DFS over every interleaving of a
  reduced protocol model, reporting safety violations and deadlocks.
* :mod:`repro.verification.lock_models` — hand-reduced PROMELA-style models
  (MCS queue, the RW counter root, broken/deadlocking negative controls).
* :mod:`repro.verification.impl_model` — the model *generated from*
  :mod:`repro.core.rma_rw`'s writer/reader acquire paths: one transition per
  RMA call, constants and thresholds taken from the real spec.  Exhaustively
  checked at P = 2-3 by the test-suite; this model found the counter-reset
  race that :meth:`repro.core.counter.DistributedCounterHandle.reset_counter`
  now documents and fixes.
* :mod:`repro.verification.fairness` — bounded-bypass (starvation) analysis
  over all interleavings of a model, plus fairness-annotated model factories.
* :mod:`repro.verification.oracles` — *live* oracles over real executions:
  the runtime observer hook, the acquire/release handle wrappers, and the
  :class:`~repro.verification.oracles.LockOracleObserver` that checks mutual
  exclusion, handoff sanity, reader coexistence and the registry-declared
  bypass bounds while a scheme runs inside the deterministic simulator.
  ``repro conform`` (:mod:`repro.bench.conformance`) sweeps these oracles
  over every registered scheme under seeded schedule perturbation
  (:mod:`repro.rma.perturbation`).

The fault subsystem (:mod:`repro.fault`, README section "Failure &
recovery") extends both halves: crash transitions join the impl models
(:func:`~repro.verification.impl_model.lease_impl_model`,
:func:`~repro.verification.impl_model.repair_queue_impl_model` — virtual
crash/expiry processes let the checker enumerate every crash timing at
P = 2-3), and the live side gains the
:class:`~repro.verification.oracles.RecoveryOracleObserver`, whose
recovery-safety oracles (no double grant inside a live lease, fenced stale
releases, recovery-latency accounting) ``repro faults``
(:mod:`repro.bench.faults`) sweeps over every registered scheme under
seeded rank crashes.
"""

from repro.verification.fairness import (
    BypassAnalyzer,
    BypassResult,
    FairnessSpec,
    mcs_fairness,
    tas_fairness,
    ticket_fairness,
)
from repro.verification.impl_model import (
    alock_impl_model,
    lease_impl_model,
    lock_server_impl_model,
    repair_queue_impl_model,
    rma_rw_impl_model,
)
from repro.verification.interleaving import (
    CheckResult,
    InvariantViolation,
    ModelChecker,
    ModelDeadlock,
    StateExplosionError,
)
from repro.verification.lock_models import (
    ModelSpec,
    broken_test_and_set_model,
    build_checker,
    dining_deadlock_model,
    mcs_model,
    rw_counter_model,
)
from repro.verification.oracles import (
    LockOracleObserver,
    ObservedLock,
    ObservedRWLock,
    OracleReport,
    OracleViolation,
    RecoveryOracleObserver,
    RecoveryReport,
    RunObserver,
    observe_lock,
)

__all__ = [
    "BypassAnalyzer",
    "BypassResult",
    "CheckResult",
    "FairnessSpec",
    "InvariantViolation",
    "LockOracleObserver",
    "ModelChecker",
    "ModelDeadlock",
    "ModelSpec",
    "ObservedLock",
    "ObservedRWLock",
    "OracleReport",
    "OracleViolation",
    "RecoveryOracleObserver",
    "RecoveryReport",
    "RunObserver",
    "StateExplosionError",
    "alock_impl_model",
    "broken_test_and_set_model",
    "build_checker",
    "dining_deadlock_model",
    "lease_impl_model",
    "lock_server_impl_model",
    "mcs_fairness",
    "mcs_model",
    "observe_lock",
    "repair_queue_impl_model",
    "rma_rw_impl_model",
    "rw_counter_model",
    "tas_fairness",
    "ticket_fairness",
]
