"""Reduced lock models for the interleaving checker (the PROMELA-model analogue).

Each model is a :class:`ModelSpec` bundling the pieces
:class:`~repro.verification.interleaving.ModelChecker` needs: the number of
processes, the initial shared state, a per-process step function, a
termination predicate and the safety invariant.  The models capture the
synchronization skeleton of the real protocols — the shared words, the atomic
read-modify-write steps and the spin waits — while abstracting away window
offsets and latencies, exactly like the paper's SPIN models abstract the MPI
implementation.

Provided models:

* :func:`mcs_model` — the MCS queue lock (the skeleton of D-MCS and of every
  DQ); invariant: at most one process in the critical section.
* :func:`rw_counter_model` — the distributed-counter reader/writer root
  protocol of RMA-RW (arrive/depart counter, WRITE flag, reader threshold
  ``T_R``, writer drain); invariant: never a writer together with a reader or
  another writer.
* :func:`broken_test_and_set_model` — a deliberately broken lock (non-atomic
  test-then-set) used to show the checker actually finds mutual-exclusion
  violations.
* :func:`dining_deadlock_model` — two processes taking two locks in opposite
  order, used to show the checker detects deadlocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.verification.interleaving import ModelChecker

__all__ = [
    "ModelSpec",
    "broken_test_and_set_model",
    "build_checker",
    "dining_deadlock_model",
    "mcs_model",
    "rw_counter_model",
]

#: Stand-in for the WRITE flag added to the arrive counter (must exceed any
#: reachable reader count and T_R in the model configurations).
_FLAG = 1000

#: Null rank inside the models.
_NIL = -1


@dataclass(frozen=True)
class ModelSpec:
    """Everything needed to model-check one protocol configuration."""

    name: str
    num_processes: int
    initial_state: Dict
    step: Callable[[Dict, int], bool]
    is_done: Callable[[Dict, int], bool]
    invariant: Callable[[Dict], bool]
    invariant_name: str


def build_checker(model: ModelSpec, *, max_states: int = 500_000, check_deadlock: bool = True) -> ModelChecker:
    """Create a :class:`ModelChecker` for ``model``."""
    return ModelChecker(
        num_processes=model.num_processes,
        step=model.step,
        initial_state=model.initial_state,
        is_done=model.is_done,
        invariant=model.invariant,
        invariant_name=model.invariant_name,
        max_states=max_states,
        check_deadlock=check_deadlock,
    )


# --------------------------------------------------------------------------- #
# MCS queue lock
# --------------------------------------------------------------------------- #

def mcs_model(num_processes: int = 2, rounds: int = 1) -> ModelSpec:
    """The MCS queue lock with ``num_processes`` each acquiring ``rounds`` times."""

    initial_state = {
        "tail": _NIL,
        "next": [_NIL] * num_processes,
        "wait": [0] * num_processes,
        "cs": [],
        "procs": [{"pc": "init", "pred": _NIL, "acquired": 0} for _ in range(num_processes)],
    }

    def step(state: Dict, pid: int) -> bool:
        me = state["procs"][pid]
        pc = me["pc"]
        if pc == "init":
            state["next"][pid] = _NIL
            state["wait"][pid] = 1
            me["pc"] = "swap"
        elif pc == "swap":
            me["pred"] = state["tail"]
            state["tail"] = pid
            me["pc"] = "cs_enter" if me["pred"] == _NIL else "link"
        elif pc == "link":
            state["next"][me["pred"]] = pid
            me["pc"] = "spin"
        elif pc == "spin":
            if state["wait"][pid] != 0:
                return False
            me["pc"] = "cs_enter"
        elif pc == "cs_enter":
            state["cs"].append(pid)
            me["pc"] = "cs_exit"
        elif pc == "cs_exit":
            state["cs"].remove(pid)
            me["pc"] = "rel_check"
        elif pc == "rel_check":
            me["pc"] = "notify" if state["next"][pid] != _NIL else "rel_cas"
        elif pc == "rel_cas":
            if state["tail"] == pid:
                state["tail"] = _NIL
                me["pc"] = "round_done"
            else:
                me["pc"] = "rel_wait"
        elif pc == "rel_wait":
            if state["next"][pid] == _NIL:
                return False
            me["pc"] = "notify"
        elif pc == "notify":
            state["wait"][state["next"][pid]] = 0
            me["pc"] = "round_done"
        elif pc == "round_done":
            me["acquired"] += 1
            me["pc"] = "done" if me["acquired"] >= rounds else "init"
        else:  # pragma: no cover - "done" is filtered by is_done
            return False
        return True

    def is_done(state: Dict, pid: int) -> bool:
        return state["procs"][pid]["pc"] == "done"

    def invariant(state: Dict) -> bool:
        return len(state["cs"]) <= 1

    return ModelSpec(
        name=f"mcs[{num_processes}x{rounds}]",
        num_processes=num_processes,
        initial_state=initial_state,
        step=step,
        is_done=is_done,
        invariant=invariant,
        invariant_name="mutual exclusion",
    )


# --------------------------------------------------------------------------- #
# Reader/writer counter protocol (the RMA-RW root)
# --------------------------------------------------------------------------- #

def rw_counter_model(
    num_readers: int = 2,
    num_writers: int = 1,
    t_r: int = 2,
    reader_rounds: int = 1,
    writer_rounds: int = 1,
    paper_spin_predicate: bool = False,
) -> ModelSpec:
    """The distributed-counter reader/writer protocol with one physical counter.

    Readers follow Listing 9/10 (arrive, threshold check, optional reset,
    back-off, spin); writers follow the root protocol with the writer queue
    abstracted to one atomic test-and-set word (``wlock``): set the WRITE
    flag, wait for the readers to drain, enter, and reset the counter on exit.
    Process ids ``0 .. num_readers-1`` are readers, the rest are writers.

    ``paper_spin_predicate`` selects the saturated-reader spin condition:
    ``False`` (default) spins while ``ARRIVE > T_R``, which is what
    :mod:`repro.core.rma_rw` implements; ``True`` spins while
    ``ARRIVE >= T_R`` exactly as written in Listing 9 of the paper.  The
    literal predicate admits a reachable state in which the counter rests at
    exactly ``T_R`` with every reader blocked and no writer left to reset it —
    the model checker finds that deadlock, which is precisely why the
    implementation deviates (see ``DistributedCounterHandle.spin_until_read_mode``).
    """

    num_processes = num_readers + num_writers
    initial_state = {
        "arrive": 0,
        "depart": 0,
        "wlock": 0,
        "readers_in": 0,
        "writers_in": 0,
        "procs": [{"pc": "start", "prev": 0, "rounds": 0} for _ in range(num_processes)],
    }

    def is_reader(pid: int) -> bool:
        return pid < num_readers

    def step(state: Dict, pid: int) -> bool:
        me = state["procs"][pid]
        pc = me["pc"]

        if is_reader(pid):
            if pc == "start":
                me["pc"] = "r_arrive"
            elif pc == "r_arrive":
                me["prev"] = state["arrive"]
                state["arrive"] += 1
                me["pc"] = "r_check"
            elif pc == "r_check":
                if me["prev"] < t_r:
                    me["pc"] = "r_cs_enter"
                elif me["prev"] == t_r and state["wlock"] == 0 and state["arrive"] < _FLAG:
                    me["pc"] = "r_reset"
                else:
                    me["pc"] = "r_backoff_wait"
            elif pc == "r_reset":
                state["arrive"] -= state["depart"]
                state["depart"] = 0
                me["pc"] = "r_backoff_free"
            elif pc in ("r_backoff_wait", "r_backoff_free"):
                state["arrive"] -= 1
                me["pc"] = "r_spin" if pc == "r_backoff_wait" else "r_arrive"
            elif pc == "r_spin":
                saturated = state["arrive"] >= t_r if paper_spin_predicate else state["arrive"] > t_r
                if saturated:
                    return False
                me["pc"] = "r_arrive"
            elif pc == "r_cs_enter":
                state["readers_in"] += 1
                me["pc"] = "r_cs_exit"
            elif pc == "r_cs_exit":
                state["readers_in"] -= 1
                me["pc"] = "r_depart"
            elif pc == "r_depart":
                state["depart"] += 1
                me["rounds"] += 1
                me["pc"] = "done" if me["rounds"] >= reader_rounds else "r_arrive"
            else:  # pragma: no cover
                return False
            return True

        # Writer
        if pc == "start":
            me["pc"] = "w_lock"
        elif pc == "w_lock":
            if state["wlock"] != 0:
                return False
            state["wlock"] = 1
            me["pc"] = "w_flag"
        elif pc == "w_flag":
            state["arrive"] += _FLAG
            me["pc"] = "w_drain"
        elif pc == "w_drain":
            if state["arrive"] - _FLAG != state["depart"]:
                return False
            me["pc"] = "w_cs_enter"
        elif pc == "w_cs_enter":
            state["writers_in"] += 1
            me["pc"] = "w_cs_exit"
        elif pc == "w_cs_exit":
            state["writers_in"] -= 1
            me["pc"] = "w_reset"
        elif pc == "w_reset":
            state["arrive"] -= _FLAG + state["depart"]
            state["depart"] = 0
            me["pc"] = "w_unlock"
        elif pc == "w_unlock":
            state["wlock"] = 0
            me["rounds"] += 1
            me["pc"] = "done" if me["rounds"] >= writer_rounds else "w_lock"
        else:  # pragma: no cover
            return False
        return True

    def is_done(state: Dict, pid: int) -> bool:
        return state["procs"][pid]["pc"] == "done"

    def invariant(state: Dict) -> bool:
        if state["writers_in"] > 1:
            return False
        if state["writers_in"] == 1 and state["readers_in"] > 0:
            return False
        return True

    variant = "paper" if paper_spin_predicate else "impl"
    return ModelSpec(
        name=f"rw_counter[r={num_readers},w={num_writers},T_R={t_r},{variant}]",
        num_processes=num_processes,
        initial_state=initial_state,
        step=step,
        is_done=is_done,
        invariant=invariant,
        invariant_name="reader/writer exclusion",
    )


# --------------------------------------------------------------------------- #
# Negative controls
# --------------------------------------------------------------------------- #

def broken_test_and_set_model(num_processes: int = 2) -> ModelSpec:
    """A non-atomic test-then-set lock: the checker must find the ME violation."""

    initial_state = {
        "lock": 0,
        "cs": [],
        "procs": [{"pc": "test"} for _ in range(num_processes)],
    }

    def step(state: Dict, pid: int) -> bool:
        me = state["procs"][pid]
        pc = me["pc"]
        if pc == "test":
            if state["lock"] != 0:
                return False
            me["pc"] = "set"  # the race: the test and the set are separate steps
        elif pc == "set":
            state["lock"] = 1
            me["pc"] = "cs_enter"
        elif pc == "cs_enter":
            state["cs"].append(pid)
            me["pc"] = "cs_exit"
        elif pc == "cs_exit":
            state["cs"].remove(pid)
            me["pc"] = "unlock"
        elif pc == "unlock":
            state["lock"] = 0
            me["pc"] = "done"
        else:  # pragma: no cover
            return False
        return True

    def is_done(state: Dict, pid: int) -> bool:
        return state["procs"][pid]["pc"] == "done"

    def invariant(state: Dict) -> bool:
        return len(state["cs"]) <= 1

    return ModelSpec(
        name=f"broken_tas[{num_processes}]",
        num_processes=num_processes,
        initial_state=initial_state,
        step=step,
        is_done=is_done,
        invariant=invariant,
        invariant_name="mutual exclusion",
    )


def dining_deadlock_model() -> ModelSpec:
    """Two processes taking two locks in opposite order: a guaranteed deadlock."""

    initial_state = {
        "lock_a": 0,
        "lock_b": 0,
        "procs": [{"pc": "take_first"} for _ in range(2)],
    }
    order = {0: ("lock_a", "lock_b"), 1: ("lock_b", "lock_a")}

    def step(state: Dict, pid: int) -> bool:
        me = state["procs"][pid]
        first, second = order[pid]
        pc = me["pc"]
        if pc == "take_first":
            if state[first] != 0:
                return False
            state[first] = 1
            me["pc"] = "take_second"
        elif pc == "take_second":
            if state[second] != 0:
                return False
            state[second] = 1
            me["pc"] = "release"
        elif pc == "release":
            state[first] = 0
            state[second] = 0
            me["pc"] = "done"
        else:  # pragma: no cover
            return False
        return True

    def is_done(state: Dict, pid: int) -> bool:
        return state["procs"][pid]["pc"] == "done"

    def invariant(state: Dict) -> bool:
        return True

    return ModelSpec(
        name="dining_deadlock",
        num_processes=2,
        initial_state=initial_state,
        step=step,
        is_done=is_done,
        invariant=invariant,
        invariant_name="trivially true",
    )
