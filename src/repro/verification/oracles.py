"""Live safety/fairness oracles over real lock executions.

:mod:`repro.verification.interleaving` checks *abstract* protocol models; the
classes here check the *real* scheme implementations while they run inside a
deterministic simulator.  The pieces:

* :class:`RunObserver` — the runtime observer hook.  Both deterministic
  simulators accept an ``observer=``; they call :meth:`~RunObserver.on_run_start`
  when ``run()`` installs its per-run state (so observer state always resets
  across ``run()`` re-entry) and :meth:`~RunObserver.on_run_end` when a run
  drains cleanly.  The per-rank contexts additionally report every remote
  atomic read-modify-write via :meth:`~RunObserver.on_rmw`.
* :class:`ObservedLock` / :class:`ObservedRWLock` — transparent handle
  wrappers (the :class:`~repro.core.instrumentation.InstrumentedLock` pattern)
  that report ``wait_start``/``acquired``/``released`` events at the
  acquire/release instrumentation points.  They issue **no RMA calls** of
  their own, so an observed run's :class:`~repro.rma.runtime_base.RunResult`
  is bit-identical to an unobserved one.
* :class:`LockOracleObserver` — the live oracle set.  Events arrive in the
  simulator's canonical execution order (exactly one rank runs at a time), so
  the oracles check the *simulated interleaving itself*:

  - **mutual exclusion** — never two writers, never a writer with a reader;
  - **handoff sanity** — acquires and releases stay balanced per rank, no
    re-entrant acquire, release mode matches the acquire mode (the
    queue-discipline errors MCS-family bugs produce);
  - **reader coexistence** — the maximum number of concurrently admitted
    readers is recorded (an RW scheme that never lets readers share the CS
    has lost the point of being an RW lock);
  - **progress/starvation** — the bounded-bypass count of
    :mod:`repro.verification.fairness`, evaluated against the real execution
    trace: a waiter's bypass counter starts at its first remote atomic RMW
    inside ``acquire`` (the FIFO ordering point: the ticket draw / the tail
    swap) and counts foreign critical-section entries until it is granted
    the lock.  Schemes that declare a bound in the registry
    (``register_scheme(..., fairness_bound=...)``) are gated against it;
    for all others the observed maximum is reported as data.

Deadlock and livelock detection stay with the runtime (the structural
no-runnable-rank check, the wall-clock watchdog and ``max_ops``); the
conformance engine (:mod:`repro.bench.conformance`) turns those aborts into
oracle verdicts alongside the violations collected here.

The oracles survive the adaptive control plane's mutations: a scheme swap,
an elastic resize (:mod:`repro.scale.elastic`) or a hot-key re-homing
(:mod:`repro.scale.rehome`) rebuilds the affected table entries' handles at
a phase boundary, and the table re-wraps every rebuilt handle in
:class:`ObservedLock`/:class:`ObservedRWLock` before the next request
touches it — so acquire/release event streams (and therefore the mutual
exclusion and handoff checks) stay continuous across versioned reinstalls,
with the same per-rank balance ledgers carried over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.lock_base import LockHandle, RWLockHandle
from repro.rma.ops import RMACall
from repro.rma.runtime_base import ProcessContext

__all__ = [
    "LockOracleObserver",
    "MODE_READ",
    "MODE_WRITE",
    "ObservedLock",
    "ObservedRWLock",
    "OracleReport",
    "OracleViolation",
    "RecoveryOracleObserver",
    "RecoveryReport",
    "RunObserver",
    "observe_lock",
]

MODE_WRITE = "write"
MODE_READ = "read"


class RunObserver:
    """Base observer: every hook is a no-op.

    Subclasses override what they need; the runtimes only require this
    interface.  Implementations must not issue RMA calls or touch runtime
    state — observers watch, they never steer (that is what keeps observed
    runs bit-identical to unobserved ones).
    """

    def on_run_start(self, nranks: int) -> None:
        """A run is installing fresh state; reset all observer state."""

    def on_run_end(self) -> None:
        """The run drained cleanly (not called when a run aborts)."""

    def on_rmw(self, rank: int, call: RMACall) -> None:
        """``rank`` completed a remote atomic RMW (FAO/CAS)."""

    def wait_start(self, rank: int, mode: str, t: float) -> None:
        """``rank`` entered ``acquire`` and is about to compete for the lock."""

    def acquired(self, rank: int, mode: str, t: float) -> None:
        """``rank``'s ``acquire`` returned: it is inside the critical section."""

    def released(self, rank: int, mode: str, t: float) -> None:
        """``rank`` is about to run ``release`` (still inside the CS)."""

    # -- fault hooks (only fired on runs with a repro.fault.FaultPlan) ----- #

    def on_crash(self, rank: int, t: float) -> None:
        """``rank`` was killed by the fault plan at virtual time ``t``."""

    def on_restart(self, rank: int, t: float) -> None:
        """``rank`` was revived at virtual time ``t`` (re-runs its program)."""

    def on_lease(self, rank: int, deadline_us: float) -> None:
        """``rank`` acquired a leased lock valid until ``deadline_us``.

        Reported by lease-based schemes right after installing their lock
        word, so recovery oracles can judge takeover legality against the
        exact deadline instead of reconstructing it.
        """

    def on_fenced_release(self, rank: int) -> None:
        """``rank``'s stale release was rejected by the lock's fencing."""


@dataclass(frozen=True)
class OracleViolation:
    """One oracle failure, tied to the event that exposed it."""

    oracle: str
    rank: int
    t: float
    detail: str

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return f"[{self.oracle}] rank {self.rank} at t={self.t:.2f}us: {self.detail}"


@dataclass
class OracleReport:
    """Aggregated verdict of one observed run."""

    violations: List[OracleViolation] = field(default_factory=list)
    acquires: int = 0
    releases: int = 0
    write_acquires: int = 0
    read_acquires: int = 0
    max_concurrent_readers: int = 0
    max_bypass: int = 0
    bypass_bound: Optional[int] = None
    runs_observed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> Dict[str, Any]:
        """JSON-able condensed form (conformance rows, CI artifacts)."""
        return {
            "ok": self.ok,
            "violations": [str(v) for v in self.violations],
            "acquires": self.acquires,
            "write_acquires": self.write_acquires,
            "read_acquires": self.read_acquires,
            "max_concurrent_readers": self.max_concurrent_readers,
            "max_bypass": self.max_bypass,
            "bypass_bound": self.bypass_bound,
        }


class LockOracleObserver(RunObserver):
    """The live oracle set described in the module docstring.

    One instance observes one run at a time; :meth:`on_run_start` resets every
    per-run structure, so a single observer can be installed on a runtime and
    reused across ``run()`` invocations (including after a failed run).

    Args:
        bypass_bound: Maximum foreign CS entries a waiter may see between its
            ordering RMW and its grant, or ``None`` to only record the
            observed maximum (schemes without a FIFO guarantee).
        max_violations: Stop recording after this many violations (a broken
            lock under a long run would otherwise flood the report).
    """

    def __init__(self, *, bypass_bound: Optional[int] = None, max_violations: int = 32):
        if max_violations < 1:
            raise ValueError("max_violations must be >= 1")
        self.bypass_bound = bypass_bound
        self.max_violations = int(max_violations)
        self._report = OracleReport(bypass_bound=bypass_bound)
        self.on_run_start(0)

    # ------------------------------------------------------------------ #
    # RunObserver hooks
    # ------------------------------------------------------------------ #

    def on_run_start(self, nranks: int) -> None:
        runs = getattr(self, "_report", None)
        previous_runs = runs.runs_observed if runs is not None else 0
        self._report = OracleReport(
            bypass_bound=self.bypass_bound, runs_observed=previous_runs + 1
        )
        #: rank -> mode for every rank currently inside the CS.
        self._holders: Dict[int, str] = {}
        self._readers_in = 0
        self._writers_in = 0
        #: Total CS entries so far (the bypass clock of fairness.py).
        self._entries = 0
        #: rank -> entries counter value at its ordering point (or at
        #: wait_start until the first RMW of the attempt is seen).
        self._wait_baseline: Dict[int, int] = {}
        #: ranks whose current attempt has already passed its ordering RMW.
        self._ordered: Dict[int, bool] = {}

    def on_run_end(self) -> None:
        for rank, mode in sorted(self._holders.items()):
            self._violate(
                "handoff", rank, 0.0,
                f"run finished while rank {rank} still holds the lock ({mode})",
            )
        for rank in sorted(self._wait_baseline):
            self._violate(
                "handoff", rank, 0.0,
                f"run finished while rank {rank} is still waiting in acquire()",
            )

    def on_rmw(self, rank: int, call: RMACall) -> None:
        # The first remote atomic RMW of a pending acquire is the protocol's
        # ordering point (ticket draw / MCS tail swap): from here on a FIFO
        # scheme owes the waiter its bounded-bypass guarantee, regardless of
        # how long perturbation stalls it afterwards.
        if rank in self._wait_baseline and not self._ordered.get(rank, False):
            self._ordered[rank] = True
            self._wait_baseline[rank] = self._entries

    # ------------------------------------------------------------------ #
    # Lock events (from the ObservedLock wrappers)
    # ------------------------------------------------------------------ #

    def wait_start(self, rank: int, mode: str, t: float) -> None:
        if rank in self._holders:
            self._violate(
                "handoff", rank, t,
                f"re-entrant acquire ({mode}) while already holding the lock "
                f"({self._holders[rank]})",
            )
            return
        if rank in self._wait_baseline:
            self._violate("handoff", rank, t, "second acquire() before the first returned")
            return
        self._wait_baseline[rank] = self._entries
        self._ordered[rank] = False

    def acquired(self, rank: int, mode: str, t: float) -> None:
        report = self._report
        baseline = self._wait_baseline.pop(rank, None)
        self._ordered.pop(rank, None)
        if baseline is not None:
            bypass = self._entries - baseline
            if bypass > report.max_bypass:
                report.max_bypass = bypass
            if self.bypass_bound is not None and bypass > self.bypass_bound:
                self._violate(
                    "fairness", rank, t,
                    f"bypassed {bypass} times while waiting (declared bound "
                    f"{self.bypass_bound})",
                )
        if rank in self._holders:
            self._violate("handoff", rank, t, "acquired the lock it already holds")
            return
        if mode == MODE_WRITE:
            if self._writers_in or self._readers_in:
                self._violate(
                    "mutual-exclusion", rank, t,
                    f"writer entered with {self._writers_in} writer(s) and "
                    f"{self._readers_in} reader(s) inside",
                )
            self._writers_in += 1
            report.write_acquires += 1
        else:
            if self._writers_in:
                self._violate(
                    "mutual-exclusion", rank, t,
                    f"reader entered while {self._writers_in} writer(s) inside",
                )
            self._readers_in += 1
            report.read_acquires += 1
            if self._readers_in > report.max_concurrent_readers:
                report.max_concurrent_readers = self._readers_in
        self._holders[rank] = mode
        self._entries += 1
        report.acquires += 1

    def released(self, rank: int, mode: str, t: float) -> None:
        held = self._holders.pop(rank, None)
        if held is None:
            self._violate("handoff", rank, t, f"release ({mode}) without holding the lock")
            return
        if held != mode:
            self._violate(
                "handoff", rank, t, f"acquired as {held} but released as {mode}"
            )
        if held == MODE_WRITE:
            self._writers_in -= 1
        else:
            self._readers_in -= 1
        self._report.releases += 1

    # ------------------------------------------------------------------ #
    # Verdict
    # ------------------------------------------------------------------ #

    def report(self) -> OracleReport:
        """The current run's verdict (valid once the run completed)."""
        return self._report

    def _violate(self, oracle: str, rank: int, t: float, detail: str) -> None:
        if len(self._report.violations) < self.max_violations:
            self._report.violations.append(
                OracleViolation(oracle=oracle, rank=rank, t=float(t), detail=detail)
            )


# --------------------------------------------------------------------------- #
# Recovery oracles (crash / lease / fencing safety)
# --------------------------------------------------------------------------- #

@dataclass
class RecoveryReport(OracleReport):
    """An :class:`OracleReport` extended with crash-recovery accounting."""

    crashes: int = 0
    restarts: int = 0
    #: Crashes that killed a rank *while it held the lock* — the sweep engine
    #: uses this to confirm a holder-crash scenario actually manifested (a
    #: kill landing a microsecond late hits the victim after its release).
    holder_deaths: int = 0
    #: Crashes that killed a rank between ``wait_start`` and ``acquired``.
    waiter_deaths: int = 0
    fenced_releases: int = 0
    #: Live-but-expired holders revoked by a legal lease takeover.
    expired_takeovers: int = 0
    #: Per-recovery latency samples: takeover time minus holder crash time.
    recovery_us: List[float] = field(default_factory=list)

    def summary(self) -> Dict[str, Any]:
        out = super().summary()
        out.update(
            {
                "crashes": self.crashes,
                "restarts": self.restarts,
                "holder_deaths": self.holder_deaths,
                "waiter_deaths": self.waiter_deaths,
                "fenced_releases": self.fenced_releases,
                "expired_takeovers": self.expired_takeovers,
                "recovery_us": [round(v, 3) for v in self.recovery_us],
            }
        )
        return out


class RecoveryOracleObserver(LockOracleObserver):
    """Recovery-safety oracles layered on the base lock oracles.

    Extends :class:`LockOracleObserver` with the three crash-safety checks of
    the fault sweep (:mod:`repro.bench.faults`):

    - **no double grant** — after a *holder* crash, the lock may only be
      re-granted once the crashed hold's lease deadline has passed; a grant
      before that is a double grant inside a live lease.  A crashed hold with
      no lease at all can never legally be re-granted (a scheme without
      leases has no way to distinguish a dead holder from a slow one).
    - **fenced release** — a holder whose lease expired and whose lock was
      taken over must have its late ``release`` *rejected*.  The takeover is
      recorded as a revocation (not a mutual-exclusion violation); the stale
      holder's subsequent release is held pending and must be confirmed by
      :meth:`on_fenced_release` before the rank's next lock event — a stale
      release that silently wrote the lock word is a fencing violation.
    - **recovery accounting** — crash/restart/fence counts and per-recovery
      latency samples (takeover time minus crash time) for the availability
      report of the traffic-crash scenario.

    Holder crashes are *not* handoff violations: :meth:`on_crash` retires the
    dead rank's hold and wait state so the base oracles keep judging the
    survivors only.

    Args:
        lease_us: Fallback lease term for schemes that do not announce exact
            deadlines via :meth:`RunObserver.on_lease`; ``None`` means the
            scheme has no lease (any post-crash re-grant is then a violation).
        bypass_bound, max_violations: See :class:`LockOracleObserver`.
    """

    def __init__(
        self,
        *,
        lease_us: Optional[float] = None,
        bypass_bound: Optional[int] = None,
        max_violations: int = 32,
    ):
        self.lease_us = lease_us
        super().__init__(bypass_bound=bypass_bound, max_violations=max_violations)

    def on_run_start(self, nranks: int) -> None:
        super().on_run_start(nranks)
        base = self._report
        self._report = RecoveryReport(
            bypass_bound=base.bypass_bound, runs_observed=base.runs_observed
        )
        #: dead rank -> {"mode", "deadline", "t"} for holds orphaned by a crash.
        self._crashed_holds: Dict[int, Dict[str, Any]] = {}
        #: current holder -> exact lease deadline (if the scheme announced one).
        self._lease_deadline: Dict[int, float] = {}
        #: deadlines announced by on_lease before the acquired event lands.
        self._announced: Dict[int, float] = {}
        #: live holders revoked by an expired-lease takeover (await fencing).
        self._revoked: Dict[int, str] = {}
        #: rank -> (mode, t) stale releases awaiting their fence confirmation.
        self._pending_fence: Dict[int, Any] = {}

    # ------------------------------------------------------------------ #
    # Fault hooks
    # ------------------------------------------------------------------ #

    def on_crash(self, rank: int, t: float) -> None:
        self._report.crashes += 1
        if rank in self._wait_baseline:
            self._report.waiter_deaths += 1
        mode = self._holders.pop(rank, None)
        if mode is not None:
            self._report.holder_deaths += 1
            if mode == MODE_WRITE:
                self._writers_in -= 1
            else:
                self._readers_in -= 1
            self._crashed_holds[rank] = {
                "mode": mode,
                "deadline": self._lease_deadline.pop(rank, None),
                "t": t,
            }
        # A dead waiter stops competing; a dead rank can no longer confirm a
        # pending fence (the kill may land between the CAS and the report),
        # so drop its pending state without judging it.
        self._wait_baseline.pop(rank, None)
        self._ordered.pop(rank, None)
        self._announced.pop(rank, None)
        self._revoked.pop(rank, None)
        self._pending_fence.pop(rank, None)

    def on_restart(self, rank: int, t: float) -> None:
        self._report.restarts += 1

    def on_lease(self, rank: int, deadline_us: float) -> None:
        self._announced[rank] = float(deadline_us)

    def on_fenced_release(self, rank: int) -> None:
        self._report.fenced_releases += 1
        self._pending_fence.pop(rank, None)

    # ------------------------------------------------------------------ #
    # Lock events
    # ------------------------------------------------------------------ #

    def wait_start(self, rank: int, mode: str, t: float) -> None:
        self._flush_stale(rank, t)
        super().wait_start(rank, mode, t)

    def acquired(self, rank: int, mode: str, t: float) -> None:
        self._flush_stale(rank, t)
        report = self._report
        deadline = self._announced.pop(rank, None)
        if deadline is None and self.lease_us is not None:
            # Scheme declared a lease but does not announce exact deadlines:
            # reconstruct conservatively from the grant timestamp.
            deadline = float(int(t + self.lease_us) + 1)
        # 1. Judge this grant against every hold orphaned by a crash.
        for dead in sorted(self._crashed_holds):
            hold = self._crashed_holds[dead]
            dead_deadline = hold["deadline"]
            if dead_deadline is None:
                self._violate(
                    "recovery", rank, t,
                    f"lock re-granted after rank {dead} crashed holding it "
                    f"with no lease to expire (lost-lock hazard)",
                )
            elif t < dead_deadline:
                self._violate(
                    "lease", rank, t,
                    f"takeover before rank {dead}'s lease deadline "
                    f"{dead_deadline:.0f}us (double grant inside a live lease)",
                )
            else:
                report.recovery_us.append(t - hold["t"])
        self._crashed_holds.clear()
        # 2. A live holder whose lease expired is *revoked* by this grant —
        #    that is the lease contract, not a mutual-exclusion violation.
        #    Its late release must then be fenced (checked via _pending_fence).
        for holder in list(self._holders):
            if holder == rank:
                continue  # a genuine re-entrant acquire stays a violation
            holder_deadline = self._lease_deadline.get(holder)
            if holder_deadline is not None and t >= holder_deadline:
                hmode = self._holders.pop(holder)
                if hmode == MODE_WRITE:
                    self._writers_in -= 1
                else:
                    self._readers_in -= 1
                self._lease_deadline.pop(holder, None)
                self._revoked[holder] = hmode
                report.expired_takeovers += 1
        super().acquired(rank, mode, t)
        if deadline is not None and rank in self._holders:
            self._lease_deadline[rank] = deadline

    def released(self, rank: int, mode: str, t: float) -> None:
        if rank not in self._holders and rank in self._revoked:
            # The lease contract revoked this hold; the release is only legal
            # if the lock rejects it.  Hold it pending until the fence report
            # (or flag it at this rank's next event / run end).
            self._revoked.pop(rank)
            self._pending_fence[rank] = (mode, t)
            return
        super().released(rank, mode, t)
        self._lease_deadline.pop(rank, None)

    def on_run_end(self) -> None:
        for rank in sorted(self._pending_fence):
            self._flush_stale(rank, 0.0)
        super().on_run_end()

    def _flush_stale(self, rank: int, t: float) -> None:
        pend = self._pending_fence.pop(rank, None)
        if pend is not None:
            self._violate(
                "fencing", rank, t,
                f"stale release at t={pend[1]:.2f}us was never fenced "
                f"(a non-holder's release reached the lock word)",
            )


# --------------------------------------------------------------------------- #
# Handle wrappers
# --------------------------------------------------------------------------- #

class ObservedLock(LockHandle):
    """A mutual-exclusion lock reporting its events to a :class:`RunObserver`."""

    def __init__(self, inner: LockHandle, ctx: ProcessContext, observer: RunObserver):
        self.inner = inner
        self.ctx = ctx
        self.observer = observer

    def acquire(self) -> None:
        self.observer.wait_start(self.ctx.rank, MODE_WRITE, self.ctx.now())
        self.inner.acquire()
        self.observer.acquired(self.ctx.rank, MODE_WRITE, self.ctx.now())

    def release(self) -> None:
        self.observer.released(self.ctx.rank, MODE_WRITE, self.ctx.now())
        self.inner.release()


class ObservedRWLock(RWLockHandle):
    """A reader-writer lock reporting both sides' events to an observer."""

    def __init__(self, inner: RWLockHandle, ctx: ProcessContext, observer: RunObserver):
        self.inner = inner
        self.ctx = ctx
        self.observer = observer

    def acquire_write(self) -> None:
        self.observer.wait_start(self.ctx.rank, MODE_WRITE, self.ctx.now())
        self.inner.acquire_write()
        self.observer.acquired(self.ctx.rank, MODE_WRITE, self.ctx.now())

    def release_write(self) -> None:
        self.observer.released(self.ctx.rank, MODE_WRITE, self.ctx.now())
        self.inner.release_write()

    def acquire_read(self) -> None:
        self.observer.wait_start(self.ctx.rank, MODE_READ, self.ctx.now())
        self.inner.acquire_read()
        self.observer.acquired(self.ctx.rank, MODE_READ, self.ctx.now())

    def release_read(self) -> None:
        self.observer.released(self.ctx.rank, MODE_READ, self.ctx.now())
        self.inner.release_read()


def observe_lock(lock: LockHandle, ctx: ProcessContext, observer: RunObserver) -> LockHandle:
    """Wrap ``lock`` so its acquire/release events reach ``observer``."""
    if isinstance(lock, RWLockHandle):
        return ObservedRWLock(lock, ctx, observer)
    return ObservedLock(lock, ctx, observer)
