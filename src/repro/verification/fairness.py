"""Bounded-bypass (starvation) analysis on top of the explicit-state checker.

Section 4.3 of the paper argues starvation freedom for RMA-RW: the locality
and reader thresholds bound how often one process can overtake another.  The
:class:`~repro.verification.interleaving.ModelChecker` verifies safety
(mutual exclusion) and deadlock freedom; this module adds the quantitative
fairness side: the *bypass bound* — the maximum number of critical-section
entries by other processes that can occur while some process is continuously
waiting for the lock.

A FIFO protocol (ticket, MCS/D-MCS queues) has a bypass bound of ``P - 1``:
once a process is enqueued, every other process can enter at most once before
it.  A test-and-set lock (foMPI-Spin, the HBO lock) has no bound: an
adversarial schedule can let the same competitor win again and again.  The
:class:`BypassAnalyzer` explores every interleaving of a reduced protocol
model while tracking, per process, how many foreign critical-section entries
happened since it started waiting, and reports the maximum together with a
witness schedule whenever a requested bound is exceeded.

The analysis needs two observers on top of a
:class:`~repro.verification.lock_models.ModelSpec`:

* ``waiting(state, pid)`` — is ``pid`` currently waiting to enter the CS?
* ``acquired(state, pid)`` — how many critical sections has ``pid`` completed?

Factories for ticket, test-and-set and MCS models (with the observers wired
up) are provided so the analyzer can be exercised out of the box.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.verification.interleaving import StateExplosionError
from repro.verification.lock_models import ModelSpec, mcs_model

__all__ = [
    "BypassAnalyzer",
    "BypassResult",
    "FairnessSpec",
    "mcs_fairness",
    "tas_fairness",
    "ticket_fairness",
]

_NIL = -1


@dataclass(frozen=True)
class FairnessSpec:
    """A protocol model plus the observers the bypass analysis needs."""

    model: ModelSpec
    waiting: Callable[[Dict, int], bool]
    acquired: Callable[[Dict, int], int]


@dataclass
class BypassResult:
    """Outcome of one bounded-bypass exploration."""

    bound: int
    max_bypass_observed: int
    states_explored: int
    transitions: int
    complete: bool
    violation: Optional[str] = None
    trace: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.violation is None


class BypassAnalyzer:
    """Exhaustive exploration of bypass counts over all interleavings.

    The search state is the protocol state augmented with one counter per
    process: ``None`` while the process is not waiting, otherwise the number
    of critical sections completed by *other* processes since it started
    waiting.  A counter exceeding ``bound`` is reported as a violation with
    the interleaving that produced it.
    """

    def __init__(self, spec: FairnessSpec, *, bound: int, max_states: int = 300_000):
        if bound < 0:
            raise ValueError("bound must be non-negative")
        if max_states < 1:
            raise ValueError("max_states must be >= 1")
        self.spec = spec
        self.bound = int(bound)
        self.max_states = int(max_states)

    # ------------------------------------------------------------------ #

    def _freeze(self, state: Dict, counts: Tuple[Optional[int], ...]):
        from repro.verification.interleaving import _freeze

        return (_freeze(state), tuple(-1 if c is None else c for c in counts))

    def check(self) -> BypassResult:
        model = self.spec.model
        waiting = self.spec.waiting
        acquired = self.spec.acquired
        nprocs = model.num_processes

        initial_state = copy.deepcopy(model.initial_state)
        initial_counts: Tuple[Optional[int], ...] = tuple(
            0 if waiting(initial_state, pid) else None for pid in range(nprocs)
        )
        seen = {self._freeze(initial_state, initial_counts)}
        stack: List[Tuple[Dict, Tuple[Optional[int], ...], List[Tuple[int, int]]]] = [
            (initial_state, initial_counts, [])
        ]
        explored = 0
        transitions = 0
        max_bypass = 0

        while stack:
            state, counts, trace = stack.pop()
            explored += 1
            if explored > self.max_states:
                raise StateExplosionError(
                    f"exceeded the budget of {self.max_states} explored states"
                )

            for pid in range(nprocs):
                if model.is_done(state, pid):
                    continue
                candidate = copy.deepcopy(state)
                if not model.step(candidate, pid):
                    continue
                transitions += 1

                entries = [
                    acquired(candidate, q) - acquired(state, q) for q in range(nprocs)
                ]
                new_counts: List[Optional[int]] = []
                for q in range(nprocs):
                    if not waiting(candidate, q):
                        new_counts.append(None)
                        continue
                    foreign_entries = sum(e for r, e in enumerate(entries) if r != q)
                    if counts[q] is None:
                        value = foreign_entries
                    else:
                        value = counts[q] + foreign_entries
                    new_counts.append(value)
                    max_bypass = max(max_bypass, value)
                    if value > self.bound:
                        return BypassResult(
                            bound=self.bound,
                            max_bypass_observed=max_bypass,
                            states_explored=explored,
                            transitions=transitions,
                            complete=False,
                            violation=(
                                f"process {q} was bypassed {value} times "
                                f"(bound is {self.bound})"
                            ),
                            trace=trace + [(pid, len(trace))],
                        )

                frozen = self._freeze(candidate, tuple(new_counts))
                if frozen in seen:
                    continue
                seen.add(frozen)
                stack.append((candidate, tuple(new_counts), trace + [(pid, len(trace))]))

        return BypassResult(
            bound=self.bound,
            max_bypass_observed=max_bypass,
            states_explored=explored,
            transitions=transitions,
            complete=True,
        )


# --------------------------------------------------------------------------- #
# Models with fairness observers
# --------------------------------------------------------------------------- #

def ticket_fairness(num_processes: int = 3, rounds: int = 1) -> FairnessSpec:
    """FIFO ticket lock: ``bound = P - 1`` holds on every interleaving."""
    initial_state = {
        "next_ticket": 0,
        "serving": 0,
        "cs": [],
        "procs": [{"pc": "draw", "ticket": _NIL, "acquired": 0} for _ in range(num_processes)],
    }

    def step(state: Dict, pid: int) -> bool:
        me = state["procs"][pid]
        pc = me["pc"]
        if pc == "draw":
            me["ticket"] = state["next_ticket"]
            state["next_ticket"] += 1
            me["pc"] = "spin"
        elif pc == "spin":
            if state["serving"] != me["ticket"]:
                return False
            me["pc"] = "cs_enter"
        elif pc == "cs_enter":
            state["cs"].append(pid)
            me["pc"] = "cs_exit"
        elif pc == "cs_exit":
            state["cs"].remove(pid)
            state["serving"] += 1
            me["acquired"] += 1
            me["pc"] = "done" if me["acquired"] >= rounds else "draw"
        else:  # pragma: no cover - "done" filtered by is_done
            return False
        return True

    model = ModelSpec(
        name=f"ticket[{num_processes}x{rounds}]",
        num_processes=num_processes,
        initial_state=initial_state,
        step=step,
        is_done=lambda state, pid: state["procs"][pid]["pc"] == "done",
        invariant=lambda state: len(state["cs"]) <= 1,
        invariant_name="mutual exclusion",
    )
    return FairnessSpec(
        model=model,
        waiting=lambda state, pid: state["procs"][pid]["pc"] == "spin",
        acquired=lambda state, pid: state["procs"][pid]["acquired"],
    )


def tas_fairness(num_processes: int = 3, rounds: int = 2) -> FairnessSpec:
    """Test-and-set spinning (foMPI-Spin / HBO style): bypass is unbounded.

    Mutual exclusion holds, but nothing orders the waiters, so one process can
    be overtaken once for every acquisition any competitor performs.
    """
    initial_state = {
        "lock": 0,
        "cs": [],
        "procs": [{"pc": "try", "acquired": 0} for _ in range(num_processes)],
    }

    def step(state: Dict, pid: int) -> bool:
        me = state["procs"][pid]
        pc = me["pc"]
        if pc == "try":
            if state["lock"] != 0:
                return False
            state["lock"] = 1
            me["pc"] = "cs_enter"
        elif pc == "cs_enter":
            state["cs"].append(pid)
            me["pc"] = "cs_exit"
        elif pc == "cs_exit":
            state["cs"].remove(pid)
            state["lock"] = 0
            me["acquired"] += 1
            me["pc"] = "done" if me["acquired"] >= rounds else "try"
        else:  # pragma: no cover
            return False
        return True

    model = ModelSpec(
        name=f"tas[{num_processes}x{rounds}]",
        num_processes=num_processes,
        initial_state=initial_state,
        step=step,
        is_done=lambda state, pid: state["procs"][pid]["pc"] == "done",
        invariant=lambda state: len(state["cs"]) <= 1,
        invariant_name="mutual exclusion",
    )
    return FairnessSpec(
        model=model,
        waiting=lambda state, pid: state["procs"][pid]["pc"] == "try",
        acquired=lambda state, pid: state["procs"][pid]["acquired"],
    )


def mcs_fairness(num_processes: int = 3, rounds: int = 1) -> FairnessSpec:
    """The MCS/D-MCS queue model of :func:`repro.verification.lock_models.mcs_model`."""
    model = mcs_model(num_processes=num_processes, rounds=rounds)

    def waiting(state: Dict, pid: int) -> bool:
        # A process waits from the moment it has published itself at the tail
        # (and therefore has a position in the FIFO) until it enters the CS.
        return state["procs"][pid]["pc"] in ("link", "spin", "cs_enter")

    def acquired(state: Dict, pid: int) -> int:
        return state["procs"][pid]["acquired"]

    return FairnessSpec(model=model, waiting=waiting, acquired=acquired)
