"""Explicit-state interleaving model checker.

The paper verifies mutual exclusion and deadlock freedom of RMA-RW with SPIN
(Section 4.4).  SPIN is not available offline, so this module provides a
small native equivalent.

A *model* consists of ``num_processes`` identical (or per-process) step
functions operating on a shared state dictionary.  The per-process control
state (program counter, local variables) lives under ``state["procs"][pid]``
so the entire system state is one picklable value.  A step function

* returns ``True`` after performing exactly one atomic transition, or
* returns ``False`` without modifying the state when the process is currently
  *blocked* (e.g. a spin-wait whose condition is unmet).

The checker explores every reachable interleaving depth-first, de-duplicating
states, and reports

* **invariant violations** — a reachable state where a user-supplied safety
  predicate is false (e.g. two writers in the critical section), and
* **deadlocks** — a reachable state where no unfinished process can step.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "CheckResult",
    "InvariantViolation",
    "ModelDeadlock",
    "ModelChecker",
    "StateExplosionError",
]

#: A process step function: ``step(state, pid) -> moved`` (see module docstring).
StepFn = Callable[[Dict, int], bool]
#: Predicate deciding whether process ``pid`` has terminated in ``state``.
DoneFn = Callable[[Dict, int], bool]
#: Safety invariant over the shared state.
InvariantFn = Callable[[Dict], bool]


class InvariantViolation(AssertionError):
    """A safety invariant evaluated to False in some reachable state."""


class ModelDeadlock(AssertionError):
    """A reachable state exists where no unfinished process can take a step."""


class StateExplosionError(RuntimeError):
    """The exploration exceeded the configured state budget."""


@dataclass
class CheckResult:
    """Outcome of an exhaustive exploration."""

    states_explored: int
    transitions: int
    complete: bool
    violation: Optional[str] = None
    witness: Optional[Dict] = None
    trace: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.violation is None


def _freeze(value):
    """Recursively convert a state value into a hashable fingerprint."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return tuple(sorted(_freeze(v) for v in value))
    return value


class ModelChecker:
    """Exhaustive DFS over the interleavings of a small concurrent model."""

    def __init__(
        self,
        *,
        num_processes: int,
        step: StepFn,
        initial_state: Dict,
        is_done: DoneFn,
        invariant: Optional[InvariantFn] = None,
        invariant_name: str = "safety invariant",
        max_states: int = 500_000,
        check_deadlock: bool = True,
    ):
        if num_processes < 1:
            raise ValueError("num_processes must be >= 1")
        self.num_processes = num_processes
        self.step = step
        self.initial_state = initial_state
        self.is_done = is_done
        self.invariant = invariant
        self.invariant_name = invariant_name
        self.max_states = max_states
        self.check_deadlock = check_deadlock

    # ------------------------------------------------------------------ #

    def check(self) -> CheckResult:
        """Explore every reachable interleaving and return the outcome."""
        initial = copy.deepcopy(self.initial_state)
        seen = {_freeze(initial)}
        # Stack entries: (state, trace) where trace is a list of (pid, step_no).
        stack: List[Tuple[Dict, List[Tuple[int, int]]]] = [(initial, [])]
        explored = 0
        transitions = 0

        while stack:
            state, trace = stack.pop()
            explored += 1
            if explored > self.max_states:
                raise StateExplosionError(
                    f"exceeded the budget of {self.max_states} explored states"
                )

            if self.invariant is not None and not self.invariant(state):
                return CheckResult(
                    states_explored=explored,
                    transitions=transitions,
                    complete=False,
                    violation=f"{self.invariant_name} violated",
                    witness=state,
                    trace=trace,
                )

            moved_any = False
            all_done = True
            for pid in range(self.num_processes):
                if self.is_done(state, pid):
                    continue
                all_done = False
                candidate = copy.deepcopy(state)
                if not self.step(candidate, pid):
                    continue  # blocked in this state
                moved_any = True
                transitions += 1
                fp = _freeze(candidate)
                if fp in seen:
                    continue
                seen.add(fp)
                stack.append((candidate, trace + [(pid, len(trace))]))

            if self.check_deadlock and not all_done and not moved_any:
                return CheckResult(
                    states_explored=explored,
                    transitions=transitions,
                    complete=False,
                    violation="deadlock: unfinished processes exist but none can step",
                    witness=state,
                    trace=trace,
                )

        return CheckResult(
            states_explored=explored,
            transitions=transitions,
            complete=True,
            violation=None,
        )

    def assert_ok(self) -> CheckResult:
        """Run :meth:`check` and raise :class:`InvariantViolation`/:class:`ModelDeadlock`."""
        result = self.check()
        if result.ok:
            return result
        if result.violation is not None and result.violation.startswith("deadlock"):
            raise ModelDeadlock(result.violation)
        raise InvariantViolation(result.violation or "unknown violation")
