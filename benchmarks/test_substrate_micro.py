"""Microbenchmarks of the RMA substrate itself (not paper figures).

These measure the Python-level cost of the simulator's primitives — window
atomics, a full simulated put/flush round, lock handle creation — so that
regressions in the substrate are caught independently of the figure-level
benchmarks.  pytest-benchmark's usual calibration is used here (these are
genuine micro-operations).
"""

from __future__ import annotations

import pytest

from repro.core.rma_rw import RMARWLockSpec
from repro.rma.ops import AtomicOp
from repro.rma.sim_runtime import SimRuntime
from repro.rma.window import Window
from repro.topology.machine import Machine

pytestmark = pytest.mark.benchmark(group="substrate")


def test_window_fao_throughput(benchmark):
    window = Window(8)
    benchmark(lambda: window.fetch_and_op(0, 1, AtomicOp.SUM))
    assert window.read(0) > 0


def test_window_cas_throughput(benchmark):
    window = Window(8)
    benchmark(lambda: window.compare_and_swap(0, compare=0, value=0))


def test_machine_common_level_lookup(benchmark):
    machine = Machine.multi_rack(racks=4, nodes_per_rack=4, procs_per_node=16)
    benchmark(lambda: machine.common_level(3, 250))


def test_rma_rw_spec_construction(benchmark):
    machine = Machine.cluster(nodes=8, procs_per_node=8)
    benchmark(lambda: RMARWLockSpec(machine, t_l=(4, 4), t_r=64))


def test_simruntime_put_get_round(benchmark):
    """Cost of a tiny simulated exchange (2 ranks, a handful of RMA calls)."""
    machine = Machine.cluster(nodes=1, procs_per_node=2)

    def run_once():
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            ctx.put(1, (ctx.rank + 1) % 2, 0)
            ctx.flush((ctx.rank + 1) % 2)
            ctx.barrier()
            value = ctx.get(ctx.rank, 0)
            ctx.flush(ctx.rank)
            return value

        return rt.run(program)

    result = benchmark(run_once)
    assert result.returns == [1, 1]
