"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they isolate individual design decisions of the
reproduction: the distributed counter's placement, the value of topology
awareness on a flat fabric, and the RMA-MCS locality threshold.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_series, bench_iterations, bench_process_counts
from repro.bench import experiments

pytestmark = pytest.mark.benchmark(group="ablations")


def test_ablation_counter_placement(benchmark):
    """One centralized counter vs one counter per node (why the DC exists)."""
    rows = benchmark.pedantic(
        lambda: experiments.ablation_counter_placement(
            process_counts=bench_process_counts(), iterations=bench_iterations()
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="series", value="throughput_mln_s")
    assert all(r["throughput_mln_s"] > 0 for r in rows)


def test_ablation_flat_fabric(benchmark):
    """Topology awareness on a hierarchical vs a flat (uniform-latency) fabric."""
    rows = benchmark.pedantic(
        lambda: experiments.ablation_flat_latency(
            process_counts=bench_process_counts(), iterations=bench_iterations()
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="series", value="throughput_mln_s")
    hierarchical = [r for r in rows if r["fabric"] == "hierarchical"]
    flat = [r for r in rows if r["fabric"] == "flat"]
    assert hierarchical and flat


def test_ablation_locality_threshold(benchmark):
    """RMA-MCS node-level locality threshold sweep (fairness vs locality)."""
    rows = benchmark.pedantic(
        lambda: experiments.ablation_locality(
            process_counts=bench_process_counts(), iterations=bench_iterations()
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="t_l2", value="throughput_mln_s")
    assert all(r["throughput_mln_s"] > 0 for r in rows)


def test_ablation_handoff_locality(benchmark):
    """Hand-off locality vs node-level T_L: the mechanism behind the locality axis."""
    rows = benchmark.pedantic(
        lambda: experiments.ablation_handoff_locality(
            process_counts=bench_process_counts(), iterations=bench_iterations()
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="t_l2", value="node_locality_pct")
    # Larger node-level thresholds must not reduce hand-off locality at the
    # largest sweep point.
    largest = max(r["P"] for r in rows)
    at_scale = {r["t_l2"]: r["node_locality_pct"] for r in rows if r["P"] == largest}
    assert at_scale[max(at_scale)] >= at_scale[min(at_scale)]


def test_ablation_fabric_link_contention(benchmark):
    """End-point-only contention vs additional Dragonfly link-level contention."""
    rows = benchmark.pedantic(
        lambda: experiments.ablation_fabric_contention(
            process_counts=bench_process_counts(), iterations=bench_iterations()
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="series", value="throughput_mln_s")
    assert all(r["throughput_mln_s"] > 0 for r in rows)
    largest = max(r["P"] for r in rows)
    at_scale = {r["series"]: r["throughput_mln_s"] for r in rows if r["P"] == largest}
    # Link contention can only slow things down.
    assert at_scale["rma-mcs (dragonfly-links)"] <= at_scale["rma-mcs (endpoint-only)"] * 1.001
    assert at_scale["d-mcs (dragonfly-links)"] <= at_scale["d-mcs (endpoint-only)"] * 1.001
