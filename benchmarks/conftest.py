"""Shared configuration for the figure-reproduction benchmarks.

Every benchmark regenerates one figure of the paper's evaluation section by
invoking the corresponding driver in :mod:`repro.bench.experiments` and
reports the resulting series through ``benchmark.extra_info`` (so they land
in the pytest-benchmark JSON) and on stdout (run with ``-s`` to see the
pivoted, paper-style tables).

Sweep sizes default to a quick setting so the full benchmark suite finishes
in a few minutes; set ``REPRO_BENCH_PROCS`` (e.g. ``"4 8 16 32 64"``) and
``REPRO_BENCH_SCALE`` to enlarge them.
"""

from __future__ import annotations

import os
from typing import Sequence, Tuple

import pytest


def bench_process_counts() -> Tuple[int, ...]:
    env = os.environ.get("REPRO_BENCH_PROCS")
    if env:
        return tuple(int(tok) for tok in env.replace(",", " ").split())
    # The horizon scheduler (PR 1) made P=64 sweeps cheap enough for the
    # default CI-sized run, so the figures now cover the paper's full x-axis.
    return (4, 8, 16, 32, 64)


def bench_iterations(base: int = 12) -> int:
    try:
        scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        scale = 1.0
    return max(4, int(base * scale))


@pytest.fixture
def process_counts() -> Tuple[int, ...]:
    return bench_process_counts()


@pytest.fixture
def iterations() -> int:
    return bench_iterations()


def attach_series(benchmark, rows: Sequence[dict], *, series: str, value: str, x: str = "P") -> None:
    """Record the figure's series in the benchmark's extra_info and print it."""
    from repro.bench.report import format_figure

    table = format_figure(rows, title=benchmark.name, series=series, value=value, x=x)
    print("\n" + table)
    benchmark.extra_info["series_field"] = series
    benchmark.extra_info["value_field"] = value
    benchmark.extra_info["points"] = [
        {x: row[x], series: row[series], value: row[value]} for row in rows
    ]
