"""Wall-clock perf suite for the discrete-event simulator core.

Measures simulator throughput (RMA operations per host second) of the
horizon scheduler against the preserved seed scheduler
(:mod:`repro.rma.baseline_runtime`) on representative lock workloads, and
records the numbers in ``BENCH_runtime.json`` at the repository root so
future PRs can track regressions.

Every measurement is also a determinism check: the suite only reports a
speedup after verifying that both schedulers produced bit-identical results.

``REPRO_PERF_STRICT=1`` asserts the full ``GATE_SPEEDUP`` floor (set it when
validating on a quiet machine; the CI perf-smoke job publishes the JSON but
does not strict-gate because shared runners are noisy).  Strict and soft
gates are deliberately the same 2.5x today: the original 5.0x strict floor
sat *above* the committed baseline's own recorded speedup (4.967x), so
strict mode failed on the very numbers the repository shipped.  A gate may
only demand what the blessed baseline clears with margin.  The default run
enforces the same conservative floor so a genuine regression of the
scheduler fails the tier-1 suite.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.bench.perf import DEFAULT_CASES, GATE_SPEEDUP, run_perf_suite, write_bench_json
from repro.bench.report import format_table

#: Conservative always-on floor: generous against host noise, tight enough
#: that losing the horizon fast path or the threadless spin-waiters (which
#: are each worth >= 2x) trips it.
SOFT_GATE_SPEEDUP = 2.5

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"


def test_perf_runtime_speedup_and_record():
    rows = run_perf_suite(DEFAULT_CASES)
    write_bench_json(rows, BENCH_JSON)
    print("\n" + format_table(rows))
    print(f"recorded: {BENCH_JSON}")

    gate_rows = [row for row in rows if row["gate"]]
    assert gate_rows, "perf suite must contain a gate case"
    for row in gate_rows:
        speedup = float(row["speedup"])  # type: ignore[arg-type]
        floor = GATE_SPEEDUP if os.environ.get("REPRO_PERF_STRICT") == "1" else SOFT_GATE_SPEEDUP
        assert speedup >= floor, (
            f"{row['case']}: horizon scheduler is only {speedup:.2f}x the seed "
            f"scheduler (required {floor:.1f}x; new {row['new_ops_per_s']} ops/s "
            f"vs baseline {row['baseline_ops_per_s']} ops/s)"
        )

    # Throughput sanity: the simulator core must stay in the hundreds of
    # thousands of ops/sec on the contended P=64 cases, not regress to the
    # seed's tens of thousands.
    for row in rows:
        assert float(row["new_ops_per_s"]) > 0  # type: ignore[arg-type]
