"""Figure 5 (a-c): RMA-RW against the centralized foMPI-RW baseline.

Paper reference points: RMA-RW outperforms foMPI-RW by more than 6x in
throughput for P >= 64 across writer fractions, read-dominated mixes
(F_W = 0.2%) achieve the highest absolute throughput, and RMA-RW's latency
stays an order of magnitude below the baseline's at scale.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_series, bench_iterations, bench_process_counts
from repro.bench import experiments
from repro.bench.report import summarize_speedup

pytestmark = pytest.mark.benchmark(group="figure-5")


def _run(benchmark, bench_name: str, value: str):
    rows = benchmark.pedantic(
        lambda: experiments.figure5(
            benchmarks=(bench_name,),
            process_counts=bench_process_counts(),
            iterations=bench_iterations(),
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="series", value=value)
    higher = value != "latency_us"
    for fw_label in ("0.2%", "2%", "5%"):
        benchmark.extra_info[f"speedup_fw_{fw_label}"] = summarize_speedup(
            rows,
            ours=f"rma-rw {fw_label}",
            baseline=f"fompi-rw {fw_label}",
            value=value,
            series="series",
            higher_is_better=higher,
        )
    return rows


def test_fig5a_latency(benchmark):
    """Figure 5a: latency (LB) for F_W in {0.2%, 2%, 5%}."""
    rows = _run(benchmark, "lb", "latency_us")
    assert all(r["latency_us"] > 0 for r in rows)


def test_fig5b_ecsb(benchmark):
    """Figure 5b: throughput (ECSB) for F_W in {0.2%, 2%, 5%}."""
    rows = _run(benchmark, "ecsb", "throughput_mln_s")
    largest = max(r["P"] for r in rows)
    at_scale = {r["series"]: r["throughput_mln_s"] for r in rows if r["P"] == largest}
    # Shape check: at the largest sweep point RMA-RW must beat the centralized
    # baseline for the moderate writer fractions.
    assert at_scale["rma-rw 2%"] >= at_scale["fompi-rw 2%"]
    assert at_scale["rma-rw 5%"] >= at_scale["fompi-rw 5%"]


def test_fig5c_sob(benchmark):
    """Figure 5c: throughput (SOB) for F_W in {0.2%, 2%, 5%}."""
    rows = _run(benchmark, "sob", "throughput_mln_s")
    largest = max(r["P"] for r in rows)
    at_scale = {r["series"]: r["throughput_mln_s"] for r in rows if r["P"] == largest}
    assert at_scale["rma-rw 5%"] >= at_scale["fompi-rw 5%"]
