"""Figure 4 (a-f): the impact of RMA-RW's thresholds T_DC, T_L,i and T_R.

Paper reference points: very small T_DC (many counters) burdens writers at
large P; moderate/large T_DC helps until reader contention dominates (4a).
Smaller locality products move the lock to the readers sooner and raise
throughput for read-heavy mixes (4b).  Keeping the lock longer inside a node
(larger node-level T_L) raises throughput but also average latency (4c/4d).
Larger T_R favours reader throughput when writers are rare (4e), and for
moderate writer fractions the exact T_R matters little (4f).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_series, bench_iterations, bench_process_counts
from repro.bench import experiments

pytestmark = pytest.mark.benchmark(group="figure-4")


def test_fig4a_tdc(benchmark):
    """Figure 4a: T_DC sweep (SOB, F_W = 2%)."""
    rows = benchmark.pedantic(
        lambda: experiments.figure4a(
            process_counts=bench_process_counts(), iterations=bench_iterations()
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="t_dc", value="throughput_mln_s")
    assert all(r["throughput_mln_s"] > 0 for r in rows)


def test_fig4b_tl_product(benchmark):
    """Figure 4b: sweep of the locality-threshold product (SOB, F_W = 25%)."""
    rows = benchmark.pedantic(
        lambda: experiments.figure4b(
            process_counts=bench_process_counts(), iterations=bench_iterations()
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="tl_product", value="throughput_mln_s")
    assert all(r["throughput_mln_s"] > 0 for r in rows)


def test_fig4c_tl_split(benchmark):
    """Figure 4c: splits of a fixed T_L product, throughput (SOB, F_W = 25%)."""
    rows = benchmark.pedantic(
        lambda: experiments.figure4c(
            process_counts=bench_process_counts(), iterations=bench_iterations()
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="tl_split", value="throughput_mln_s")
    assert all(r["throughput_mln_s"] > 0 for r in rows)


def test_fig4d_tl_split_latency(benchmark):
    """Figure 4d: splits of a fixed T_L product, latency (LB, F_W = 25%)."""
    rows = benchmark.pedantic(
        lambda: experiments.figure4d(
            process_counts=bench_process_counts(), iterations=bench_iterations()
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="tl_split", value="latency_us")
    assert all(r["latency_us"] > 0 for r in rows)


def test_fig4e_tr(benchmark):
    """Figure 4e: T_R sweep (ECSB, F_W = 0.2%)."""
    rows = benchmark.pedantic(
        lambda: experiments.figure4e(
            process_counts=bench_process_counts(), iterations=bench_iterations()
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="t_r", value="throughput_mln_s")
    # Shape check: at the largest P, a generous T_R must not lose to the smallest one.
    largest = max(r["P"] for r in rows)
    at_scale = {r["t_r"]: r["throughput_mln_s"] for r in rows if r["P"] == largest}
    assert at_scale[max(at_scale)] >= at_scale[min(at_scale)] * 0.8


def test_fig4f_tr_fw(benchmark):
    """Figure 4f: T_R x F_W interaction (ECSB, F_W in {2%, 5%})."""
    rows = benchmark.pedantic(
        lambda: experiments.figure4f(
            process_counts=bench_process_counts(), iterations=bench_iterations()
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="series", value="throughput_mln_s")
    assert all(r["throughput_mln_s"] > 0 for r in rows)
