"""Figure 3 (a-e): RMA-MCS vs D-MCS vs foMPI-Spin on the five microbenchmarks.

Paper reference points (Cray XC30, up to P=1024): RMA-MCS has the lowest
latency (about 10x below foMPI-Spin and 4x below D-MCS at P=1024) and the
highest throughput on every benchmark; foMPI-Spin collapses as P grows; the
throughput of the queue-based locks briefly *increases* when filling the
first node (cheap intra-node passing) before the inter-node regime begins.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_series, bench_iterations, bench_process_counts
from repro.bench import experiments
from repro.bench.report import summarize_speedup

pytestmark = pytest.mark.benchmark(group="figure-3")


def _run_figure3(benchmark, bench_name: str, value: str):
    rows = benchmark.pedantic(
        lambda: experiments.figure3(
            benchmarks=(bench_name,),
            process_counts=bench_process_counts(),
            iterations=bench_iterations(),
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="scheme", value=value)
    higher_is_better = value != "latency_us"
    benchmark.extra_info["rma_mcs_vs_fompi_spin"] = summarize_speedup(
        rows, ours="rma-mcs", baseline="fompi-spin", value=value, higher_is_better=higher_is_better
    )
    benchmark.extra_info["rma_mcs_vs_d_mcs"] = summarize_speedup(
        rows, ours="rma-mcs", baseline="d-mcs", value=value, higher_is_better=higher_is_better
    )
    return rows


def test_fig3a_latency(benchmark):
    """Figure 3a: acquire+release latency (LB)."""
    rows = _run_figure3(benchmark, "lb", "latency_us")
    largest = max(r["P"] for r in rows)
    at_scale = {r["scheme"]: r["latency_us"] for r in rows if r["P"] == largest}
    # Shape check: the topology-aware lock must win at the largest sweep point.
    assert at_scale["rma-mcs"] <= at_scale["fompi-spin"]


def test_fig3b_ecsb(benchmark):
    """Figure 3b: empty-critical-section throughput (ECSB)."""
    rows = _run_figure3(benchmark, "ecsb", "throughput_mln_s")
    largest = max(r["P"] for r in rows)
    at_scale = {r["scheme"]: r["throughput_mln_s"] for r in rows if r["P"] == largest}
    assert at_scale["rma-mcs"] >= at_scale["fompi-spin"]


def test_fig3c_sob(benchmark):
    """Figure 3c: single-operation throughput (SOB)."""
    rows = _run_figure3(benchmark, "sob", "throughput_mln_s")
    largest = max(r["P"] for r in rows)
    at_scale = {r["scheme"]: r["throughput_mln_s"] for r in rows if r["P"] == largest}
    assert at_scale["rma-mcs"] >= at_scale["fompi-spin"]


def test_fig3d_wcsb(benchmark):
    """Figure 3d: workload-critical-section throughput (WCSB)."""
    _run_figure3(benchmark, "wcsb", "throughput_mln_s")


def test_fig3e_warb(benchmark):
    """Figure 3e: wait-after-release throughput (WARB)."""
    _run_figure3(benchmark, "warb", "throughput_mln_s")
