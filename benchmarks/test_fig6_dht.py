"""Figure 6 (a-d): distributed-hashtable total time under three locking policies.

Paper reference points: for F_W in {2%, 5%, 20%} RMA-RW beats foMPI-RW (and
for the read-dominated mixes approaches the unsynchronized foMPI-A variant);
for F_W = 0% foMPI-RW and RMA-RW perform comparably.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_series, bench_iterations, bench_process_counts
from repro.bench import experiments
from repro.bench.report import summarize_speedup

pytestmark = pytest.mark.benchmark(group="figure-6")

FIGURES = {"6a": 0.2, "6b": 0.05, "6c": 0.02, "6d": 0.0}


def _run(benchmark, figure: str):
    fw = FIGURES[figure]
    rows = benchmark.pedantic(
        lambda: experiments.figure6(
            fw_values=(fw,),
            process_counts=bench_process_counts(),
            ops_per_process=max(6, bench_iterations() // 2),
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="scheme", value="total_time_us")
    benchmark.extra_info["rma_rw_vs_fompi_rw_time_ratio"] = summarize_speedup(
        rows, ours="rma-rw", baseline="fompi-rw", value="total_time_us", higher_is_better=False
    )
    return rows


def test_fig6a_fw20(benchmark):
    """Figure 6a: DHT total time, F_W = 20%."""
    rows = _run(benchmark, "6a")
    largest = max(r["P"] for r in rows)
    at_scale = {r["scheme"]: r["total_time_us"] for r in rows if r["P"] == largest}
    assert at_scale["rma-rw"] <= at_scale["fompi-rw"] * 1.1


def test_fig6b_fw5(benchmark):
    """Figure 6b: DHT total time, F_W = 5%."""
    rows = _run(benchmark, "6b")
    largest = max(r["P"] for r in rows)
    at_scale = {r["scheme"]: r["total_time_us"] for r in rows if r["P"] == largest}
    assert at_scale["rma-rw"] <= at_scale["fompi-rw"] * 1.1


def test_fig6c_fw2(benchmark):
    """Figure 6c: DHT total time, F_W = 2%."""
    rows = _run(benchmark, "6c")
    largest = max(r["P"] for r in rows)
    at_scale = {r["scheme"]: r["total_time_us"] for r in rows if r["P"] == largest}
    assert at_scale["rma-rw"] <= at_scale["fompi-rw"] * 1.1


def test_fig6d_fw0(benchmark):
    """Figure 6d: DHT total time, F_W = 0% (reads only)."""
    rows = _run(benchmark, "6d")
    assert all(r["inserts"] == 0 for r in rows)
