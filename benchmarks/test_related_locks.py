"""Related-work lock comparison (beyond the paper's figures).

Positions the paper's locks against distributed adaptations of the
shared-memory designs it cites: a FIFO ticket lock, the hierarchical backoff
lock (Radovic & Hagersten), a two-level cohort lock (Dice et al.) and the
NUMA-aware reader-writer lock with per-node reader counters (Calciu et al.).

Expected shape: the centralized spinning schemes (foMPI-Spin, ticket, HBO)
saturate first; the queue/cohort designs scale further; RMA-MCS matches or
beats the cohort lock thanks to its per-level thresholds; on the RW side the
per-node-counter lock sits between foMPI-RW and RMA-RW for read-dominated
mixes.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_series, bench_iterations, bench_process_counts
from repro.bench import experiments

pytestmark = pytest.mark.benchmark(group="related-locks")


def test_related_mcs_throughput(benchmark):
    """Mutual-exclusion schemes (paper + related work) on ECSB throughput."""
    rows = benchmark.pedantic(
        lambda: experiments.related_mcs_comparison(
            benchmarks=("ecsb",),
            process_counts=bench_process_counts(),
            iterations=bench_iterations(),
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="series", value="throughput_mln_s")
    largest = max(r["P"] for r in rows)
    at_scale = {r["series"]: r["throughput_mln_s"] for r in rows if r["P"] == largest}
    # The topology-aware queue lock must beat every centralized spinning scheme.
    assert at_scale["rma-mcs"] >= at_scale["fompi-spin"]
    assert at_scale["rma-mcs"] >= at_scale["ticket"]
    assert at_scale["rma-mcs"] >= at_scale["hbo"]
    # The cohort lock (two-level, NUMA-style) must also beat plain centralized spinning.
    assert at_scale["cohort"] >= at_scale["fompi-spin"]


def test_related_rw_throughput(benchmark):
    """Reader-writer schemes (paper + NUMA-aware RW) on a read-dominated ECSB mix."""
    rows = benchmark.pedantic(
        lambda: experiments.related_rw_comparison(
            fw_values=(0.002,),
            process_counts=bench_process_counts(),
            iterations=bench_iterations(),
        ),
        rounds=1,
        iterations=1,
    )
    attach_series(benchmark, rows, series="series", value="throughput_mln_s")
    largest = max(r["P"] for r in rows)
    at_scale = {r["series"]: r["throughput_mln_s"] for r in rows if r["P"] == largest}
    # RMA-RW stays on top of the read-dominated comparison at the largest sweep point.
    assert at_scale["rma-rw 0.2%"] >= at_scale["fompi-rw 0.2%"]
    assert at_scale["rma-rw 0.2%"] >= at_scale["numa-rw 0.2%"]
