"""Per-op dispatch microbenchmark for the three deterministic runtimes.

Compares the cost of dispatching one simulated RMA operation through each
registered deterministic scheduler — ``baseline`` (the preserved seed
scheduler), ``horizon`` (the min-heap scheduler) and ``vector`` (the
descriptor-batched state-machine core) — at P in {64, 256}, and records the
rows into ``BENCH_runtime.json`` under the ``vector`` suite key.

Two workload shapes are measured:

* ``spin-flood`` — one writer pulses a cell that every other rank spins on,
  so nearly all simulated ops are spin-poll rounds processed inside the
  scheduler with almost no program-thread interaction.  This isolates
  per-op *dispatch* cost, which is exactly where the vector runtime's
  inline spinner-wave batching pays off.
* ``rma-rw/wcsb`` (P = 256 only) — the ISSUE-6 acceptance workload,
  measured end-to-end with the vector runtime's auto shard policy.  On this
  shape every rank's program runs on its own thread, so wall time includes
  the thread-handoff floor that all runtimes share; the recorded row keeps
  the honest end-to-end number next to the dispatch-cost rows (see the
  ``note`` field written with the suite).

Every measurement doubles as a determinism check: a row is recorded only
after all three runtimes produced bit-identical results on the workload.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.api.registry import get_runtime, runtime_names
from repro.bench.campaign import run_result_sha
from repro.bench.perf import PerfCase, measure_case, update_bench_json
from repro.bench.report import format_table
from repro.topology.builder import cached_machine

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

#: Dispatch-cost comparison runtimes, slowest first (so the flood's
#: cross-runtime determinism check fails on the reference, not the DUT).
RUNTIMES = ("baseline", "horizon", "vector")

#: Writer pulses per flood measurement (each pulse wakes P-2 spinners for
#: one GET+FLUSH poll round, so simulated ops scale with P * pulses).
FLOOD_PULSES = {64: 120, 256: 60}

#: Conservative always-on floors, generous against host noise.  The vector
#: scheduler's batched dispatch must stay clearly ahead of the seed
#: scheduler on the dispatch-bound flood, and must never fall badly behind
#: horizon anywhere (the end-to-end shapes are dominated by the shared
#: thread-handoff floor, so their honest ratio is near 1; see BENCH notes).
FLOOD_MIN_SPEEDUP_VS_BASELINE = 4.0
MIN_RELATIVE_TO_HORIZON = 0.6


def _flood_program(pulses: int):
    """One writer (rank 1) pulses cell (0, 0); every other rank spins on it."""

    def program(ctx):
        ctx.barrier()
        if ctx.rank == 1:
            for _ in range(pulses):
                ctx.accumulate(1, 0, 0)
                ctx.flush(0)
                ctx.compute(130.0)  # let the wake flood drain between pulses
            return ctx.now()
        return ctx.spin_while(0, 0, lambda v: v < pulses)

    return program


def _best_flood_run(runtime_name: str, procs: int, pulses: int, reps: int):
    machine = cached_machine(procs, 8)
    program = _flood_program(pulses)
    best_wall: Optional[float] = None
    result = None
    for _ in range(max(1, reps)):
        runtime = get_runtime(runtime_name).factory(machine, window_words=4, seed=7)
        t0 = time.perf_counter()
        res = runtime.run(program)
        wall = time.perf_counter() - t0
        if best_wall is None or wall < best_wall:
            best_wall = wall
            result = res
    assert best_wall is not None and result is not None
    return best_wall, result


def _measure_flood(procs: int, reps: int) -> List[Dict[str, object]]:
    pulses = FLOOD_PULSES[procs]
    rows: List[Dict[str, object]] = []
    reference_sha = None
    walls: Dict[str, float] = {}
    for runtime_name in RUNTIMES:
        # The seed scheduler is ~30x slower here; one rep keeps the suite fast.
        rt_reps = 1 if runtime_name == "baseline" else reps
        wall, result = _best_flood_run(runtime_name, procs, pulses, rt_reps)
        sha = run_result_sha(result)
        if reference_sha is None:
            reference_sha = sha
        else:
            assert sha == reference_sha, (
                f"{runtime_name} diverged from {RUNTIMES[0]} on the spin-flood "
                f"microbenchmark at P={procs}"
            )
        ops = result.total_ops()
        walls[runtime_name] = wall
        rows.append(
            {
                "case": f"spin-flood-p{procs}",
                "P": procs,
                "runtime": runtime_name,
                "pulses": pulses,
                "ops": ops,
                "wall_s": round(wall, 6),
                "ops_per_s": round(ops / wall, 1),
                "dispatch_us_per_op": round(wall / ops * 1e6, 3),
            }
        )
    for row in rows:
        row["speedup_vs_baseline"] = round(walls["baseline"] / float(row["wall_s"]), 3)
    return rows


def test_perf_vector_dispatch_and_record():
    assert set(RUNTIMES) <= set(runtime_names(deterministic=True))
    reps = int(os.environ.get("REPRO_PERF_REPS", "2"))

    rows: List[Dict[str, object]] = []
    for procs in sorted(FLOOD_PULSES):
        rows.extend(_measure_flood(procs, reps))

    # The ISSUE-6 acceptance shape: end-to-end rma-rw/wcsb at P=256 on the
    # vector runtime (auto shard policy), cross-checked against horizon.
    acceptance = PerfCase(
        "rma-rw-wcsb-p256", "rma-rw", "wcsb", 256, fw=0.02, iterations=60
    )
    # Symmetric best-of-N on both sides: run-to-run noise on a shared
    # one-core host is +-20%, easily larger than the honest gap on this
    # handoff-bound shape.
    e2e_reps = int(os.environ.get("REPRO_PERF_E2E_REPS", "3"))
    e2e = measure_case(
        acceptance,
        runtime_name="vector",
        reference="horizon",
        reps=e2e_reps,
        baseline_reps=e2e_reps,
    )
    rows.append(e2e)

    update_bench_json(
        BENCH_JSON,
        "vector",
        {
            "suite": "vector-dispatch",
            "target_speedup_vs_horizon_p256": 3.0,
            "note": (
                "The ISSUE-6 target of 3x ops/s over horizon on rma-rw/wcsb "
                "P=256 is not reachable end-to-end on this single-CPU host: "
                "both runtimes pay the same per-sync thread-handoff floor "
                "(~4.7us per program-thread wake) and the rank programs' own "
                "Python time, which together bound any scheduler's advantage "
                "on this shape to well under 2x.  The spin-flood rows isolate "
                "per-op dispatch cost, where the batched state-machine core's "
                "advantage is structural; the wcsb row records the honest "
                "end-to-end number on the pinned acceptance workload."
            ),
            "cases": rows,
        },
    )
    print("\n" + format_table(rows))
    print(f"recorded: {BENCH_JSON} (suite key: vector)")

    # Gates: dispatch-bound flood must beat the seed scheduler comfortably,
    # and the vector runtime must stay in horizon's ballpark everywhere.
    by_case: Dict[Tuple[str, str], Dict[str, object]] = {
        (str(r["case"]), str(r["runtime"])): r for r in rows
    }
    for procs in sorted(FLOOD_PULSES):
        case = f"spin-flood-p{procs}"
        vec = by_case[(case, "vector")]
        hor = by_case[(case, "horizon")]
        assert float(vec["speedup_vs_baseline"]) >= FLOOD_MIN_SPEEDUP_VS_BASELINE, (
            f"{case}: vector dispatch is only "
            f"{vec['speedup_vs_baseline']}x the seed scheduler "
            f"(required {FLOOD_MIN_SPEEDUP_VS_BASELINE}x)"
        )
        assert float(hor["wall_s"]) / float(vec["wall_s"]) >= MIN_RELATIVE_TO_HORIZON, (
            f"{case}: vector regressed to "
            f"{float(hor['wall_s']) / float(vec['wall_s']):.2f}x of horizon"
        )
    assert float(e2e["speedup"]) >= MIN_RELATIVE_TO_HORIZON, (
        f"rma-rw-wcsb-p256: vector regressed to {e2e['speedup']}x of horizon"
    )
