"""Setup shim for environments without the `wheel` package (offline legacy installs).

All project metadata lives in pyproject.toml; setuptools >= 61 reads it from there.
"""
from setuptools import setup

setup()
