#!/usr/bin/env python3
"""Key-value store example: the distributed hashtable under three locking policies.

This reproduces the scenario of the paper's Section 5.3 in miniature: many
processes hammer the local volume of one selected rank with a read-dominated
key-value workload (a few percent of inserts), and we compare the total time
of the three synchronization policies of Figure 6:

* ``fompi-a``  — no lock, atomics-only inserts/lookups,
* ``fompi-rw`` — a centralized reader-writer lock around every operation,
* ``rma-rw``   — the topology-aware RMA-RW lock around every operation.

Run with:  python examples/key_value_store.py
"""

from __future__ import annotations

import os

from repro import Machine
from repro.bench.report import format_table
from repro.dht import DHTWorkloadConfig, run_dht_benchmark

OPS_PER_PROCESS = int(os.environ.get("REPRO_EXAMPLE_OPS", "12"))
NODES = int(os.environ.get("REPRO_EXAMPLE_NODES", "4"))
PROCS_PER_NODE = int(os.environ.get("REPRO_EXAMPLE_PROCS_PER_NODE", "8"))
WRITE_FRACTIONS = (0.2, 0.02)


def main() -> None:
    machine = Machine.cluster(nodes=NODES, procs_per_node=PROCS_PER_NODE)
    print(f"Simulated machine: {machine.describe()}")
    print(f"Workload: {machine.num_processes - 1} clients x {OPS_PER_PROCESS} ops on rank 0's volume\n")

    rows = []
    for fw in WRITE_FRACTIONS:
        for scheme in ("fompi-a", "fompi-rw", "rma-rw"):
            config = DHTWorkloadConfig(
                machine=machine,
                scheme=scheme,  # type: ignore[arg-type]
                ops_per_process=OPS_PER_PROCESS,
                fw=fw,
                t_l=(4, 4),
                t_r=64,
                seed=5,
            )
            outcome = run_dht_benchmark(config)
            rows.append(
                {
                    "F_W": f"{fw * 100:g}%",
                    "scheme": scheme,
                    "total_time_us": round(outcome.total_time_us, 1),
                    "ops": outcome.total_ops,
                    "inserts": outcome.inserts,
                    "lookups": outcome.lookups,
                    "ops_per_s": round(outcome.ops_per_second, 1),
                }
            )

    print(format_table(rows))
    print(
        "\nReading guide: with a read-dominated mix the RW locks admit readers "
        "concurrently, and RMA-RW additionally keeps its counters local to each "
        "node, so its total time stays closest to the unsynchronized atomics-only "
        "variant while still providing consistent reader/writer isolation."
    )


if __name__ == "__main__":
    main()
