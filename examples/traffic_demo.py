#!/usr/bin/env python3
"""Open-loop traffic over a lock table — including a third-party lock.

The traffic engine (:mod:`repro.traffic`) measures what the closed-loop
benchmarks cannot: a *service* of many locks under skewed, open-loop load,
judged by its latency tails.  This example shows the full integration story:

1. Register a third-party lock (a simple test-and-set lock with proportional
   backoff) with one ``@register_scheme`` decorator.
2. Register a custom traffic scenario — Zipf(1.2) popularity over a lock
   table, Poisson arrivals — with one ``register_traffic_scenario`` call.
3. Sweep the third-party lock against built-in schemes through the ordinary
   benchmark harness and print the p50/p99/p99.9 end-to-end latency table.

The centralized TAS lock and the centralized foMPI-RW stand-in serve every
key from a handful of rotated home words, while the topology-aware RMA locks
spread the queue state — under a skewed table the tails tell that story
directly.

Run with:  python examples/traffic_demo.py
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping

from repro.api import register_scheme
from repro.bench.harness import run_lock_benchmark
from repro.bench.report import format_table, traffic_percentile_rows
from repro.bench.workloads import LockBenchConfig
from repro.core.layout import LayoutAllocator
from repro.core.lock_base import LockHandle, LockSpec
from repro.rma.runtime_base import ProcessContext
from repro.topology.builder import xc30_like
from repro.traffic import TrafficScenario, register_traffic_scenario

ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERATIONS", "8"))
NODES = int(os.environ.get("REPRO_EXAMPLE_NODES", "4"))
PROCS_PER_NODE = int(os.environ.get("REPRO_EXAMPLE_PROCS_PER_NODE", "8"))
NUM_LOCKS = int(os.environ.get("REPRO_EXAMPLE_LOCKS", "256"))


# --------------------------------------------------------------------------- #
# 1. A third-party lock.  The spec follows the repository's layout convention
#    (frozen dataclass + base_offset), which is exactly what lets the traffic
#    engine replicate it into a lock table without any table-specific code.
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class DemoTASLockSpec(LockSpec):
    """A centralized test-and-set lock word with proportional backoff."""

    num_processes: int
    home_rank: int = 0
    base_offset: int = 0
    lock_offset: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        alloc = LayoutAllocator(base=self.base_offset)
        object.__setattr__(self, "lock_offset", alloc.field("demo_tas_word"))

    @property
    def window_words(self) -> int:
        return self.lock_offset + 1

    def init_window(self, rank: int) -> Mapping[int, int]:
        return {self.lock_offset: 0} if rank == self.home_rank else {}

    def make(self, ctx: ProcessContext) -> "DemoTASLockHandle":
        return DemoTASLockHandle(self, ctx)


class DemoTASLockHandle(LockHandle):
    def __init__(self, spec: DemoTASLockSpec, ctx: ProcessContext):
        self.spec = spec
        self.ctx = ctx

    def acquire(self) -> None:
        ctx, spec = self.ctx, self.spec
        backoff = 0.2
        while True:
            prev = ctx.cas(1, 0, spec.home_rank, spec.lock_offset)
            ctx.flush(spec.home_rank)
            if prev == 0:
                return
            ctx.compute(backoff)
            backoff = min(backoff * 2.0, 6.4)
            ctx.spin_while(spec.home_rank, spec.lock_offset, lambda v: v != 0)

    def release(self) -> None:
        ctx, spec = self.ctx, self.spec
        ctx.put(0, spec.home_rank, spec.lock_offset)
        ctx.flush(spec.home_rank)


@register_scheme("demo-tas", category="custom", help="third-party TAS lock (traffic demo)")
def _build_demo_tas(machine) -> DemoTASLockSpec:
    return DemoTASLockSpec(num_processes=machine.num_processes)


# --------------------------------------------------------------------------- #
# 2. A custom traffic scenario: hotter-than-default Zipf skew over the table.
# --------------------------------------------------------------------------- #

register_traffic_scenario(
    TrafficScenario(
        name="traffic-demo-hot",
        help="Zipf(1.2) over the demo table, Poisson arrivals",
        num_locks=NUM_LOCKS,
        arrival="poisson",
        mean_gap_us=10.0,
        key_dist="zipf",
        zipf_exponent=1.2,
    ),
    replace=True,
)


def main() -> None:
    machine = xc30_like(NODES * PROCS_PER_NODE, procs_per_node=PROCS_PER_NODE)
    print(f"Machine: {machine.describe()}")
    print(
        f"Scenario: traffic-demo-hot — Zipf(1.2) over {NUM_LOCKS} locks, "
        f"Poisson arrivals, {ITERATIONS} requests per rank\n"
    )

    results = []
    for scheme in ("demo-tas", "fompi-rw", "rma-mcs", "rma-rw"):
        config = LockBenchConfig(
            machine=machine,
            scheme=scheme,
            benchmark="traffic-demo-hot",
            iterations=ITERATIONS,
            fw=0.1,
            seed=7,
        )
        results.append(run_lock_benchmark(config))

    print(format_table(traffic_percentile_rows(results)))
    tails = {r.scheme: r.percentiles["e2e_p99_us"] for r in results}
    best = min(tails, key=tails.get)
    print(
        f"\nLowest p99 end-to-end latency: {best} "
        f"({tails[best]:.1f} us vs {tails['demo-tas']:.1f} us for the "
        f"centralized third-party TAS lock)."
    )


if __name__ == "__main__":
    main()
