#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation section in one go.

Runs the figure drivers of :mod:`repro.bench.experiments` with their default
(scaled-down) sweeps and prints each figure as a pivoted text table whose
layout matches the paper's plots (x axis = process count, one column per
scheme/threshold).  Set ``REPRO_BENCH_PROCS`` (e.g. ``"4 8 16 32 64 128"``)
and ``REPRO_BENCH_SCALE`` to enlarge the sweeps.

Run with:  python examples/reproduce_figures.py [figure ...]
where ``figure`` is any of: 3 4a 4b 4c 4d 4e 4f 5 6 ablations
"""

from __future__ import annotations

import sys

from repro.bench import experiments
from repro.bench.report import format_figure


def print_rows(rows, *, title, series="scheme", value="throughput_mln_s", x="P"):
    print(format_figure(rows, title=title, series=series, value=value, x=x))
    print()


def run_figure(name: str) -> None:
    if name == "3":
        rows = experiments.figure3()
        for fig, benchmark, value in (
            ("3a", "lb", "latency_us"),
            ("3b", "ecsb", "throughput_mln_s"),
            ("3c", "sob", "throughput_mln_s"),
            ("3d", "wcsb", "throughput_mln_s"),
            ("3e", "warb", "throughput_mln_s"),
        ):
            subset = [r for r in rows if r["figure"] == fig]
            print_rows(subset, title=f"Figure {fig} ({benchmark.upper()})", value=value)
    elif name == "4a":
        print_rows(experiments.figure4a(), title="Figure 4a (T_DC, SOB, F_W=2%)", series="t_dc")
    elif name == "4b":
        print_rows(experiments.figure4b(), title="Figure 4b (T_L product, SOB, F_W=25%)", series="tl_product")
    elif name == "4c":
        print_rows(experiments.figure4c(), title="Figure 4c (T_L split, SOB, F_W=25%)", series="tl_split")
    elif name == "4d":
        print_rows(experiments.figure4d(), title="Figure 4d (T_L split, LB, F_W=25%)", series="tl_split", value="latency_us")
    elif name == "4e":
        print_rows(experiments.figure4e(), title="Figure 4e (T_R, ECSB, F_W=0.2%)", series="t_r")
    elif name == "4f":
        print_rows(experiments.figure4f(), title="Figure 4f (T_R x F_W, ECSB)", series="series")
    elif name == "5":
        rows = experiments.figure5()
        for fig, value in (("5a", "latency_us"), ("5b", "throughput_mln_s"), ("5c", "throughput_mln_s")):
            subset = [r for r in rows if r["figure"] == fig]
            print_rows(subset, title=f"Figure {fig}", series="series", value=value)
    elif name == "6":
        rows = experiments.figure6()
        for fig in ("6a", "6b", "6c", "6d"):
            subset = [r for r in rows if r["figure"] == fig]
            if subset:
                print_rows(subset, title=f"Figure {fig} (DHT total time)", value="total_time_us")
    elif name == "ablations":
        print_rows(experiments.ablation_counter_placement(), title="Ablation: counter placement", series="series")
        print_rows(experiments.ablation_flat_latency(), title="Ablation: flat vs hierarchical fabric", series="series")
        print_rows(experiments.ablation_locality(), title="Ablation: RMA-MCS locality threshold", series="t_l2")
    else:
        raise SystemExit(f"unknown figure {name!r}; pick from 3 4a 4b 4c 4d 4e 4f 5 6 ablations")


def main() -> None:
    requested = sys.argv[1:] or ["3", "4a", "4b", "4c", "4d", "4e", "4f", "5", "6", "ablations"]
    for name in requested:
        run_figure(name)


if __name__ == "__main__":
    main()
