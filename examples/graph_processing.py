#!/usr/bin/env python3
"""Graph-processing example: fine-grained vertex locks over a distributed graph.

The paper motivates RMA-RW with irregular workloads such as graph processing,
where the structure (e.g. a social graph) is partitioned across the memories
of many nodes, almost all accesses are reads (neighbour queries, degree
lookups), and occasional updates (edge insertions) must be isolated.

This example builds a random graph with ``networkx``, partitions its vertices
across the simulated ranks, stores the adjacency information in each owner's
RMA window, and protects every partition with its own RMA-RW lock.  Ranks
then run a mixed workload of neighbour reads and edge insertions against
random partitions; the same workload is repeated with the centralized
foMPI-RW baseline for comparison.

Run with:  python examples/graph_processing.py
"""

from __future__ import annotations

import os
from typing import Dict, List

import networkx as nx

from repro import FompiRWLockSpec, Machine, RMARWLockSpec, SimRuntime
from repro.bench.report import format_table

NODES = int(os.environ.get("REPRO_EXAMPLE_NODES", "2"))
PROCS_PER_NODE = int(os.environ.get("REPRO_EXAMPLE_PROCS_PER_NODE", "4"))
NUM_VERTICES = int(os.environ.get("REPRO_EXAMPLE_VERTICES", "64"))
OPS_PER_RANK = int(os.environ.get("REPRO_EXAMPLE_OPS", "12"))
EDGE_INSERT_FRACTION = 0.05

#: Per-partition adjacency storage: a fixed-size degree-counter + edge list.
MAX_EDGES_PER_PARTITION = 512


def build_partitions(machine: Machine) -> Dict[int, List[int]]:
    """Assign each vertex of a random graph to an owning rank (round-robin)."""
    graph = nx.gnm_random_graph(NUM_VERTICES, NUM_VERTICES * 3, seed=11)
    partitions: Dict[int, List[int]] = {r: [] for r in machine.iter_ranks()}
    for vertex in graph.nodes:
        partitions[vertex % machine.num_processes].append(vertex)
    return partitions, graph


def run_workload(machine: Machine, lock_kind: str) -> Dict[str, float]:
    """Run the mixed read/update workload with per-partition locks of ``lock_kind``."""
    partitions, graph = build_partitions(machine)

    # One RW lock per partition.  Each lock gets its own window region so that
    # every partition can be locked independently (fine-grained locking).
    specs = []
    offset = 0
    for _ in machine.iter_ranks():
        if lock_kind == "rma-rw":
            spec = RMARWLockSpec(machine, t_dc=PROCS_PER_NODE, t_l=(2, 4), t_r=32, base_offset=offset)
        else:
            spec = FompiRWLockSpec(num_processes=machine.num_processes, base_offset=offset)
        specs.append(spec)
        offset = spec.window_words

    # Adjacency region: degree counter + flattened edge endpoints per owner.
    degree_offset = offset
    edges_offset = offset + 1
    window_words = edges_offset + MAX_EDGES_PER_PARTITION

    def window_init(rank: int) -> Dict[int, int]:
        values: Dict[int, int] = {}
        for spec in specs:
            values.update(spec.init_window(rank))
        local_edges: List[int] = []
        for vertex in partitions[rank]:
            for neighbour in graph.adj[vertex]:
                local_edges.extend([vertex, neighbour])
        values[degree_offset] = len(local_edges) // 2
        for i, endpoint in enumerate(local_edges[: MAX_EDGES_PER_PARTITION - 2]):
            values[edges_offset + i] = endpoint
        return values

    runtime = SimRuntime(machine, window_words=window_words, seed=3)

    def program(ctx):
        locks = [spec.make(ctx) for spec in specs]
        rng = ctx.rng
        ctx.barrier()
        start = ctx.now()
        reads = 0
        updates = 0
        for _ in range(OPS_PER_RANK):
            owner = int(rng.integers(0, ctx.nranks))
            lock = locks[owner]
            if rng.random() < EDGE_INSERT_FRACTION:
                # Edge insertion: exclusive access to the owner's partition.
                with lock.writing():
                    count = ctx.get(owner, degree_offset)
                    ctx.flush(owner)
                    slot = edges_offset + (2 * count) % (MAX_EDGES_PER_PARTITION - 2)
                    ctx.put(int(rng.integers(0, NUM_VERTICES)), owner, slot)
                    ctx.put(int(rng.integers(0, NUM_VERTICES)), owner, slot + 1)
                    ctx.put(count + 1, owner, degree_offset)
                    ctx.flush(owner)
                updates += 1
            else:
                # Neighbour scan: shared access; read the degree and a few edges.
                with lock.reading():
                    count = ctx.get(owner, degree_offset)
                    ctx.flush(owner)
                    for i in range(min(4, max(count, 0))):
                        ctx.get(owner, edges_offset + 2 * i)
                    ctx.flush(owner)
                reads += 1
        end = ctx.now()
        ctx.barrier()
        return {"elapsed": end - start, "reads": reads, "updates": updates}

    result = runtime.run(program, window_init=window_init)
    elapsed = max(r["elapsed"] for r in result.returns)
    total_ops = sum(r["reads"] + r["updates"] for r in result.returns)
    return {
        "lock": lock_kind,
        "elapsed_us": round(elapsed, 1),
        "ops": total_ops,
        "kops_per_s": round(total_ops / elapsed * 1e3, 2) if elapsed > 0 else 0.0,
        "rma_ops": result.total_ops(),
    }


def main() -> None:
    machine = Machine.cluster(nodes=NODES, procs_per_node=PROCS_PER_NODE)
    print(f"Simulated machine: {machine.describe()}")
    print(f"Graph: {NUM_VERTICES} vertices partitioned over {machine.num_processes} ranks; "
          f"{EDGE_INSERT_FRACTION * 100:g}% of operations are edge insertions\n")
    rows = [run_workload(machine, kind) for kind in ("rma-rw", "fompi-rw")]
    print(format_table(rows))
    print(
        "\nReading guide: with mostly-read vertex accesses the topology-aware "
        "lock's distributed counters let readers of the same node proceed "
        "without touching remote memory, which shows up as fewer expensive "
        "RMA operations and a shorter makespan."
    )


if __name__ == "__main__":
    main()
