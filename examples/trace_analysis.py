#!/usr/bin/env python3
"""Trace analysis: where do the lock protocols spend their communication time?

The paper's performance argument is about traffic placement: topology-aware
locks keep most RMA operations inside a compute node and avoid hammering a
single remote hot spot.  This example makes that visible by tracing every RMA
call of three locks under the same contended workload:

* foMPI-Spin  — centralized spinning, every operation hits one home rank;
* D-MCS       — queue lock, local spinning, but hand-offs ignore topology;
* RMA-MCS     — the paper's topology-aware tree of queues.

For each lock it prints the call mix, the breakdown of operations by
topological distance (self / same node / remote), the hottest target ranks
and an ASCII activity strip per rank.

Run with:  python examples/trace_analysis.py
"""

from __future__ import annotations

import os

from repro import Machine
from repro.bench.ascii_plot import bar_chart
from repro.bench.report import format_table
from repro.bench.trace import (
    TraceRecorder,
    distance_breakdown,
    hottest_targets,
    render_rank_activity,
    summarize_trace,
    trace_rows_by_distance,
)
from repro.core.baselines import FompiSpinLockSpec
from repro.core.dmcs import DMCSLockSpec
from repro.core.rma_mcs import RMAMCSLockSpec
from repro.rma.sim_runtime import SimRuntime

NODES = int(os.environ.get("REPRO_EXAMPLE_NODES", "4"))
PROCS_PER_NODE = int(os.environ.get("REPRO_EXAMPLE_PROCS_PER_NODE", "8"))
ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERATIONS", "8"))


def trace_lock(machine: Machine, spec, label: str) -> None:
    recorder = TraceRecorder()
    runtime = SimRuntime(machine, window_words=spec.window_words, tracer=recorder, seed=7)

    def program(ctx):
        lock = spec.make(ctx)
        ctx.barrier()
        for _ in range(ITERATIONS):
            with lock.held():
                ctx.compute(0.3)
        ctx.barrier()

    result = runtime.run(program, window_init=spec.init_window)
    summary = summarize_trace(recorder.events)
    breakdown = distance_breakdown(recorder.events, machine)

    print(f"=== {label} ===")
    print(f"total virtual time: {result.total_time_us:.1f} us, RMA calls: {summary.num_events}")
    print(format_table(summary.as_rows()))
    print()
    print(format_table(trace_rows_by_distance(breakdown)))
    print()
    print(
        bar_chart(
            {cls: values["ops_share_pct"] for cls, values in breakdown.items()},
            title="operation share by distance [%]",
            unit="%",
            width=40,
        )
    )
    print()
    print("hottest remote targets:")
    print(format_table(hottest_targets(recorder.events, top=3)))
    print()
    print(render_rank_activity(recorder.events, machine.num_processes, width=60))
    print()


def main() -> None:
    machine = Machine.cluster(nodes=NODES, procs_per_node=PROCS_PER_NODE)
    print(f"Simulated machine: {machine.describe()}")
    print(f"{ITERATIONS} lock acquisitions per rank, 0.3 us critical sections\n")

    p = machine.num_processes
    trace_lock(machine, FompiSpinLockSpec(num_processes=p), "foMPI-Spin (centralized)")
    trace_lock(machine, DMCSLockSpec(num_processes=p), "D-MCS (topology-oblivious queue)")
    trace_lock(machine, RMAMCSLockSpec(machine, t_l=(4, 8)), "RMA-MCS (topology-aware tree)")

    print(
        "Reading the tables: the topology-aware lock shifts the operation mix away\n"
        "from 'remote' towards 'same_node', which is exactly the effect that turns\n"
        "into the throughput and latency gaps of Figure 3 at scale."
    )


if __name__ == "__main__":
    main()
