#!/usr/bin/env python3
"""Quickstart: protect a shared counter with the RMA-RW lock via the public API.

This example uses the :class:`repro.api.Cluster` facade: it builds a small
simulated cluster (4 compute nodes with 8 processes each), creates one
topology-aware reader-writer lock (RMA-RW) through the scheme registry, runs
a registered microbenchmark on it, and then drives a custom SPMD program
through a :class:`repro.api.Session` whose window layout is merged
automatically.  Most ranks only read a shared value, a few write it; at the
end it prints the aggregate statistics of the simulated run.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import os

from repro.api import Cluster

#: Shrink the example when invoked from the test-suite.
ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERATIONS", "10"))
NODES = int(os.environ.get("REPRO_EXAMPLE_NODES", "4"))
PROCS_PER_NODE = int(os.environ.get("REPRO_EXAMPLE_PROCS_PER_NODE", "8"))


def main() -> None:
    with Cluster(procs=NODES * PROCS_PER_NODE, procs_per_node=PROCS_PER_NODE, seed=42) as c:
        print(f"Simulated machine: {c.describe()}")

        # One physical counter per node, a little locality at the node level,
        # and up to 64 consecutive readers per counter before a writer wins.
        lock = c.lock("rma-rw", t_dc=PROCS_PER_NODE, t_l=(4, 4), t_r=64)

        # 1. Run a registered microbenchmark on the lock: the work-critical-
        #    section benchmark with 2% writers, straight to a result row.
        result = c.bench(lock, "wcsb", fw=0.02, iterations=ITERATIONS)
        print(f"WCSB benchmark            : {result.throughput_mln_per_s:.3f} mln acquires/s "
              f"at P={result.num_processes} (F_W={result.fw:g})")

        # 2. Drive a custom SPMD program.  The session merges the lock's
        #    window layout and reserves one extra word for the shared value.
        session = c.session(lock, extra_words=1)
        shared_offset = lock.window_words

        def program(ctx):
            handle = lock.make(ctx)
            ctx.barrier()
            observed = 0
            # One writer per node; everyone else only reads.
            is_writer = ctx.rank % PROCS_PER_NODE == 0
            for _ in range(ITERATIONS):
                if is_writer:
                    with handle.writing():
                        current = ctx.get(0, shared_offset)
                        ctx.flush(0)
                        ctx.put(current + 1, 0, shared_offset)
                        ctx.flush(0)
                else:
                    with handle.reading():
                        observed = ctx.get(0, shared_offset)
                        ctx.flush(0)
            ctx.barrier()
            return observed

        run = session.run(program)

        final_value = session.window(0).read(shared_offset)
        writers = c.num_processes // PROCS_PER_NODE
        print(f"Final shared value        : {final_value} "
              f"(expected {writers * ITERATIONS} = {writers} writers x {ITERATIONS} increments)")
        print(f"Virtual makespan          : {run.total_time_us:.1f} us")
        print(f"Total RMA operations      : {run.total_ops()}")
        print(f"Operations by type        : {dict(sorted(run.op_counts.items()))}")
        assert final_value == writers * ITERATIONS, "lost update: the lock failed!"
        print("OK: no lost updates, readers and writers were correctly synchronized.")


if __name__ == "__main__":
    main()
