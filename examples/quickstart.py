#!/usr/bin/env python3
"""Quickstart: protect a shared counter with the RMA-RW lock.

This example builds a small simulated cluster (4 compute nodes with 8
processes each), creates one topology-aware reader-writer lock (RMA-RW), and
lets every rank repeatedly enter the critical section: most ranks only read a
shared value, a few write it.  At the end it prints the aggregate statistics
of the simulated run, including how many RMA operations the protocol issued
and how long the run took in virtual time.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import os

from repro import Machine, RMARWLockSpec, SimRuntime

#: Shrink the example when invoked from the test-suite.
ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERATIONS", "10"))
NODES = int(os.environ.get("REPRO_EXAMPLE_NODES", "4"))
PROCS_PER_NODE = int(os.environ.get("REPRO_EXAMPLE_PROCS_PER_NODE", "8"))


def main() -> None:
    machine = Machine.cluster(nodes=NODES, procs_per_node=PROCS_PER_NODE)
    print(f"Simulated machine: {machine.describe()}")

    # One physical counter per node, a little locality at the node level, and
    # up to 64 consecutive readers per counter before a waiting writer wins.
    spec = RMARWLockSpec(machine, t_dc=PROCS_PER_NODE, t_l=(4, 4), t_r=64)

    # The lock occupies the first `spec.window_words` words of every rank's
    # window; we use one extra word on rank 0 as the shared protected value.
    shared_offset = spec.window_words
    runtime = SimRuntime(machine, window_words=spec.window_words + 1, seed=42)

    def program(ctx):
        lock = spec.make(ctx)
        ctx.barrier()
        observed = 0
        # One writer per node; everyone else only reads.
        is_writer = ctx.rank % PROCS_PER_NODE == 0
        for _ in range(ITERATIONS):
            if is_writer:
                with lock.writing():
                    current = ctx.get(0, shared_offset)
                    ctx.flush(0)
                    ctx.put(current + 1, 0, shared_offset)
                    ctx.flush(0)
            else:
                with lock.reading():
                    observed = ctx.get(0, shared_offset)
                    ctx.flush(0)
        ctx.barrier()
        return observed

    result = runtime.run(program, window_init=spec.init_window)

    final_value = runtime.window(0).read(shared_offset)
    writers = machine.num_processes // PROCS_PER_NODE
    print(f"Final shared value        : {final_value} "
          f"(expected {writers * ITERATIONS} = {writers} writers x {ITERATIONS} increments)")
    print(f"Virtual makespan          : {result.total_time_us:.1f} us")
    print(f"Total RMA operations      : {result.total_ops()}")
    print(f"Operations by type        : {dict(sorted(result.op_counts.items()))}")
    assert final_value == writers * ITERATIONS, "lost update: the lock failed!"
    print("OK: no lost updates, readers and writers were correctly synchronized.")


if __name__ == "__main__":
    main()
