#!/usr/bin/env python3
"""The adaptive control plane — policy-switched lock tables, end to end.

The paper's sensitivity analysis (Section 5, Figure 4) shows the best lock
design depends on the workload: reader-writer locks with long reader leases
win read-heavy phases, queue-based MCS handoff wins write storms.  The
control plane (:mod:`repro.control`) turns that into a runtime mechanism —
every lock-table entry is a mutable *scheme slot*, and a declarative
:class:`~repro.control.policy.PolicyTable` swaps schemes per entry at traffic
phase boundaries, deterministically.

This example shows the whole story on a third-party lock:

1. Register a third-party lock (``demo-tas``) with ``@register_scheme``,
   declaring a tunable backoff threshold — no control-plane code at all.
2. Write a policy whose rules target built-in schemes *and* the third-party
   lock, and register a phased scenario carrying that policy.
3. Run it through the ordinary harness: the swap plan derives from
   virtual-time statistics only, so the horizon and baseline schedulers
   produce bit-identical fingerprints — swaps included.

Run with:  python examples/adaptive_demo.py
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping

from repro.api import ParamSpec, register_scheme
from repro.bench.campaign import run_result_sha
from repro.bench.harness import run_lock_benchmark_detailed
from repro.bench.workloads import LockBenchConfig
from repro.control import PolicyRule, PolicyTable
from repro.core.layout import LayoutAllocator
from repro.core.lock_base import LockHandle, LockSpec
from repro.rma.runtime_base import ProcessContext
from repro.topology.builder import xc30_like
from repro.traffic import Phase, TrafficScenario, register_traffic_scenario

ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERATIONS", "10"))
NODES = int(os.environ.get("REPRO_EXAMPLE_NODES", "2"))
PROCS_PER_NODE = int(os.environ.get("REPRO_EXAMPLE_PROCS_PER_NODE", "4"))


# --------------------------------------------------------------------------- #
# 1. A third-party lock with a tunable threshold.
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class DemoTASLockSpec(LockSpec):
    """A centralized test-and-set lock word with proportional backoff."""

    num_processes: int
    home_rank: int = 0
    max_backoff_us: float = 6.0
    base_offset: int = 0
    lock_offset: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        alloc = LayoutAllocator(base=self.base_offset)
        object.__setattr__(self, "lock_offset", alloc.field("tas_word"))

    @property
    def window_words(self) -> int:
        return self.lock_offset + 1

    def init_window(self, rank: int) -> Mapping[int, int]:
        return {self.lock_offset: 0}

    def make(self, ctx: ProcessContext) -> "DemoTASLockHandle":
        return DemoTASLockHandle(self, ctx)


class DemoTASLockHandle(LockHandle):
    def __init__(self, spec: DemoTASLockSpec, ctx: ProcessContext):
        self.spec = spec
        self.ctx = ctx

    def acquire(self) -> None:
        ctx, spec = self.ctx, self.spec
        backoff = 0.2
        while True:
            prev = ctx.cas(1, 0, spec.home_rank, spec.lock_offset)
            ctx.flush(spec.home_rank)
            if prev == 0:
                return
            ctx.compute(float(ctx.rng.uniform(0.0, backoff)))
            backoff = min(backoff * 2.0, spec.max_backoff_us)

    def release(self) -> None:
        self.ctx.put(0, self.spec.home_rank, self.spec.lock_offset)
        self.ctx.flush(self.spec.home_rank)


@register_scheme(
    "demo-tas",
    category="custom",
    params=(
        ParamSpec("home_rank", int, 0, "rank hosting the lock word", tunable=False),
        ParamSpec("max_backoff_us", float, 6.0, "backoff cap in microseconds"),
    ),
    help="centralized TAS lock with proportional backoff (adaptive demo)",
    replace=True,  # keep the example re-runnable within one process
)
def _build_demo_tas(machine, home_rank=0, max_backoff_us=6.0):
    return DemoTASLockSpec(
        num_processes=machine.num_processes,
        home_rank=home_rank,
        max_backoff_us=max_backoff_us,
    )


# --------------------------------------------------------------------------- #
# 2. A policy mixing built-in and third-party targets, on a phased scenario.
#    Rule order is priority: write storms take the MCS queue, read-heavy
#    entries take the RW lock with a long reader lease, and everything else
#    (the lukewarm middle) falls through to the third-party TAS lock with a
#    tightened backoff cap.
# --------------------------------------------------------------------------- #

DEMO_POLICY = PolicyTable(
    rules=(
        PolicyRule(name="write-storm", scheme="d-mcs", max_read_fraction=0.3,
                   min_requests=4),
        PolicyRule(name="read-heavy", scheme="rma-rw", params=(("t_r", 256),),
                   min_read_fraction=0.7, min_requests=4),
        PolicyRule(name="lukewarm", scheme="demo-tas",
                   params=(("max_backoff_us", 1.5),), min_requests=4),
    ),
    max_swaps_per_boundary=4,
)

DEMO_SCENARIO = register_traffic_scenario(
    TrafficScenario(
        name="traffic-adaptive-demo",
        help="mixed warm-up -> write-storm -> read-heavy tail, demo policy attached",
        num_locks=12,
        arrival="poisson",
        mean_gap_us=8.0,
        key_dist="zipf",
        zipf_exponent=1.1,
        fw=0.05,
        phases=(
            Phase(duration_us=40.0, rate_scale=1.0, fw=0.5, name="mixed-warmup"),
            Phase(duration_us=60.0, rate_scale=2.0, fw=0.95, name="write-storm"),
            Phase(duration_us=None, rate_scale=0.75, fw=0.05, name="read-heavy-tail"),
        ),
    ),
    policy=DEMO_POLICY,
    tags=("traffic-demo",),
    replace=True,
)


# --------------------------------------------------------------------------- #
# 3. Run it — and check the determinism contract across schedulers.
# --------------------------------------------------------------------------- #

def main() -> None:
    machine = xc30_like(NODES * PROCS_PER_NODE, procs_per_node=PROCS_PER_NODE)
    config = LockBenchConfig(
        machine=machine,
        scheme="fompi-spin",
        benchmark="traffic-adaptive-demo",
        iterations=ITERATIONS,
        fw=0.2,
        seed=7,
    )

    print(f"Scenario {DEMO_SCENARIO.name}: {DEMO_SCENARIO.num_locks} locks, "
          f"{len(DEMO_SCENARIO.phases)} phases, {len(DEMO_POLICY.rules)} policy rules")

    shas = {}
    for scheduler in ("horizon", "baseline"):
        result, raw = run_lock_benchmark_detailed(config, scheduler=scheduler)
        shas[scheduler] = run_result_sha(raw)
        swaps = int(result.percentiles["swaps_total"])
        print(f"  {scheduler:>8}: p99 {result.percentiles['e2e_p99_us']:8.2f} us, "
              f"{swaps} scheme swaps, fingerprint {shas[scheduler][:16]}...")

    assert shas["horizon"] == shas["baseline"], "schedulers diverged!"
    print("OK: the adaptive run is bit-identical across schedulers, swaps included.")

    # The third-party rule really fired: the cooldown phase is a 50/50 mix,
    # which neither the write-storm nor the read-heavy window accepts.
    from repro.control import build_swap_plan
    from repro.control.policy import policy_min_entry_words
    from repro.traffic.table import build_lock_table

    table, _ = build_lock_table(
        machine, config.scheme, DEMO_SCENARIO.num_locks,
        min_entry_words=policy_min_entry_words(machine, DEMO_POLICY),
    )
    plan = build_swap_plan(DEMO_SCENARIO, config, table, DEMO_POLICY)
    by_rule = {}
    for swap in plan.swaps:
        by_rule[swap.rule] = by_rule.get(swap.rule, 0) + 1
    print(f"Swap plan: {len(plan.swaps)} swaps across {plan.num_boundaries} "
          f"boundaries, by rule: {dict(sorted(by_rule.items()))}")
    assert by_rule.get("lukewarm"), "the third-party demo-tas rule never fired"
    print("OK: the third-party lock joined the policy-switched table.")


if __name__ == "__main__":
    main()
