#!/usr/bin/env python3
"""Register a third-party lock with the public API — end to end.

This example shows what the registry layer (:mod:`repro.api`) buys you: a
lock implemented *outside* the repro package plugs into the scheme catalogue
with one decorator and immediately works with ``Cluster.lock``,
``Cluster.bench``, ``LockBenchConfig`` and the whole benchmark harness —
no edits to the harness, the CLI or the figure drivers.

The lock itself is deliberately simple: a **test-and-set lock with
proportional backoff** whose single lock word lives on a configurable home
rank.  Its spec/handle pair follows the same convention as every built-in
lock (see :mod:`repro.core.lock_base`), and its registration declares a typed
parameter (``home_rank``) that round-trips through ``Cluster.lock(**params)``.

Run with:  python examples/custom_lock.py
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Mapping

from repro.api import Cluster, ParamSpec, register_scheme
from repro.core.layout import LayoutAllocator
from repro.core.lock_base import LockHandle, LockSpec
from repro.rma.runtime_base import ProcessContext

ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERATIONS", "8"))
NODES = int(os.environ.get("REPRO_EXAMPLE_NODES", "2"))
PROCS_PER_NODE = int(os.environ.get("REPRO_EXAMPLE_PROCS_PER_NODE", "4"))


# --------------------------------------------------------------------------- #
# 1. A third-party lock: plain spec/handle classes, no repro internals.
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class TASBackoffLockSpec(LockSpec):
    """A centralized test-and-set lock with proportional backoff."""

    num_processes: int
    home_rank: int = 0
    min_backoff_us: float = 0.2
    max_backoff_us: float = 8.0
    base_offset: int = 0
    lock_offset: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if not 0 <= self.home_rank < self.num_processes:
            raise ValueError(f"home_rank {self.home_rank} out of range")
        alloc = LayoutAllocator(base=self.base_offset)
        object.__setattr__(self, "lock_offset", alloc.field("tas_word"))

    @property
    def window_words(self) -> int:
        return self.lock_offset + 1

    def init_window(self, rank: int) -> Mapping[int, int]:
        return {self.lock_offset: 0}

    def make(self, ctx: ProcessContext) -> "TASBackoffLockHandle":
        return TASBackoffLockHandle(self, ctx)


class TASBackoffLockHandle(LockHandle):
    """Per-process handle: CAS on the home word, backoff while held."""

    def __init__(self, spec: TASBackoffLockSpec, ctx: ProcessContext):
        self.spec = spec
        self.ctx = ctx

    def acquire(self) -> None:
        ctx = self.ctx
        spec = self.spec
        backoff = spec.min_backoff_us
        while True:
            prev = ctx.cas(1, 0, spec.home_rank, spec.lock_offset)
            ctx.flush(spec.home_rank)
            if prev == 0:
                return
            ctx.compute(float(ctx.rng.uniform(0.0, backoff)))
            backoff = min(backoff * 2.0, spec.max_backoff_us)

    def release(self) -> None:
        ctx = self.ctx
        ctx.put(0, self.spec.home_rank, self.spec.lock_offset)
        ctx.flush(self.spec.home_rank)


# --------------------------------------------------------------------------- #
# 2. One decorator: the lock joins the scheme catalogue.
# --------------------------------------------------------------------------- #

@register_scheme(
    "tas-backoff",
    category="custom",
    params=(
        ParamSpec("home_rank", int, 0, "rank hosting the lock word", tunable=False),
        ParamSpec("max_backoff_us", float, 8.0, "backoff cap in microseconds"),
    ),
    help="centralized test-and-set lock with proportional backoff (example)",
    replace=True,  # keep the example re-runnable within one process
)
def _build_tas_backoff(machine, home_rank=0, max_backoff_us=8.0):
    return TASBackoffLockSpec(
        num_processes=machine.num_processes,
        home_rank=home_rank,
        max_backoff_us=max_backoff_us,
    )


# --------------------------------------------------------------------------- #
# 3. Use it exactly like a built-in scheme.
# --------------------------------------------------------------------------- #

def main() -> None:
    with Cluster(procs=NODES * PROCS_PER_NODE, procs_per_node=PROCS_PER_NODE, seed=3) as c:
        print(f"Machine: {c.describe()}")

        lock = c.lock("tas-backoff", home_rank=1)
        print(f"Built {lock!r}: {lock.window_words} window word(s), home on rank 1")

        # The registered scheme runs under the standard harness (same warm-up
        # discipline, same metrics) next to a built-in comparison target.
        rows = []
        for scheme in ("tas-backoff", "d-mcs"):
            result = c.bench(scheme, "ecsb", iterations=ITERATIONS)
            rows.append((scheme, result.throughput_mln_per_s, result.latency_mean_us))
        print("\nscheme       throughput [mln/s]   mean latency [us]")
        for scheme, throughput, latency in rows:
            print(f"{scheme:<12} {throughput:>18.4f} {latency:>19.3f}")

        # Mutual exclusion check: a shared counter incremented under the lock.
        session = c.session(lock, extra_words=1)
        shared_offset = lock.window_words

        def program(ctx):
            handle = lock.make(ctx)
            ctx.barrier()
            for _ in range(ITERATIONS):
                with handle.held():
                    value = ctx.get(0, shared_offset)
                    ctx.flush(0)
                    ctx.put(value + 1, 0, shared_offset)
                    ctx.flush(0)
            ctx.barrier()

        session.run(program)
        final = session.window(0).read(shared_offset)
        expected = c.num_processes * ITERATIONS
        print(f"\nShared counter: {final} (expected {expected})")
        assert final == expected, "lost update: the custom lock is broken!"
        print("OK: the custom lock provides mutual exclusion through the public API.")


if __name__ == "__main__":
    main()
