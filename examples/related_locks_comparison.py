#!/usr/bin/env python3
"""Compare the paper's locks against the related-work designs it builds on.

Sections 2.3 and 7 of the paper position RMA-MCS and RMA-RW against a family
of shared-memory NUMA-aware locks.  This example runs distributed adaptations
of those designs (``repro.related``) side by side with the paper's own locks
and its centralized foMPI baselines on a simulated cluster:

* mutual exclusion: foMPI-Spin, ticket, HBO (centralized spinning),
  D-MCS (topology-oblivious queue), cohort and RMA-MCS (topology-aware);
* reader-writer: foMPI-RW (centralized), NUMA-aware RW (per-node reader
  counters) and RMA-RW, on a read-dominated mix.

Run with:  python examples/related_locks_comparison.py
"""

from __future__ import annotations

import os

from repro.bench import experiments
from repro.bench.report import format_figure

NODES = int(os.environ.get("REPRO_EXAMPLE_NODES", "4"))
PROCS_PER_NODE = int(os.environ.get("REPRO_EXAMPLE_PROCS_PER_NODE", "8"))
ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERATIONS", "12"))


def main() -> None:
    process_counts = tuple(
        sorted({PROCS_PER_NODE, 2 * PROCS_PER_NODE, NODES * PROCS_PER_NODE})
    )

    mcs_rows = experiments.related_mcs_comparison(
        benchmarks=("ecsb",),
        process_counts=process_counts,
        iterations=ITERATIONS,
        procs_per_node=PROCS_PER_NODE,
    )
    print(
        format_figure(
            mcs_rows,
            title="Mutual exclusion, ECSB throughput [mln locks/s] (higher is better)",
            series="series",
            value="throughput_mln_s",
        )
    )
    print()

    rw_rows = experiments.related_rw_comparison(
        fw_values=(0.002, 0.05),
        process_counts=process_counts,
        iterations=ITERATIONS,
        procs_per_node=PROCS_PER_NODE,
    )
    print(
        format_figure(
            rw_rows,
            title="Reader-writer, ECSB throughput [mln locks/s] by F_W (higher is better)",
            series="series",
            value="throughput_mln_s",
        )
    )
    print()

    largest = max(r["P"] for r in mcs_rows)
    at_scale = {r["series"]: r["throughput_mln_s"] for r in mcs_rows if r["P"] == largest}
    ordered = sorted(at_scale.items(), key=lambda kv: kv[1], reverse=True)
    print(f"Mutual-exclusion ranking at P={largest}:")
    for rank, (scheme, throughput) in enumerate(ordered, start=1):
        print(f"  {rank}. {scheme:<12s} {throughput:.3f} mln locks/s")


if __name__ == "__main__":
    main()
