#!/usr/bin/env python3
"""Parameter-space exploration: the three tuning knobs of RMA-RW (Figure 1).

The lock's behaviour is a point in a three-dimensional parameter space:

* ``T_DC`` — distributed-counter stride (reader latency  vs. writer latency),
* ``T_L,i`` — per-level locality thresholds (locality     vs. fairness),
* ``T_R``/``T_W`` — reader/writer thresholds (reader throughput vs. writer throughput).

This example sweeps each knob in isolation on a fixed machine and workload
and prints the resulting throughput, mirroring the methodology of Section 5.2
and the tuning recipe of Section 6 (pick ``T_DC`` first, then adjust ``T_R``
and ``T_L,i``).

Run with:  python examples/parameter_tuning.py
"""

from __future__ import annotations

import os

from repro import Machine
from repro.bench import LockBenchConfig, run_lock_benchmark
from repro.bench.report import format_table

NODES = int(os.environ.get("REPRO_EXAMPLE_NODES", "4"))
PROCS_PER_NODE = int(os.environ.get("REPRO_EXAMPLE_PROCS_PER_NODE", "8"))
ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERATIONS", "16"))


def sweep_t_dc(machine: Machine):
    rows = []
    for t_dc in (1, 2, 4, 8, 16, 32):
        if t_dc > machine.num_processes:
            continue
        config = LockBenchConfig(
            machine=machine, scheme="rma-rw", benchmark="sob", iterations=ITERATIONS,
            fw=0.02, t_dc=t_dc, t_l=(4, 4), t_r=32,
        )
        result = run_lock_benchmark(config)
        rows.append({
            "T_DC": t_dc,
            "physical counters": (machine.num_processes + t_dc - 1) // t_dc,
            "throughput_mln_s": round(result.throughput_mln_per_s, 3),
            "latency_us": round(result.latency_mean_us, 2),
        })
    return rows


def sweep_t_r(machine: Machine):
    rows = []
    for t_r in (4, 8, 16, 32, 64, 128):
        config = LockBenchConfig(
            machine=machine, scheme="rma-rw", benchmark="ecsb", iterations=ITERATIONS,
            fw=0.02, t_dc=PROCS_PER_NODE, t_l=(4, 4), t_r=t_r,
        )
        result = run_lock_benchmark(config)
        rows.append({
            "T_R": t_r,
            "throughput_mln_s": round(result.throughput_mln_per_s, 3),
            "latency_us": round(result.latency_mean_us, 2),
        })
    return rows


def sweep_t_l(machine: Machine):
    rows = []
    for t_l2, t_l1 in ((1, 32), (2, 16), (4, 8), (8, 4), (16, 2)):
        config = LockBenchConfig(
            machine=machine, scheme="rma-rw", benchmark="sob", iterations=ITERATIONS,
            fw=0.25, t_dc=PROCS_PER_NODE, t_l=(t_l1, t_l2), t_r=32,
        )
        result = run_lock_benchmark(config)
        rows.append({
            "T_L2 (node)": t_l2,
            "T_L1 (machine)": t_l1,
            "product": t_l1 * t_l2,
            "throughput_mln_s": round(result.throughput_mln_per_s, 3),
            "latency_us": round(result.latency_mean_us, 2),
        })
    return rows


def main() -> None:
    machine = Machine.cluster(nodes=NODES, procs_per_node=PROCS_PER_NODE)
    print(f"Simulated machine: {machine.describe()}\n")

    print("-- T_DC sweep (SOB, F_W = 2%): counter placement stride --")
    print(format_table(sweep_t_dc(machine)))
    print("\n-- T_R sweep (ECSB, F_W = 2%): consecutive readers per counter --")
    print(format_table(sweep_t_r(machine)))
    print("\n-- T_L split sweep (SOB, F_W = 25%): locality vs fairness --")
    print(format_table(sweep_t_l(machine)))
    print(
        "\nReading guide: more physical counters (small T_DC) help readers but "
        "tax writers; larger T_R favours reader throughput at the cost of "
        "writer waiting time; larger node-level T_L keeps the lock inside a "
        "node longer, trading fairness for throughput — the three axes of "
        "Figure 1 in the paper."
    )


if __name__ == "__main__":
    main()
