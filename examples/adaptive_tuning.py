#!/usr/bin/env python3
"""Adaptive threshold tuning and hand-off locality instrumentation.

The paper's conclusion proposes extending RMA-RW "with adaptive schemes for a
runtime selection and tuning of the values of the parameters".  This example
shows that extension in action:

1. A workload phase (SOB with a small writer fraction) is benchmarked with the
   paper-recommended starting parameters (one counter per node).
2. :class:`repro.core.adaptive.ThresholdTuner` then adjusts one knob per phase
   (``T_DC`` stride, ``T_R``, node-level ``T_L``), keeping whichever setting
   improved throughput.
3. Finally the same workload is run once more with an *instrumented* lock so
   the hand-off locality (how often the lock stayed inside one node) of the
   tuned configuration can be reported.

Run with:  python examples/adaptive_tuning.py
"""

from __future__ import annotations

import os

from repro import Machine
from repro.bench.harness import run_lock_benchmark
from repro.bench.report import format_table
from repro.bench.workloads import LockBenchConfig
from repro.core.adaptive import AdaptiveParameters, WorkloadSample, tune_rma_rw
from repro.core.instrumentation import GrantLedgerSpec, InstrumentedRWLock, locality_report
from repro.core.rma_rw import RMARWLockSpec
from repro.rma.sim_runtime import SimRuntime

NODES = int(os.environ.get("REPRO_EXAMPLE_NODES", "4"))
PROCS_PER_NODE = int(os.environ.get("REPRO_EXAMPLE_PROCS_PER_NODE", "8"))
ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERATIONS", "12"))
PHASES = int(os.environ.get("REPRO_EXAMPLE_OPS", "8"))
FW = 0.05


def measure_factory(machine: Machine):
    """Build the measurement callback the tuner drives."""

    def measure(params: AdaptiveParameters) -> WorkloadSample:
        kwargs = params.as_lock_kwargs(machine)
        config = LockBenchConfig(
            machine=machine,
            scheme="rma-rw",
            benchmark="sob",
            iterations=ITERATIONS,
            fw=FW,
            t_dc=kwargs["t_dc"],
            t_l=kwargs["t_l"],
            t_r=kwargs["t_r"],
            seed=11,
        )
        result = run_lock_benchmark(config)
        return WorkloadSample(
            throughput=result.throughput_mln_per_s,
            latency_us=result.latency_mean_us,
            observed_fw=result.writes / max(result.total_acquires, 1),
        )

    return measure


def measure_locality(machine: Machine, params: AdaptiveParameters):
    """Re-run the workload with an instrumented lock and report writer hand-off locality."""
    kwargs = params.as_lock_kwargs(machine)
    lock_spec = RMARWLockSpec(machine, t_dc=kwargs["t_dc"], t_l=kwargs["t_l"], t_r=kwargs["t_r"])
    ledger = GrantLedgerSpec(capacity=machine.num_processes * ITERATIONS, base_offset=lock_spec.window_words)
    runtime = SimRuntime(machine, window_words=ledger.window_words, seed=11)

    def window_init(rank):
        values = dict(lock_spec.init_window(rank))
        values.update(ledger.init_window(rank))
        return values

    def program(ctx):
        lock = InstrumentedRWLock(lock_spec.make(ctx), ledger, ctx)
        rng = ctx.rng
        ctx.barrier()
        for _ in range(ITERATIONS):
            if rng.random() < FW:
                with lock.writing():
                    ctx.compute(0.3)
            else:
                with lock.reading():
                    ctx.compute(0.3)
        ctx.barrier()

    runtime.run(program, window_init=window_init)
    grants = ledger.read_grants_from_window(runtime.window(ledger.home_rank))
    return locality_report(machine, grants)


def main() -> None:
    machine = Machine.cluster(nodes=NODES, procs_per_node=PROCS_PER_NODE)
    print(f"Simulated machine: {machine.describe()}")
    print(f"Workload: SOB, F_W = {FW * 100:g}%, {ITERATIONS} acquisitions/process, {PHASES} tuning phases\n")

    measure = measure_factory(machine)
    best, history = tune_rma_rw(machine, measure, phases=PHASES)

    rows = [
        {
            "phase": i,
            "T_DC": step.params.t_dc,
            "T_R": step.params.t_r,
            "T_L(node)": step.params.t_l_leaf,
            "throughput_mln_s": round(step.sample.throughput, 3),
            "latency_us": round(step.sample.latency_us, 2),
            "kept": "yes" if step.accepted else "no",
        }
        for i, step in enumerate(history)
    ]
    print(format_table(rows))
    print(f"\nBest parameters found: T_DC={best.t_dc}, T_R={best.t_r}, node-level T_L={best.t_l_leaf}")

    report = measure_locality(machine, best)
    print(
        f"Writer hand-off locality with the tuned parameters: "
        f"{report.node_locality * 100:.0f}% of consecutive writer grants stayed on one node "
        f"({report.recorded_grants} writer grants recorded)."
    )
    print(
        "\nReading guide: the tuner reproduces the paper's Section-6 recipe "
        "automatically — start from one counter per node, then trade reader "
        "against writer throughput (T_R) and locality against fairness (T_L) "
        "based on the observed workload."
    )


if __name__ == "__main__":
    main()
