#!/usr/bin/env python3
"""Crash a lock holder mid-run — and watch a third-party lease lock recover.

This example walks the whole fault subsystem (:mod:`repro.fault`) from a
third-party author's point of view:

1. **Register a crash-tolerant lock.**  One ``@register_scheme`` decorator
   (here reusing :class:`~repro.fault.lease_lock.LeaseLockSpec` with a custom,
   much shorter lease term) plus one :func:`~repro.fault.declare_recovery`
   call — and the scheme joins the ``repro faults`` sweep with a declared
   recovery contract, exactly like the built-ins.
2. **Stage a seeded crash.**  An unfaulted probe run records real hold
   intervals through a :class:`~repro.fault.TimelineObserver`; the demo then
   kills the rank that holds the lock mid-critical-section with a
   :class:`~repro.fault.FaultPlan`.  Same seed, same crash — bit-for-bit.
3. **Recover under the oracle.**  The faulted run executes under a
   :class:`~repro.verification.oracles.RecoveryOracleObserver`, which checks
   that no survivor was granted the lock before the dead holder's lease
   expired, that stale releases would be fenced, and how long recovery took.
4. **Measure availability.**  The same crash against the open-loop
   ``traffic-crash`` benchmark yields the service-level view:
   completed/submitted requests and recovery-time percentiles via
   :func:`~repro.fault.traffic.crash_traffic_summary`.

Run with:  python examples/fault_demo.py
"""

from __future__ import annotations

import os

from repro.api import register_scheme
from repro.bench.harness import run_lock_benchmark_detailed
from repro.bench.workloads import LockBenchConfig
from repro.fault import FAULT_SCENARIOS, FaultPlan, TimelineObserver, declare_recovery
from repro.fault.lease_lock import LeaseLockSpec
from repro.fault.traffic import crash_traffic_summary
from repro.topology.builder import cached_machine
from repro.verification.oracles import RecoveryOracleObserver

NODES = int(os.environ.get("REPRO_EXAMPLE_NODES", "1"))
PROCS_PER_NODE = int(os.environ.get("REPRO_EXAMPLE_PROCS_PER_NODE", "4"))
ITERATIONS = int(os.environ.get("REPRO_EXAMPLE_ITERATIONS", "6"))

#: The third-party lease term: much shorter than the built-in lease-lock's
#: 500us default, so recovery after a holder crash is quick.
LEASE_US = 120.0


# --------------------------------------------------------------------------- #
# 1. A third-party crash-tolerant scheme: registration + recovery contract.
# --------------------------------------------------------------------------- #

@register_scheme(
    "short-lease",
    category="custom",
    help="third-party lease lock with an aggressive 120us lease (example)",
    replace=True,  # keep the example re-runnable within one process
)
def _build_short_lease(machine) -> LeaseLockSpec:
    return LeaseLockSpec(num_processes=machine.num_processes, lease_us=LEASE_US)


# The recovery declaration is the scheme's crash contract: which scenarios it
# claims to survive, and the lease term the recovery oracle should judge
# takeovers against.  `repro faults` holds the scheme to exactly this.
declare_recovery("short-lease", FAULT_SCENARIOS, lease_us=LEASE_US)


def _config(benchmark: str) -> LockBenchConfig:
    machine = cached_machine(NODES * PROCS_PER_NODE, PROCS_PER_NODE, "xc30")
    return LockBenchConfig(
        machine=machine, scheme="short-lease", benchmark=benchmark,
        iterations=ITERATIONS, fw=0.2, seed=7,
    )


def _stage_holder_crash(config: LockBenchConfig) -> FaultPlan:
    """Probe the unfaulted timeline and kill a lock holder mid-hold.

    The kill only fires at a public context call whose entry clock reached
    the (integral) kill time, so the demo walks the probe's hold intervals
    until one traps its holder: the oracle's ``holder_deaths`` counter is the
    ground truth that the victim really died holding (the same
    outcome-verified placement the ``repro faults`` engine uses).
    """
    probe = TimelineObserver()
    _, raw = run_lock_benchmark_detailed(config, observer=probe)
    makespan = max(raw.finish_times_us)
    holds = [
        iv for iv in probe.intervals("hold")
        if any(h.rank != iv.rank and h.start_us > iv.end_us for h in probe.holds)
    ]
    for hold in holds:
        for kill_us in (float(int(hold.start_us) + 1), float(int(hold.start_us))):
            if kill_us <= 0:
                continue
            plan = FaultPlan.single(
                rank=hold.rank, kill_us=kill_us, horizon_us=float(int(6 * makespan) + 200)
            )
            check = RecoveryOracleObserver(lease_us=LEASE_US)
            run_lock_benchmark_detailed(config, fault_plan=plan, observer=check)
            if check.report().holder_deaths:
                return plan
    raise SystemExit("could not stage a holder crash (no suitable hold interval)")


def main() -> None:
    config = _config("wcsb")
    plan = _stage_holder_crash(config)
    victim = plan.faults[0]
    print(
        f"Staged crash: rank {victim.rank} dies holding the lock at "
        f"t={victim.kill_us:g}us (lease term {LEASE_US:g}us)"
    )

    # ---- 2+3: the faulted run, judged live by the recovery oracles -------- #
    oracle = RecoveryOracleObserver(lease_us=LEASE_US)
    bench, raw = run_lock_benchmark_detailed(config, fault_plan=plan, observer=oracle)
    report = oracle.report()
    crashed = sum(
        1 for r in raw.returns if isinstance(r, dict) and r.get("__crashed__", False)
    )
    print(f"\nFaulted run: {bench.total_acquires} survivor acquires, {crashed} rank crashed")
    print(f"Recovery oracles: ok={report.ok} (violations: {len(report.violations)})")
    for sample in report.recovery_us:
        print(f"  lock recovered {sample:.1f}us after the holder died "
              f"(lease expiry + takeover)")
    assert report.ok, "recovery oracle violation: " + "; ".join(map(str, report.violations))
    assert report.holder_deaths == 1 and report.recovery_us, "crash did not exercise recovery"

    # ---- 4: the service-level view under the same kind of crash ----------- #
    traffic_config = _config("traffic-crash")
    traffic_plan = _stage_holder_crash(traffic_config)
    traffic_oracle = RecoveryOracleObserver(lease_us=LEASE_US)
    _, traffic_raw = run_lock_benchmark_detailed(
        traffic_config, fault_plan=traffic_plan, observer=traffic_oracle
    )
    summary = crash_traffic_summary(
        traffic_config, traffic_raw.returns, traffic_oracle.report()
    )
    print("\nOpen-loop service under the crash (traffic-crash benchmark):")
    print(f"  availability : {summary['availability']:.3f} "
          f"({summary['completed']}/{summary['submitted']} requests)")
    print(f"  crashes      : {summary['crashes']} (ranks lost: {summary['crashed_ranks']})")
    if summary["recovery_p50_us"] is not None:
        print(f"  recovery p50 : {summary['recovery_p50_us']:.1f}us   "
              f"max: {summary['recovery_max_us']:.1f}us")
    assert traffic_oracle.report().ok, "traffic run violated a recovery oracle"
    assert 0.0 < summary["availability"] < 1.0, "crash should cost some availability"

    print("\nOK: the third-party lease lock recovered from a seeded holder crash "
          "under the recovery-safety oracles.")


if __name__ == "__main__":
    main()
