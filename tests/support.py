"""Shared helpers for the test-suite.

The lock tests all follow the same pattern: run an SPMD program in which
every rank repeatedly enters a critical section guarded by the lock under
test, and instrument the critical section so that any mutual-exclusion
violation is recorded in the windows (rather than raising inside the
simulated program).  The helpers here build those programs for both the
mutual-exclusion and the reader-writer cases and run them on either runtime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.constants import NULL_RANK
from repro.core.lock_base import LockSpec, RWLockSpec
from repro.rma.ops import AtomicOp
from repro.rma.runtime_base import RMARuntime
from repro.rma.sim_runtime import SimRuntime
from repro.rma.thread_runtime import ThreadRuntime
from repro.topology.machine import Machine

__all__ = [
    "MutexOutcome",
    "RWOutcome",
    "build_runtime",
    "run_mutex_check",
    "run_rw_check",
]

#: Simulated "hold the lock" time inside instrumented critical sections (µs).
CS_HOLD_US = 0.4


@dataclass
class MutexOutcome:
    """Result of an instrumented mutual-exclusion run."""

    violations: int
    acquisitions: int
    expected_acquisitions: int
    total_time_us: float

    @property
    def ok(self) -> bool:
        return self.violations == 0 and self.acquisitions == self.expected_acquisitions


@dataclass
class RWOutcome:
    """Result of an instrumented reader-writer run."""

    violations: int
    acquisitions: int
    expected_acquisitions: int
    max_concurrent_readers: int
    reads: int
    writes: int
    total_time_us: float

    @property
    def ok(self) -> bool:
        return self.violations == 0 and self.acquisitions == self.expected_acquisitions


def build_runtime(
    kind: str,
    machine: Machine,
    window_words: int,
    *,
    seed: int = 0,
) -> RMARuntime:
    """Create the requested runtime backend ('sim' or 'thread')."""
    if kind == "sim":
        return SimRuntime(machine, window_words=window_words, seed=seed)
    if kind == "thread":
        return ThreadRuntime(machine, window_words=window_words, seed=seed)
    raise ValueError(f"unknown runtime kind {kind!r}")


def run_mutex_check(
    spec: LockSpec,
    machine: Machine,
    *,
    iterations: int = 5,
    runtime: str = "sim",
    seed: int = 0,
) -> MutexOutcome:
    """Run every rank through ``iterations`` instrumented critical sections."""
    owner_off = spec.window_words
    counter_off = spec.window_words + 1
    violations_off = spec.window_words + 2
    rt = build_runtime(runtime, machine, spec.window_words + 3, seed=seed)

    def window_init(rank: int) -> Dict[int, int]:
        values = dict(spec.init_window(rank))
        if rank == 0:
            values[owner_off] = NULL_RANK
        return values

    def program(ctx):
        lock = spec.make(ctx)
        ctx.barrier()
        for _ in range(iterations):
            lock.acquire()
            owner = ctx.get(0, owner_off)
            ctx.flush(0)
            if owner != NULL_RANK:
                ctx.accumulate(1, 0, violations_off)
            ctx.put(ctx.rank, 0, owner_off)
            ctx.flush(0)
            ctx.compute(CS_HOLD_US)
            still_me = ctx.get(0, owner_off)
            ctx.flush(0)
            if still_me != ctx.rank:
                ctx.accumulate(1, 0, violations_off)
            ctx.put(NULL_RANK, 0, owner_off)
            ctx.accumulate(1, 0, counter_off)
            ctx.flush(0)
            lock.release()
        ctx.barrier()

    result = rt.run(program, window_init=window_init)
    window = rt.window(0)
    return MutexOutcome(
        violations=window.read(violations_off),
        acquisitions=window.read(counter_off),
        expected_acquisitions=machine.num_processes * iterations,
        total_time_us=result.total_time_us,
    )


def run_rw_check(
    spec: RWLockSpec,
    machine: Machine,
    *,
    iterations: int = 5,
    writer_ranks: Optional[Sequence[int]] = None,
    fw: Optional[float] = None,
    runtime: str = "sim",
    seed: int = 0,
) -> RWOutcome:
    """Run an instrumented reader/writer workload.

    Roles: if ``writer_ranks`` is given those ranks always write and everyone
    else always reads; otherwise each operation is a write with probability
    ``fw`` (default 0.2).
    """
    if fw is None:
        fw = 0.2
    readers_off = spec.window_words
    writer_off = spec.window_words + 1
    counter_off = spec.window_words + 2
    violations_off = spec.window_words + 3
    max_readers_off = spec.window_words + 4
    rt = build_runtime(runtime, machine, spec.window_words + 5, seed=seed)

    writer_set = set(writer_ranks) if writer_ranks is not None else None

    def program(ctx):
        lock = spec.make(ctx)
        rng = ctx.rng
        ctx.barrier()
        reads = 0
        writes = 0
        for _ in range(iterations):
            if writer_set is not None:
                as_writer = ctx.rank in writer_set
            else:
                as_writer = bool(rng.random() < fw)
            if as_writer:
                lock.acquire_write()
                readers = ctx.get(0, readers_off)
                other_writer = ctx.get(0, writer_off)
                ctx.flush(0)
                if readers != 0 or other_writer != 0:
                    ctx.accumulate(1, 0, violations_off)
                ctx.put(1, 0, writer_off)
                ctx.flush(0)
                ctx.compute(CS_HOLD_US)
                ctx.put(0, 0, writer_off)
                ctx.accumulate(1, 0, counter_off)
                ctx.flush(0)
                lock.release_write()
                writes += 1
            else:
                lock.acquire_read()
                writer_present = ctx.get(0, writer_off)
                ctx.flush(0)
                if writer_present != 0:
                    ctx.accumulate(1, 0, violations_off)
                concurrent = ctx.fao(1, 0, readers_off, AtomicOp.SUM) + 1
                ctx.flush(0)
                prev_max = ctx.get(0, max_readers_off)
                ctx.flush(0)
                if concurrent > prev_max:
                    ctx.put(concurrent, 0, max_readers_off)
                    ctx.flush(0)
                ctx.compute(CS_HOLD_US)
                ctx.accumulate(-1, 0, readers_off)
                ctx.accumulate(1, 0, counter_off)
                ctx.flush(0)
                lock.release_read()
                reads += 1
        ctx.barrier()
        return {"reads": reads, "writes": writes}

    result = rt.run(program, window_init=spec.init_window)
    window = rt.window(0)
    return RWOutcome(
        violations=window.read(violations_off),
        acquisitions=window.read(counter_off),
        expected_acquisitions=machine.num_processes * iterations,
        max_concurrent_readers=window.read(max_readers_off),
        reads=sum(r["reads"] for r in result.returns),
        writes=sum(r["writes"] for r in result.returns),
        total_time_us=result.total_time_us,
    )
