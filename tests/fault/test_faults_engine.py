"""The fault sweep engine end to end on a narrowed grid.

One cache-less ``run_faults`` over a cross-section of schemes (a recoverer,
the caught mutant, and a lease-free control) pins the verdict taxonomy, the
per-point horizon-vs-baseline fingerprint cross-check, and the jobs=1 ≡
jobs=N bit-reproducibility contract.
"""

from __future__ import annotations

import pytest

from repro.bench.faults import (
    KNOWN_MUTANTS,
    FaultPoint,
    fault_points,
    run_fault_point,
    run_faults,
)

SCHEMES = ("lease-lock", "repair-mcs-racy", "rma-mcs")


@pytest.fixture(scope="module")
def report():
    return run_faults(seeds=2, jobs=1, cache=False, schemes=SCHEMES)


def test_sweep_passes_and_covers_the_grid(report):
    assert report.ok, report.failures
    # schemes x scenarios x crash seeds, one row each.
    assert report.points == len(SCHEMES) * 3 * 2
    assert report.seeds == 2 and report.cache_hits == 0


def test_verdicts_match_declared_capabilities(report):
    statuses = {}
    for row in report.rows:
        statuses.setdefault(row["scheme"], set()).add(row["status"])
    # The lease lock declares every scenario and must actually recover
    # somewhere (placement may occasionally yield not-manifested points).
    assert statuses["lease-lock"] & {"recovered", "tolerated"}
    assert "expected-unavailable" not in statuses["lease-lock"]
    # The racy mutant is caught, never quietly passed.
    assert statuses["repair-mcs-racy"] <= {"mutant-caught"}
    assert "repair-mcs-racy" in KNOWN_MUTANTS
    # The lease-free control declares nothing: unavailability is expected,
    # reported as such rather than as a false pass.
    assert "recovered" not in statuses["rma-mcs"]


def test_every_point_is_scheduler_identical(report):
    for row in report.rows:
        if row["cross_scheduler_identical"] is not None:
            assert row["cross_scheduler_identical"], row["case"]


def test_scheme_verdicts_aggregate(report):
    verdicts = {v["scheme"]: v for v in report.scheme_verdicts()}
    assert set(verdicts) == set(SCHEMES)
    for v in verdicts.values():
        assert v["verdict"] == "ok"
        assert v["points"] == 6
        assert v["schedulers"] in ("identical", "-")


def test_jobs_do_not_change_rows(report):
    parallel = run_faults(seeds=2, jobs=2, cache=False, schemes=SCHEMES)
    strip = lambda rows: [
        {k: v for k, v in row.items() if k != "cached"} for row in rows
    ]
    assert strip(parallel.rows) == strip(report.rows)


def test_fault_point_grid_and_reexecution():
    points = fault_points(seeds=2, schemes=["lease-lock"], scenarios=["holder-crash"])
    assert [p.crash_seed for p in points] == [1, 2]
    point = points[0]
    assert isinstance(point, FaultPoint)
    assert point.case.startswith("lease-lock-holder-crash-")
    # Same point, same row: the verdict is a pure function of the point.
    first = run_fault_point(point)
    second = run_fault_point(point)
    assert first == second
    assert first["ok"]
