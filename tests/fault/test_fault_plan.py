"""FaultPlan / RankFault validation and the seeded fault RNG lane."""

from __future__ import annotations

import pytest

from repro.fault import (
    FAULT_SCENARIOS,
    FaultPlan,
    RankFault,
    declare_recovery,
    fault_rng,
    recovery_info,
)


def test_rank_fault_rejects_bad_times():
    with pytest.raises(ValueError):
        RankFault(rank=-1, kill_us=5.0)
    with pytest.raises(ValueError):
        RankFault(rank=0, kill_us=-1.0)
    # Kill times must be integral: equality against rank clocks is exact.
    with pytest.raises(ValueError):
        RankFault(rank=0, kill_us=3.5)
    with pytest.raises(ValueError):
        RankFault(rank=0, kill_us=10.0, restart_us=10.0)  # restart must follow kill
    with pytest.raises(ValueError):
        RankFault(rank=0, kill_us=10.0, restart_us=20.5)  # and be integral


def test_plan_rejects_duplicate_ranks_and_bad_horizon():
    with pytest.raises(ValueError):
        FaultPlan(faults=(RankFault(0, 5.0), RankFault(0, 9.0)))
    with pytest.raises(ValueError):
        FaultPlan(horizon_us=0.0)
    with pytest.raises(ValueError):
        FaultPlan.single(2, 5.0).validate_for(nranks=2)


def test_null_plan_and_describe():
    assert FaultPlan().is_null
    assert FaultPlan().describe() == "null"
    plan = FaultPlan.single(1, 10.0, restart_us=40.0, horizon_us=500.0)
    assert not plan.is_null
    assert plan.describe() == "r1@10+restart@40,horizon=500"
    assert plan.kill_at() == {1: 10.0}
    assert plan.restart_at() == {1: 40.0}


def test_dead_at_models_a_perfect_failure_detector():
    plan = FaultPlan.single(1, 10.0, restart_us=40.0)
    assert not plan.dead_at(1, 9.0)
    assert plan.dead_at(1, 10.0)
    assert plan.dead_at(1, 39.0)
    assert not plan.dead_at(1, 40.0)  # restarted
    assert not plan.dead_at(0, 10_000.0)  # other ranks never die
    forever = FaultPlan.single(0, 7.0)
    assert forever.dead_at(0, 7.0) and forever.dead_at(0, 1e9)


def test_fault_rng_is_seed_and_stream_deterministic():
    a = fault_rng(3, stream=5).integers(0, 2**31, size=8)
    b = fault_rng(3, stream=5).integers(0, 2**31, size=8)
    c = fault_rng(3, stream=6).integers(0, 2**31, size=8)
    d = fault_rng(4, stream=5).integers(0, 2**31, size=8)
    assert (a == b).all()
    assert not (a == c).all()
    assert not (a == d).all()


def test_recovery_registry_round_trip():
    declare_recovery("test-fault-plan-scheme", ("holder-crash",), lease_us=42.0)
    info = recovery_info("test-fault-plan-scheme")
    assert info.scenarios == frozenset({"holder-crash"})
    assert info.lease_us == 42.0
    # Undeclared schemes recover from nothing (never a false pass).
    assert recovery_info("no-such-scheme").scenarios == frozenset()
    with pytest.raises(ValueError):
        declare_recovery("x", ("meteor-strike",))
    assert set(FAULT_SCENARIOS) == {"holder-crash", "waiter-crash", "restart"}
