"""The traffic-crash benchmark: availability accounting under mid-run crashes."""

from __future__ import annotations

import pytest

from repro.bench.campaign import run_result_sha
from repro.bench.harness import run_lock_benchmark_detailed
from repro.bench.workloads import LockBenchConfig
from repro.fault import FaultPlan
from repro.fault.traffic import crash_traffic_summary
from repro.topology.builder import cached_machine
from repro.verification.oracles import RecoveryOracleObserver

PROCS, PPN = 4, 4


def _config(iterations=6, seed=3):
    return LockBenchConfig(
        machine=cached_machine(PROCS, PPN, "xc30"),
        scheme="lease-lock",
        benchmark="traffic-crash",
        iterations=iterations,
        fw=0.2,
        seed=seed,
    )


def test_unfaulted_traffic_serves_everything():
    config = _config()
    _, raw = run_lock_benchmark_detailed(config)
    summary = crash_traffic_summary(config, raw.returns)
    assert summary["submitted"] == config.iterations * PROCS
    assert summary["completed"] == summary["submitted"]
    assert summary["availability"] == 1.0
    assert summary["crashed_ranks"] == 0


def test_crash_costs_availability_but_not_safety():
    config = _config()
    _, probe = run_lock_benchmark_detailed(config)
    horizon = float(int(6 * max(probe.finish_times_us)) + 500)
    plan = FaultPlan.single(1, kill_us=5.0, horizon_us=horizon)
    oracle = RecoveryOracleObserver(lease_us=500.0)
    _, raw = run_lock_benchmark_detailed(config, fault_plan=plan, observer=oracle)
    report = oracle.report()
    assert report.ok, [str(v) for v in report.violations]
    summary = crash_traffic_summary(config, raw.returns, report)
    assert summary["crashed_ranks"] == 1
    assert summary["crashes"] == 1
    # The dead rank's unserved requests count as submitted-but-lost.
    assert 0.0 < summary["availability"] < 1.0
    assert summary["completed"] < summary["submitted"]
    if report.recovery_us:
        assert summary["recovery_p50_us"] <= summary["recovery_max_us"]


@pytest.mark.parametrize("scheduler", ["horizon", "baseline"])
def test_faulted_traffic_is_scheduler_invariant(scheduler):
    config = _config(seed=4)
    plan = FaultPlan.single(2, kill_us=7.0, horizon_us=1_000_000.0)
    _, raw = run_lock_benchmark_detailed(config, fault_plan=plan, scheduler=scheduler)
    _, again = run_lock_benchmark_detailed(config, fault_plan=plan, scheduler="horizon")
    assert run_result_sha(raw) == run_result_sha(again)
