"""Exhaustive holder-death checking of the recovery protocols at P=2-3.

The crash transitions in :mod:`repro.verification.impl_model` let the model
checker explore *every* interleaving of a holder/waiter death against the
survivors — a far stronger guarantee than any finite set of seeded runs.
The intentionally broken variants (no lease, early expiry, racy repair) must
be caught; the real protocols must come back clean.
"""

from __future__ import annotations

import pytest

from repro.verification.impl_model import lease_impl_model, repair_queue_impl_model
from repro.verification.lock_models import build_checker


def _check(model, max_states=500_000):
    return build_checker(model, max_states=max_states).check()


@pytest.mark.parametrize("procs", [2, 3])
def test_lease_lock_model_safe_under_holder_crash(procs):
    result = _check(lease_impl_model(procs))
    assert result.violation is None, result.violation


def test_lease_without_leases_cannot_recover():
    # No lease term, no failure detector: survivors spin on the dead owner's
    # word forever — the checker reports it as a deadlock, which is exactly
    # why plain spinlocks are "expected-unavailable" in the fault sweep.
    result = _check(lease_impl_model(2, mutant="no-lease"))
    assert result.violation is not None
    assert "deadlock" in result.violation


def test_early_lease_expiry_is_a_double_grant():
    # An expiry process freed from the failure-detector contract may revoke a
    # *live* holder: two ranks inside the critical section at once.
    result = _check(lease_impl_model(2, mutant="early-expiry"))
    assert result.violation is not None
    assert "mutual exclusion" in result.violation


def test_repair_queue_model_safe_under_waiter_crash():
    result = _check(repair_queue_impl_model(3))
    assert result.violation is None, result.violation


def test_racy_repair_walk_is_caught():
    # The racy walk treats a failed repair CAS as "queue drained" and strands
    # the live waiter behind a grant that never comes.  This is the
    # repair-mcs-racy mutant the faults sweep must always report as caught.
    result = _check(repair_queue_impl_model(3, racy=True))
    assert result.violation is not None
