"""Crash injection is bit-reproducible and identical across schedulers.

The kill lands at the first public context call the victim issues with its
virtual clock at or past ``kill_us`` — part of the deterministic scheduling
contract, so the ``horizon``, ``baseline`` and ``vector`` cores must produce
byte-identical faulted runs.
"""

from __future__ import annotations

import pytest

from repro.bench.campaign import run_result_sha
from repro.bench.harness import run_lock_benchmark_detailed
from repro.bench.workloads import LockBenchConfig
from repro.fault import FaultHorizonError, FaultPlan
from repro.rma.runtime_base import SimDeadlockError
from repro.topology.builder import cached_machine

PROCS, PPN = 4, 4

FAULT_SCHEDULERS = ("horizon", "baseline", "vector")


def _config(scheme="lease-lock", iterations=4, seed=5):
    return LockBenchConfig(
        machine=cached_machine(PROCS, PPN, "xc30"),
        scheme=scheme,
        benchmark="wcsb",
        iterations=iterations,
        fw=0.2,
        seed=seed,
    )


def _run(config, plan, scheduler):
    bench, raw = run_lock_benchmark_detailed(
        config, fault_plan=plan, scheduler=scheduler
    )
    return bench, raw


def test_crash_marks_victim_and_spares_survivors():
    plan = FaultPlan.single(2, kill_us=3.0)
    _, raw = _run(_config(), plan, "horizon")
    marker = raw.returns[2]
    assert isinstance(marker, dict) and marker.get("__crashed__")
    for rank in (0, 1, 3):
        assert not (
            isinstance(raw.returns[rank], dict)
            and raw.returns[rank].get("__crashed__")
        )


@pytest.mark.parametrize("scheduler", FAULT_SCHEDULERS)
def test_faulted_run_is_rerun_reproducible(scheduler):
    plan = FaultPlan.single(1, kill_us=5.0)
    _, first = _run(_config(), plan, scheduler)
    _, second = _run(_config(), plan, scheduler)
    assert run_result_sha(first) == run_result_sha(second)


@pytest.mark.parametrize("scheme", ["lease-lock", "repair-mcs"])
def test_faulted_fingerprint_identical_across_schedulers(scheme):
    plan = FaultPlan.single(1, kill_us=5.0)
    shas = {
        scheduler: run_result_sha(_run(_config(scheme), plan, scheduler)[1])
        for scheduler in FAULT_SCHEDULERS
    }
    assert len(set(shas.values())) == 1, shas


@pytest.mark.parametrize("scheduler", FAULT_SCHEDULERS)
def test_lease_free_holder_crash_deadlocks_on_every_scheduler(scheduler):
    # A plain MCS queue has no way to tell a dead holder from a slow one:
    # killing the holder parks every survivor forever, and each deterministic
    # core reports the same clean deadlock instead of hanging.
    plan = FaultPlan.single(0, kill_us=3.0)
    with pytest.raises(SimDeadlockError):
        _run(_config(scheme="rma-mcs"), plan, scheduler)


def test_restart_revives_the_rank():
    config = _config()
    plan = FaultPlan.single(1, kill_us=3.0)
    _, dead_raw = _run(config, plan, "horizon")
    revive = FaultPlan.single(1, kill_us=3.0, restart_us=4000.0)
    _, raw = _run(config, revive, "horizon")
    # The restarted rank finished its (re-run) program: no crash marker, and
    # it did strictly more ops than its dead self.
    assert not (isinstance(raw.returns[1], dict) and raw.returns[1].get("__crashed__"))
    dead_ops = sum(dead_raw.per_rank_op_counts[1].values())
    assert sum(raw.per_rank_op_counts[1].values()) > dead_ops
    assert run_result_sha(raw) == run_result_sha(_run(config, revive, "baseline")[1])


def test_horizon_ceiling_raises_instead_of_hanging():
    # The plan's virtual-time ceiling turns a too-long run into a clean,
    # deterministic error (here: a plain unfaulted run that cannot finish in
    # 10 virtual microseconds).
    plan = FaultPlan(horizon_us=10.0)
    assert not plan.is_null
    with pytest.raises(FaultHorizonError):
        _run(_config(), plan, "horizon")
