"""Hypothesis property tests for the fault subsystem (ISSUE 7 satellite).

Two contracts, sampled instead of hand-picked:

* **null-plan invariance** — for *any* scheme × deterministic scheduler, a
  run under ``FaultPlan()`` is bit-identical to a run with no plan at all
  (the runtimes promise to skip every fault code path for a null plan; this
  is the property :meth:`FaultPlan.is_null` documents);
* **crash-seed reproducibility** — for *any* crash seed, the fault sweep's
  verdict row is a pure function of the point: re-running it (as a
  ``--jobs N`` worker would, in a fresh call) reproduces the row — verdict,
  oracle counters and fingerprint — bit-for-bit.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bench.campaign import run_result_sha
from repro.bench.faults import fault_points, run_fault_point
from repro.bench.harness import run_lock_benchmark_detailed
from repro.bench.workloads import LockBenchConfig
from repro.fault import FAULT_SCENARIOS, FaultPlan
from repro.topology.builder import cached_machine

PROCS, PPN = 4, 4

SLOW_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SLOW_SETTINGS
@given(
    scheme=st.sampled_from(["lease-lock", "repair-mcs", "rma-mcs", "ticket"]),
    scheduler=st.sampled_from(["horizon", "baseline", "vector"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_null_fault_plan_is_invisible(scheme, scheduler, seed):
    config = LockBenchConfig(
        machine=cached_machine(PROCS, PPN, "xc30"),
        scheme=scheme,
        benchmark="wcsb",
        iterations=3,
        fw=0.2,
        seed=seed,
    )
    assert FaultPlan().is_null
    _, bare = run_lock_benchmark_detailed(config, scheduler=scheduler)
    _, nulled = run_lock_benchmark_detailed(
        config, scheduler=scheduler, fault_plan=FaultPlan()
    )
    assert run_result_sha(bare) == run_result_sha(nulled)


@SLOW_SETTINGS
@given(
    crash_seed=st.integers(min_value=1, max_value=64),
    scenario=st.sampled_from(sorted(FAULT_SCENARIOS)),
)
def test_fault_point_rows_are_crash_seed_reproducible(crash_seed, scenario):
    [point] = [
        p
        for p in fault_points(
            seeds=crash_seed, schemes=["lease-lock"], scenarios=[scenario]
        )
        if p.crash_seed == crash_seed
    ]
    first = run_fault_point(point)
    second = run_fault_point(point)
    assert first == second
    assert first["ok"], first
    if first["cross_scheduler_identical"] is not None:
        assert first["cross_scheduler_identical"]
