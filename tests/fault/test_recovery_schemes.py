"""Lease-lock and repair-MCS recovery under seeded crashes, judged live.

These tests stage crashes the same way the sweep engine does — probe the
unfaulted timeline with a TimelineObserver, then kill inside a real hold or
wait window — and hold the recovery schemes to the RecoveryOracleObserver's
safety checks (no double grant inside a live lease, fenced stale releases,
recovery accounting).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import run_lock_benchmark_detailed
from repro.bench.workloads import LockBenchConfig
from repro.fault import FaultPlan, TimelineObserver
from repro.fault.lease_lock import LeaseLockSpec
from repro.topology.builder import cached_machine
from repro.verification.oracles import RecoveryOracleObserver

PROCS, PPN = 4, 4
LEASE_US = 80.0


def _config(scheme="lease-lock", benchmark="wcsb", iterations=5, seed=7):
    return LockBenchConfig(
        machine=cached_machine(PROCS, PPN, "xc30"),
        scheme=scheme,
        benchmark=benchmark,
        iterations=iterations,
        fw=0.2,
        seed=seed,
    )


def _staged_crash(config, kind, *, spec=None, is_rw=None, lease_us=None):
    """Outcome-verified placement: return (plan, oracle) for a kill that
    provably landed in a ``kind`` ("hold"/"wait") window, or skip."""
    probe = TimelineObserver()
    _, raw = run_lock_benchmark_detailed(config, observer=probe, spec=spec, is_rw=is_rw)
    makespan = max(raw.finish_times_us)
    horizon = float(int(6 * makespan) + 500)
    intervals = [
        iv for iv in probe.intervals(kind)
        if any(h.rank != iv.rank and h.start_us > iv.end_us for h in probe.holds)
    ]
    for iv in intervals:
        kills = (
            (float(int(iv.start_us) + 1), float(int(iv.start_us)))
            if kind == "hold"
            else (float(int((iv.start_us + iv.end_us) / 2)),)
        )
        for kill_us in kills:
            if kill_us <= 0:
                continue
            plan = FaultPlan.single(iv.rank, kill_us, horizon_us=horizon)
            oracle = RecoveryOracleObserver(lease_us=lease_us)
            run_lock_benchmark_detailed(
                config, fault_plan=plan, observer=oracle, spec=spec, is_rw=is_rw
            )
            report = oracle.report()
            deaths = report.holder_deaths if kind == "hold" else report.waiter_deaths
            if deaths:
                return plan, report
    pytest.skip(f"could not trap a {kind} in this timeline")


def test_lease_lock_recovers_from_holder_crash():
    spec = LeaseLockSpec(num_processes=PROCS, lease_us=LEASE_US)
    _, report = _staged_crash(
        _config(), "hold", spec=spec, is_rw=False, lease_us=LEASE_US
    )
    assert report.ok, [str(v) for v in report.violations]
    assert report.holder_deaths == 1
    # Some survivor took the lock over after the dead holder's lease ran out:
    # the oracle samples takeover time minus crash time, bounded by the term
    # (plus polling slack) — and never *before* the lease expired (that would
    # be a double-grant violation and report.ok would be False).
    assert report.recovery_us and min(report.recovery_us) >= 0.0
    assert max(report.recovery_us) <= 10 * LEASE_US


def test_lease_lock_survives_waiter_crash():
    spec = LeaseLockSpec(num_processes=PROCS, lease_us=LEASE_US)
    _, report = _staged_crash(
        _config(seed=9), "wait", spec=spec, is_rw=False, lease_us=LEASE_US
    )
    assert report.ok, [str(v) for v in report.violations]
    assert report.waiter_deaths == 1


def test_repair_mcs_splices_dead_waiter_out():
    _, report = _staged_crash(_config(scheme="repair-mcs", seed=11), "wait")
    assert report.ok, [str(v) for v in report.violations]
    assert report.waiter_deaths == 1
    # Survivors kept acquiring after the splice: the run completed under the
    # horizon, and the oracle saw more grants than the pre-crash ones alone.
    assert report.acquires > 0


def test_recovery_report_summary_carries_fault_counters():
    spec = LeaseLockSpec(num_processes=PROCS, lease_us=LEASE_US)
    _, report = _staged_crash(
        _config(), "hold", spec=spec, is_rw=False, lease_us=LEASE_US
    )
    summary = report.summary()
    for key in (
        "crashes",
        "restarts",
        "holder_deaths",
        "waiter_deaths",
        "fenced_releases",
        "expired_takeovers",
        "recovery_us",
    ):
        assert key in summary
    assert summary["crashes"] == 1
    assert summary["holder_deaths"] == 1
