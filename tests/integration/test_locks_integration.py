"""Cross-module integration tests: every lock on every machine shape and runtime."""

from __future__ import annotations

import pytest

from repro.core.baselines import FompiRWLockSpec, FompiSpinLockSpec
from repro.core.dmcs import DMCSLockSpec
from repro.core.rma_mcs import RMAMCSLockSpec
from repro.core.rma_rw import RMARWLockSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.builder import figure2_machine
from repro.topology.machine import Machine
from tests.support import run_mutex_check, run_rw_check

MACHINES = {
    "single-node": Machine.single_node(6),
    "two-nodes": Machine.cluster(nodes=2, procs_per_node=4),
    "four-nodes": Machine.cluster(nodes=4, procs_per_node=3),
    "figure-2": figure2_machine(procs_per_node=3),
}


def exclusive_specs(machine: Machine):
    t_l = tuple(2 for _ in range(machine.n_levels))
    return {
        "fompi-spin": FompiSpinLockSpec(num_processes=machine.num_processes),
        "d-mcs": DMCSLockSpec(num_processes=machine.num_processes),
        "rma-mcs": RMAMCSLockSpec(machine, t_l=t_l),
        "rma-rw-writer-only": RMARWLockSpec(machine, t_l=t_l, t_r=8),
    }


def rw_specs(machine: Machine):
    t_l = tuple(2 for _ in range(machine.n_levels))
    return {
        "fompi-rw": FompiRWLockSpec(num_processes=machine.num_processes),
        "rma-rw": RMARWLockSpec(machine, t_l=t_l, t_r=8),
    }


class TestMutualExclusionMatrix:
    @pytest.mark.parametrize("machine_name", sorted(MACHINES))
    @pytest.mark.parametrize("lock_name", ["fompi-spin", "d-mcs", "rma-mcs", "rma-rw-writer-only"])
    def test_exclusive_locks_on_all_machines(self, machine_name, lock_name):
        machine = MACHINES[machine_name]
        spec = exclusive_specs(machine)[lock_name]
        outcome = run_mutex_check(spec, machine, iterations=4, seed=1)
        assert outcome.ok, f"{lock_name} on {machine_name}: {outcome}"


class TestReaderWriterMatrix:
    @pytest.mark.parametrize("machine_name", sorted(MACHINES))
    @pytest.mark.parametrize("lock_name", ["fompi-rw", "rma-rw"])
    def test_rw_locks_on_all_machines(self, machine_name, lock_name):
        machine = MACHINES[machine_name]
        spec = rw_specs(machine)[lock_name]
        outcome = run_rw_check(spec, machine, iterations=4, fw=0.3, seed=2)
        assert outcome.ok, f"{lock_name} on {machine_name}: {outcome}"

    @pytest.mark.parametrize("lock_name", ["fompi-rw", "rma-rw"])
    def test_rw_locks_on_thread_runtime(self, lock_name):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = rw_specs(machine)[lock_name]
        outcome = run_rw_check(spec, machine, iterations=6, writer_ranks=[0], runtime="thread")
        assert outcome.ok


class TestSharedWindowComposition:
    def test_two_locks_in_one_window(self):
        """Two independent locks with disjoint layouts protect two counters."""
        machine = Machine.cluster(nodes=2, procs_per_node=3)
        lock_a = DMCSLockSpec(num_processes=machine.num_processes, base_offset=0)
        lock_b = FompiSpinLockSpec(num_processes=machine.num_processes, base_offset=lock_a.window_words)
        counter_a = lock_b.window_words
        counter_b = lock_b.window_words + 1
        rt = SimRuntime(machine, window_words=lock_b.window_words + 2)

        def window_init(rank):
            values = dict(lock_a.init_window(rank))
            values.update(lock_b.init_window(rank))
            return values

        def program(ctx):
            a = lock_a.make(ctx)
            b = lock_b.make(ctx)
            ctx.barrier()
            for _ in range(3):
                with a.held():
                    value = ctx.get(0, counter_a)
                    ctx.flush(0)
                    ctx.put(value + 1, 0, counter_a)
                    ctx.flush(0)
                with b.held():
                    value = ctx.get(0, counter_b)
                    ctx.flush(0)
                    ctx.put(value + 1, 0, counter_b)
                    ctx.flush(0)
            ctx.barrier()

        rt.run(program, window_init=window_init)
        expected = machine.num_processes * 3
        assert rt.window(0).read(counter_a) == expected
        assert rt.window(0).read(counter_b) == expected

    def test_rma_rw_protecting_dht_inserts(self):
        """The RMA-RW lock serializes writers of a shared DHT volume correctly."""
        from repro.dht.hashtable import DHTSpec

        machine = Machine.cluster(nodes=2, procs_per_node=3)
        lock = RMARWLockSpec(machine, t_l=(2, 2), t_r=8)
        dht = DHTSpec(num_processes=machine.num_processes, table_size=4, heap_size=64,
                      base_offset=lock.window_words)
        rt = SimRuntime(machine, window_words=dht.window_words)

        def window_init(rank):
            values = dict(lock.init_window(rank))
            values.update(dht.init_window(rank))
            return values

        def program(ctx):
            rw = lock.make(ctx)
            table = dht.make(ctx)
            ctx.barrier()
            for i in range(3):
                key = ctx.rank * 10 + i
                with rw.writing():
                    table.insert(key, key, target_rank=0)
            ctx.barrier()
            missing = 0
            with rw.reading():
                for r in range(ctx.nranks):
                    for i in range(3):
                        if table.lookup(r * 10 + i, target_rank=0) is None:
                            missing += 1
            return missing

        result = rt.run(program, window_init=window_init)
        assert all(m == 0 for m in result.returns)


class TestScaleSmoke:
    def test_larger_machine_with_rw_mix(self):
        """64 simulated ranks with a mixed workload complete without deadlock."""
        machine = Machine.cluster(nodes=8, procs_per_node=8)
        spec = RMARWLockSpec(machine, t_l=(4, 4), t_r=16)
        outcome = run_rw_check(spec, machine, iterations=3, fw=0.1, seed=7)
        assert outcome.ok
