"""Property-based protocol tests: random machines, thresholds and workloads.

These use Hypothesis to draw small machine shapes and lock parameters and
assert that the locks always provide their correctness properties on the
simulated runtime: the expected number of critical sections is executed and
no mutual-exclusion (or reader/writer exclusion) violation is ever observed.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dmcs import DMCSLockSpec
from repro.core.rma_mcs import RMAMCSLockSpec
from repro.core.rma_rw import RMARWLockSpec
from repro.topology.machine import Machine
from tests.support import run_mutex_check, run_rw_check

#: Keep the drawn configurations small so each example simulates quickly.
small_machines = st.builds(
    Machine.cluster,
    nodes=st.integers(min_value=1, max_value=3),
    procs_per_node=st.integers(min_value=1, max_value=4),
)

SLOW_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestDMCSProperties:
    @given(machine=small_machines, iterations=st.integers(2, 4), seed=st.integers(0, 100))
    @SLOW_SETTINGS
    def test_mutual_exclusion_holds(self, machine, iterations, seed):
        spec = DMCSLockSpec(num_processes=machine.num_processes)
        outcome = run_mutex_check(spec, machine, iterations=iterations, seed=seed)
        assert outcome.ok


class TestRMAMCSProperties:
    @given(
        machine=small_machines,
        t_l_leaf=st.integers(1, 8),
        iterations=st.integers(2, 4),
        seed=st.integers(0, 100),
    )
    @SLOW_SETTINGS
    def test_mutual_exclusion_holds_for_any_locality_threshold(self, machine, t_l_leaf, iterations, seed):
        t_l = tuple([2] * (machine.n_levels - 1) + [t_l_leaf]) if machine.n_levels > 1 else (t_l_leaf,)
        spec = RMAMCSLockSpec(machine, t_l=t_l)
        outcome = run_mutex_check(spec, machine, iterations=iterations, seed=seed)
        assert outcome.ok


class TestRMARWProperties:
    @given(
        machine=small_machines,
        t_dc=st.integers(1, 8),
        t_r=st.integers(1, 16),
        t_l_leaf=st.integers(1, 6),
        fw=st.sampled_from([0.0, 0.1, 0.3, 0.7, 1.0]),
        seed=st.integers(0, 50),
    )
    @SLOW_SETTINGS
    def test_exclusion_holds_for_any_threshold_combination(self, machine, t_dc, t_r, t_l_leaf, fw, seed):
        t_l = tuple([2] * (machine.n_levels - 1) + [t_l_leaf]) if machine.n_levels > 1 else (t_l_leaf,)
        spec = RMARWLockSpec(
            machine, t_dc=min(t_dc, machine.num_processes), t_l=t_l, t_r=t_r
        )
        outcome = run_rw_check(spec, machine, iterations=3, fw=fw, seed=seed)
        assert outcome.ok

    @given(machine=small_machines, t_r=st.integers(1, 4), seed=st.integers(0, 50))
    @SLOW_SETTINGS
    def test_tiny_reader_thresholds_never_strand_readers(self, machine, t_r, seed):
        """Saturation-heavy settings (T_R smaller than the reader count) stay live."""
        spec = RMARWLockSpec(machine, t_r=t_r, t_l=tuple([2] * machine.n_levels))
        outcome = run_rw_check(spec, machine, iterations=3, writer_ranks=[0], seed=seed)
        assert outcome.ok
