"""Tests for the asymmetric local/remote lock (ALock)."""

from __future__ import annotations

import pytest

from repro.core.constants import NULL_RANK
from repro.related.alock import ALockSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from tests.support import run_mutex_check


class TestALockSpec:
    def test_window_words(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = ALockSpec(machine)
        assert spec.window_words == 4
        assert spec.num_processes == 4

    def test_init_window_home_holds_owner_and_tail(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = ALockSpec(machine, home_rank=1)
        home = spec.init_window(1)
        assert home[spec.owner_offset] == NULL_RANK
        assert home[spec.tail_offset] == NULL_RANK
        other = spec.init_window(2)
        assert spec.owner_offset not in other
        assert other[spec.next_offset] == NULL_RANK

    def test_locality_follows_the_home_node(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = ALockSpec(machine, home_rank=0)
        assert spec.is_local(0) and spec.is_local(1)
        assert not spec.is_local(2) and not spec.is_local(3)

    def test_rejects_bad_home_rank(self):
        with pytest.raises(ValueError):
            ALockSpec(Machine.single_node(2), home_rank=7)

    def test_rejects_inverted_backoff_caps(self):
        with pytest.raises(ValueError):
            ALockSpec(Machine.single_node(2), local_cap_us=10.0, remote_cap_us=1.0)

    def test_rejects_nonpositive_min_backoff(self):
        with pytest.raises(ValueError):
            ALockSpec(Machine.single_node(2), min_backoff_us=0.0)

    def test_rebasable_layout(self):
        machine = Machine.single_node(2)
        spec = ALockSpec(machine, base_offset=5)
        assert spec.owner_offset == 5
        assert spec.window_words == 9


class TestALockProtocol:
    @pytest.mark.parametrize("runtime", ["sim", "thread"])
    def test_mutual_exclusion_mixed_locality(self, runtime):
        machine = Machine.cluster(nodes=2, procs_per_node=3)
        spec = ALockSpec(machine)
        outcome = run_mutex_check(spec, machine, iterations=3, runtime=runtime)
        assert outcome.ok, outcome

    def test_mutual_exclusion_all_local(self):
        machine = Machine.single_node(4)
        spec = ALockSpec(machine)
        outcome = run_mutex_check(spec, machine, iterations=3)
        assert outcome.ok, outcome

    def test_mutual_exclusion_remote_home(self):
        # Home the lock on the second node so ranks 0-2 all run the slow path.
        machine = Machine.cluster(nodes=2, procs_per_node=3)
        spec = ALockSpec(machine, home_rank=3)
        outcome = run_mutex_check(spec, machine, iterations=3)
        assert outcome.ok, outcome

    def test_uncontended_local_acquire_takes_one_cas(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = ALockSpec(machine)
        runtime = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                lock.acquire()
                attempts = lock.last_attempts
                holder = lock.holder()
                lock.release()
                return attempts, holder
            return None

        result = runtime.run(program, window_init=spec.init_window)
        attempts, holder = result.returns[0]
        assert attempts == 1
        assert holder == 0
