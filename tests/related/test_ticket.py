"""Tests for the centralized FIFO ticket lock."""

from __future__ import annotations

import pytest

from repro.related.ticket import TicketLockSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from tests.support import run_mutex_check


class TestTicketLockSpec:
    def test_window_words_counts_both_words(self):
        spec = TicketLockSpec(num_processes=4)
        assert spec.window_words == 2
        assert spec.next_ticket_offset != spec.now_serving_offset

    def test_base_offset_shifts_layout(self):
        spec = TicketLockSpec(num_processes=4, base_offset=10)
        assert spec.next_ticket_offset == 10
        assert spec.now_serving_offset == 11
        assert spec.window_words == 12

    def test_init_window_only_on_home_rank(self):
        spec = TicketLockSpec(num_processes=4, home_rank=2)
        assert spec.init_window(2) == {spec.next_ticket_offset: 0, spec.now_serving_offset: 0}
        assert spec.init_window(0) == {}

    def test_rejects_bad_home_rank(self):
        with pytest.raises(ValueError):
            TicketLockSpec(num_processes=4, home_rank=4)

    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError):
            TicketLockSpec(num_processes=0)

    def test_handle_rejects_mismatched_runtime(self):
        spec = TicketLockSpec(num_processes=8)
        machine = Machine.single_node(2)
        runtime = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            with pytest.raises(ValueError):
                spec.make(ctx)

        runtime.run(program, window_init=spec.init_window)


class TestTicketLockProtocol:
    @pytest.mark.parametrize("runtime", ["sim", "thread"])
    def test_mutual_exclusion(self, runtime):
        machine = Machine.cluster(nodes=2, procs_per_node=3)
        spec = TicketLockSpec(num_processes=machine.num_processes)
        outcome = run_mutex_check(spec, machine, iterations=4, runtime=runtime)
        assert outcome.ok, outcome

    def test_single_rank_can_reacquire(self):
        machine = Machine.single_node(1)
        spec = TicketLockSpec(num_processes=1)
        outcome = run_mutex_check(spec, machine, iterations=6)
        assert outcome.ok

    def test_release_without_acquire_raises(self):
        machine = Machine.single_node(2)
        spec = TicketLockSpec(num_processes=2)
        runtime = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                with pytest.raises(RuntimeError):
                    lock.release()

        runtime.run(program, window_init=spec.init_window)

    def test_grants_follow_ticket_order(self):
        """The order of critical sections matches the order tickets were drawn."""
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        p = machine.num_processes
        spec = TicketLockSpec(num_processes=p)
        ticket_log = spec.window_words  # p words: ticket -> rank
        runtime = SimRuntime(machine, window_words=spec.window_words + p)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            lock.acquire()
            ticket = lock._my_ticket
            ctx.put(ctx.rank, 0, ticket_log + ticket)
            ctx.flush(0)
            lock.release()
            return ticket

        result = runtime.run(program, window_init=spec.init_window)
        tickets = sorted(result.returns)
        assert tickets == list(range(p))
        # Every ticket slot was filled by exactly one rank.
        owners = [runtime.window(0).read(ticket_log + t) for t in range(p)]
        assert sorted(owners) == list(range(p))

    def test_queue_length_reflects_waiters(self):
        machine = Machine.single_node(3)
        spec = TicketLockSpec(num_processes=3)
        runtime = SimRuntime(machine, window_words=spec.window_words + 1)
        flag = spec.window_words

        def program_signal_first(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                lock.acquire()
                ctx.spin_while(0, flag, lambda v: v < 2)
                length = lock.queue_length()
                lock.release()
                return length
            ctx.accumulate(1, 0, flag)
            ctx.flush(0)
            lock.acquire()
            lock.release()
            return None

        result = runtime.run(program_signal_first, window_init=spec.init_window)
        # Rank 0 held the lock while both others had signalled; they may or may
        # not have drawn their tickets yet, so the queue holds at least rank 0.
        assert result.returns[0] >= 1
