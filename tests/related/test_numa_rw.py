"""Tests for the NUMA-aware reader-writer lock (per-node reader counters)."""

from __future__ import annotations

import pytest

from repro.related.numa_rw import NumaRWLockSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from tests.support import run_rw_check


class TestNumaRWLockSpec:
    def test_layout_does_not_overlap_internal_writer_lock(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = NumaRWLockSpec(machine)
        own = {spec.writer_present_offset, spec.readers_offset}
        writer = {
            spec.writer_lock.global_next_offset,
            spec.writer_lock.global_serving_offset,
            spec.writer_lock.local_next_offset,
            spec.writer_lock.local_serving_offset,
            spec.writer_lock.owned_offset,
            spec.writer_lock.passes_offset,
        }
        assert own.isdisjoint(writer)
        assert spec.window_words == 8

    def test_reader_counter_rank_is_node_leader(self):
        machine = Machine.cluster(nodes=3, procs_per_node=4)
        spec = NumaRWLockSpec(machine)
        assert spec.reader_counter_rank(0) == 0
        assert spec.reader_counter_rank(5) == 4
        assert spec.reader_counter_rank(11) == 8
        assert spec.reader_counter_ranks() == [0, 4, 8]

    def test_single_node_machine_has_one_reader_counter(self):
        machine = Machine.single_node(4)
        spec = NumaRWLockSpec(machine)
        assert spec.reader_counter_ranks() == [0]

    def test_rejects_bad_home_rank(self):
        machine = Machine.single_node(2)
        with pytest.raises(ValueError):
            NumaRWLockSpec(machine, home_rank=7)

    def test_init_window_covers_home_and_leaders(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = NumaRWLockSpec(machine)
        init0 = spec.init_window(0)
        assert spec.writer_present_offset in init0
        assert spec.readers_offset in init0
        init2 = spec.init_window(2)
        assert spec.readers_offset in init2
        assert spec.writer_present_offset not in init2


class TestNumaRWLockProtocol:
    @pytest.mark.parametrize("runtime", ["sim", "thread"])
    def test_rw_exclusion_mixed_roles(self, runtime):
        machine = Machine.cluster(nodes=2, procs_per_node=3)
        spec = NumaRWLockSpec(machine)
        outcome = run_rw_check(spec, machine, iterations=4, fw=0.3, runtime=runtime, seed=5)
        assert outcome.ok, outcome

    def test_readers_admitted_concurrently(self):
        machine = Machine.cluster(nodes=2, procs_per_node=3)
        spec = NumaRWLockSpec(machine)
        # A single dedicated writer; everyone else only reads.
        outcome = run_rw_check(spec, machine, iterations=4, writer_ranks=[0], seed=7)
        assert outcome.ok, outcome
        assert outcome.max_concurrent_readers >= 2

    def test_pure_writer_workload_is_exclusive(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = NumaRWLockSpec(machine)
        outcome = run_rw_check(
            spec, machine, iterations=3, writer_ranks=list(range(machine.num_processes))
        )
        assert outcome.ok, outcome
        assert outcome.writes == machine.num_processes * 3
        assert outcome.reads == 0

    def test_pure_reader_workload(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = NumaRWLockSpec(machine)
        outcome = run_rw_check(spec, machine, iterations=3, writer_ranks=[])
        assert outcome.ok, outcome
        assert outcome.writes == 0

    def test_plain_lock_interface_maps_to_writer_side(self):
        machine = Machine.single_node(3)
        spec = NumaRWLockSpec(machine)
        runtime = SimRuntime(machine, window_words=spec.window_words + 1)
        shared = spec.window_words

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            with lock.held():
                value = ctx.get(0, shared)
                ctx.flush(0)
                ctx.put(value + 1, 0, shared)
                ctx.flush(0)
            ctx.barrier()

        runtime.run(program, window_init=spec.init_window)
        assert runtime.window(0).read(shared) == machine.num_processes

    def test_reader_counters_return_to_zero_after_run(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = NumaRWLockSpec(machine)
        runtime = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            for _ in range(3):
                with lock.reading():
                    ctx.compute(0.2)
            ctx.barrier()

        runtime.run(program, window_init=spec.init_window)
        for leader in spec.reader_counter_ranks():
            assert runtime.window(leader).read(spec.readers_offset) == 0
