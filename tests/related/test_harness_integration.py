"""Integration of the related-work locks with the benchmark harness and drivers."""

from __future__ import annotations

import pytest

from repro.bench import experiments
from repro.bench.harness import build_lock_spec, run_lock_benchmark
from repro.bench.workloads import (
    RELATED_MCS_SCHEMES,
    RELATED_RW_SCHEMES,
    SCHEMES,
    LockBenchConfig,
)
from repro.related.cohort import CohortTicketLockSpec
from repro.related.hbo import HBOLockSpec
from repro.related.numa_rw import NumaRWLockSpec
from repro.related.ticket import TicketLockSpec
from repro.topology.builder import xc30_like

TINY = {"process_counts": (4, 8), "iterations": 5, "procs_per_node": 4}


class TestSchemeRegistry:
    def test_related_schemes_are_registered(self):
        for scheme in RELATED_MCS_SCHEMES + RELATED_RW_SCHEMES:
            assert scheme in SCHEMES

    @pytest.mark.parametrize(
        "scheme, spec_type, is_rw",
        [
            ("ticket", TicketLockSpec, False),
            ("hbo", HBOLockSpec, False),
            ("cohort", CohortTicketLockSpec, False),
            ("numa-rw", NumaRWLockSpec, True),
        ],
    )
    def test_build_lock_spec_dispatch(self, scheme, spec_type, is_rw):
        machine = xc30_like(8, procs_per_node=4)
        config = LockBenchConfig(machine=machine, scheme=scheme, benchmark="ecsb")
        spec, rw = build_lock_spec(config)
        assert isinstance(spec, spec_type)
        assert rw is is_rw

    def test_leaf_threshold_feeds_cohort_bound(self):
        machine = xc30_like(8, procs_per_node=4)
        config = LockBenchConfig(machine=machine, scheme="cohort", benchmark="ecsb", t_l=(4, 2))
        spec, _ = build_lock_spec(config)
        assert spec.max_local_passes == 2

    def test_numa_rw_counts_as_rw_scheme(self):
        machine = xc30_like(4, procs_per_node=4)
        config = LockBenchConfig(machine=machine, scheme="numa-rw", benchmark="ecsb", fw=0.1)
        assert config.is_rw_scheme


class TestRelatedBenchmarkRuns:
    @pytest.mark.parametrize("scheme", ["ticket", "hbo", "cohort"])
    def test_mcs_scheme_produces_throughput(self, scheme):
        machine = xc30_like(8, procs_per_node=4)
        config = LockBenchConfig(machine=machine, scheme=scheme, benchmark="ecsb", iterations=5)
        result = run_lock_benchmark(config)
        assert result.throughput_mln_per_s > 0
        assert result.total_acquires == 8 * 5
        assert result.writes == result.total_acquires  # MCS-style: everything exclusive

    def test_numa_rw_scheme_respects_fw(self):
        machine = xc30_like(8, procs_per_node=4)
        config = LockBenchConfig(
            machine=machine, scheme="numa-rw", benchmark="ecsb", iterations=6, fw=0.0
        )
        result = run_lock_benchmark(config)
        assert result.writes == 0
        assert result.reads == result.total_acquires


class TestRelatedExperimentDrivers:
    def test_related_mcs_rows(self):
        rows = experiments.related_mcs_comparison(benchmarks=("ecsb",), **TINY)
        assert {r["series"] for r in rows} == {
            "fompi-spin",
            "d-mcs",
            "rma-mcs",
            "ticket",
            "hbo",
            "cohort",
            "alock",
            "lock-server",
        }
        assert all(r["figure"] == "related-mcs" for r in rows)
        assert all(r["throughput_mln_s"] > 0 for r in rows)

    def test_related_rw_rows(self):
        rows = experiments.related_rw_comparison(fw_values=(0.05,), **TINY)
        assert {r["series"] for r in rows} == {
            "fompi-rw 5%",
            "rma-rw 5%",
            "numa-rw 5%",
        }
        assert all(r["figure"] == "related-rw" for r in rows)
