"""Tests for the hierarchical backoff lock."""

from __future__ import annotations

import pytest

from repro.core.constants import NULL_RANK
from repro.related.hbo import HBOLockSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from tests.support import run_mutex_check


class TestHBOLockSpec:
    def test_window_words(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = HBOLockSpec(machine)
        assert spec.window_words == 1
        assert spec.num_processes == 4

    def test_init_window_sets_null_holder_on_home(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = HBOLockSpec(machine, home_rank=1)
        assert spec.init_window(1) == {spec.lock_offset: NULL_RANK}
        assert spec.init_window(0) == {}

    def test_rejects_bad_home_rank(self):
        machine = Machine.single_node(2)
        with pytest.raises(ValueError):
            HBOLockSpec(machine, home_rank=5)

    def test_rejects_inverted_backoff_caps(self):
        machine = Machine.single_node(2)
        with pytest.raises(ValueError):
            HBOLockSpec(machine, local_cap_us=10.0, remote_cap_us=1.0)

    def test_rejects_nonpositive_min_backoff(self):
        machine = Machine.single_node(2)
        with pytest.raises(ValueError):
            HBOLockSpec(machine, min_backoff_us=0.0)

    def test_rejects_local_cap_below_min(self):
        machine = Machine.single_node(2)
        with pytest.raises(ValueError):
            HBOLockSpec(machine, min_backoff_us=5.0, local_cap_us=1.0, remote_cap_us=10.0)


class TestHBOLockProtocol:
    @pytest.mark.parametrize("runtime", ["sim", "thread"])
    def test_mutual_exclusion(self, runtime):
        machine = Machine.cluster(nodes=2, procs_per_node=3)
        spec = HBOLockSpec(machine)
        outcome = run_mutex_check(spec, machine, iterations=3, runtime=runtime)
        assert outcome.ok, outcome

    def test_mutual_exclusion_three_levels(self):
        machine = Machine.multi_rack(racks=2, nodes_per_rack=2, procs_per_node=2)
        spec = HBOLockSpec(machine)
        outcome = run_mutex_check(spec, machine, iterations=3)
        assert outcome.ok, outcome

    def test_uncontended_acquire_takes_one_attempt(self):
        machine = Machine.single_node(2)
        spec = HBOLockSpec(machine)
        runtime = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                lock.acquire()
                attempts = lock.last_attempts
                lock.release()
                return attempts
            return None

        result = runtime.run(program, window_init=spec.init_window)
        assert result.returns[0] == 1

    def test_holder_reports_current_owner(self):
        machine = Machine.single_node(2)
        spec = HBOLockSpec(machine)
        runtime = SimRuntime(machine, window_words=spec.window_words + 1)
        flag = spec.window_words

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                lock.acquire()
                ctx.put(1, 1, flag)
                ctx.flush(1)
                ctx.spin_while(0, flag, lambda v: v == 0)
                lock.release()
                return lock.holder()
            # Rank 1 observes the holder while rank 0 is inside the CS.
            ctx.spin_while(ctx.rank, flag, lambda v: v == 0)
            observed = lock.holder()
            ctx.put(1, 0, flag)
            ctx.flush(0)
            return observed

        result = runtime.run(program, window_init=spec.init_window)
        assert result.returns[1] == 0          # rank 0 held the lock
        assert result.returns[0] is None        # free after release

    def test_backoff_cap_depends_on_holder_distance(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = HBOLockSpec(machine, local_cap_us=2.0, remote_cap_us=20.0)
        runtime = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            if ctx.rank != 0:
                return None
            # Rank 0 lives on node 0 with rank 1; ranks 2 and 3 are remote.
            return (
                lock._backoff_cap(1),
                lock._backoff_cap(2),
                lock._backoff_cap(NULL_RANK),
            )

        result = runtime.run(program, window_init=spec.init_window)
        local_cap, remote_cap, free_cap = result.returns[0]
        assert local_cap == pytest.approx(2.0)
        assert remote_cap == pytest.approx(20.0)
        assert free_cap == pytest.approx(2.0)
