"""Tests for the centralized lock-server grant queue."""

from __future__ import annotations

import pytest

from repro.related.lock_server import LockServerSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from tests.support import run_mutex_check


class TestLockServerSpec:
    def test_window_words(self):
        spec = LockServerSpec(num_processes=4)
        assert spec.window_words == 2

    def test_init_window_server_only(self):
        spec = LockServerSpec(num_processes=4, server_rank=2)
        assert spec.init_window(2) == {spec.next_offset: 0, spec.grant_offset: 0}
        assert spec.init_window(0) == {}

    def test_rejects_bad_server_rank(self):
        with pytest.raises(ValueError):
            LockServerSpec(num_processes=2, server_rank=2)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            LockServerSpec(num_processes=2, queue_threshold=-1)

    def test_rejects_cap_below_min_backoff(self):
        with pytest.raises(ValueError):
            LockServerSpec(num_processes=2, poll_cap_us=0.1, min_backoff_us=1.0)

    def test_rebasable_layout(self):
        spec = LockServerSpec(num_processes=2, base_offset=3)
        assert spec.next_offset == 3
        assert spec.grant_offset == 4
        assert spec.window_words == 5


class TestLockServerProtocol:
    @pytest.mark.parametrize("runtime", ["sim", "thread"])
    @pytest.mark.parametrize("threshold", [0, 1, 8])
    def test_mutual_exclusion_across_the_policy_axis(self, runtime, threshold):
        # threshold=0 is the pure FIFO queue, 8 >= P is pure poll-retry.
        machine = Machine.cluster(nodes=2, procs_per_node=3)
        spec = LockServerSpec(num_processes=6, queue_threshold=threshold)
        outcome = run_mutex_check(spec, machine, iterations=3, runtime=runtime)
        assert outcome.ok, outcome

    def test_uncontended_acquire_claims_without_polling(self):
        machine = Machine.single_node(2)
        spec = LockServerSpec(num_processes=2)
        runtime = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                lock.acquire()
                polls = lock.last_polls
                depth = lock.queue_depth()
                lock.release()
                return polls, depth
            return None

        result = runtime.run(program, window_init=spec.init_window)
        polls, depth = result.returns[0]
        assert polls == 0
        assert depth == 1  # our ticket is issued but not yet served

    def test_queue_drains_back_to_zero(self):
        machine = Machine.single_node(3)
        spec = LockServerSpec(num_processes=3, queue_threshold=0)
        runtime = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            lock.acquire()
            ctx.compute(0.5)
            lock.release()
            ctx.barrier()
            return lock.queue_depth()

        result = runtime.run(program, window_init=spec.init_window)
        assert all(depth == 0 for depth in result.returns)
