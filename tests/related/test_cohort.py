"""Tests for the cohort (ticket-ticket) lock."""

from __future__ import annotations

import pytest

from repro.core.instrumentation import GrantLedgerSpec, InstrumentedLock, locality_report
from repro.related.cohort import CohortTicketLockSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from tests.support import run_mutex_check


class TestCohortTicketLockSpec:
    def test_window_words_counts_all_six_fields(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = CohortTicketLockSpec(machine)
        assert spec.window_words == 6
        offsets = {
            spec.global_next_offset,
            spec.global_serving_offset,
            spec.local_next_offset,
            spec.local_serving_offset,
            spec.owned_offset,
            spec.passes_offset,
        }
        assert len(offsets) == 6

    def test_leader_of_maps_to_first_rank_of_node(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        spec = CohortTicketLockSpec(machine)
        assert spec.leader_of(0) == 0
        assert spec.leader_of(3) == 0
        assert spec.leader_of(4) == 4
        assert spec.leader_of(7) == 4

    def test_init_window_leader_vs_member(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = CohortTicketLockSpec(machine)
        assert spec.local_next_offset in spec.init_window(2)     # leader of node 1
        assert spec.global_next_offset in spec.init_window(0)    # home rank
        assert spec.init_window(1) == {}                          # plain member

    def test_rejects_bad_parameters(self):
        machine = Machine.single_node(2)
        with pytest.raises(ValueError):
            CohortTicketLockSpec(machine, max_local_passes=0)
        with pytest.raises(ValueError):
            CohortTicketLockSpec(machine, home_rank=9)


class TestCohortTicketLockProtocol:
    @pytest.mark.parametrize("runtime", ["sim", "thread"])
    def test_mutual_exclusion(self, runtime):
        machine = Machine.cluster(nodes=2, procs_per_node=3)
        spec = CohortTicketLockSpec(machine, max_local_passes=2)
        outcome = run_mutex_check(spec, machine, iterations=4, runtime=runtime)
        assert outcome.ok, outcome

    def test_mutual_exclusion_single_node(self):
        machine = Machine.single_node(4)
        spec = CohortTicketLockSpec(machine)
        outcome = run_mutex_check(spec, machine, iterations=4)
        assert outcome.ok, outcome

    def test_mutual_exclusion_three_levels(self):
        machine = Machine.multi_rack(racks=2, nodes_per_rack=2, procs_per_node=2)
        spec = CohortTicketLockSpec(machine, max_local_passes=3)
        outcome = run_mutex_check(spec, machine, iterations=3)
        assert outcome.ok, outcome

    def test_first_acquire_goes_through_global_lock(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = CohortTicketLockSpec(machine)
        runtime = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                lock.acquire()
                acquired_global = lock.last_acquired_global
                lock.release()
                return acquired_global
            return None

        result = runtime.run(program, window_init=spec.init_window)
        assert result.returns[0] is True

    def test_release_without_acquire_raises(self):
        machine = Machine.single_node(2)
        spec = CohortTicketLockSpec(machine)
        runtime = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            if ctx.rank == 0:
                with pytest.raises(RuntimeError):
                    lock.release()

        runtime.run(program, window_init=spec.init_window)

    def _locality_for(self, max_local_passes: int) -> float:
        """Node-level hand-off locality of a contended run with the given bound."""
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        iterations = 6
        spec = CohortTicketLockSpec(machine, max_local_passes=max_local_passes)
        ledger = GrantLedgerSpec(
            capacity=machine.num_processes * iterations,
            base_offset=spec.window_words,
        )
        runtime = SimRuntime(machine, window_words=ledger.window_words, seed=3)

        def window_init(rank):
            values = dict(spec.init_window(rank))
            values.update(ledger.init_window(rank))
            return values

        def program(ctx):
            lock = InstrumentedLock(spec.make(ctx), ledger, ctx)
            ctx.barrier()
            for _ in range(iterations):
                lock.acquire()
                ctx.compute(0.3)
                lock.release()
            ctx.barrier()

        runtime.run(program, window_init=window_init)
        grants = ledger.read_grants_from_window(runtime.window(0))
        return locality_report(machine, grants).node_locality

    def test_larger_pass_bound_increases_handoff_locality(self):
        """The may-pass-local bound is the cohort lock's locality/fairness knob."""
        fair = self._locality_for(max_local_passes=1)
        local = self._locality_for(max_local_passes=16)
        assert local >= fair

    def test_pass_bound_one_forces_global_acquire_every_time(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = CohortTicketLockSpec(machine, max_local_passes=1)
        runtime = SimRuntime(machine, window_words=spec.window_words)
        iterations = 3

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            global_acquires = 0
            for _ in range(iterations):
                lock.acquire()
                if lock.last_acquired_global:
                    global_acquires += 1
                ctx.compute(0.2)
                lock.release()
            ctx.barrier()
            return global_acquires

        result = runtime.run(program, window_init=spec.init_window)
        total_global = sum(result.returns)
        total = iterations * machine.num_processes
        # With a pass bound of one, at most one local hand-off can follow each
        # global acquisition, so at least half of all acquisitions must have
        # gone through the global lock.
        assert total_global >= total / 2
