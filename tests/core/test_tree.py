"""Tests for the distributed-tree layout and the locality-threshold normalization."""

from __future__ import annotations

import pytest

from repro.core.constants import NULL_RANK
from repro.core.layout import LayoutAllocator
from repro.core.tree import UNBOUNDED_THRESHOLD, TreeLayout, normalize_locality_thresholds
from repro.topology.machine import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine.multi_rack(racks=2, nodes_per_rack=2, procs_per_node=3)


class TestThresholdNormalization:
    def test_none_means_unbounded_everywhere(self, machine):
        thresholds = normalize_locality_thresholds(machine, None)
        assert thresholds == (UNBOUNDED_THRESHOLD,) * 3

    def test_full_length_sequence(self, machine):
        assert normalize_locality_thresholds(machine, (2, 3, 4)) == (2, 3, 4)

    def test_short_sequence_covers_levels_2_to_n(self, machine):
        thresholds = normalize_locality_thresholds(machine, (3, 4))
        assert thresholds[0] == UNBOUNDED_THRESHOLD
        assert thresholds[1:] == (3, 4)

    def test_mapping_form(self, machine):
        thresholds = normalize_locality_thresholds(machine, {3: 7})
        assert thresholds[2] == 7
        assert thresholds[0] == UNBOUNDED_THRESHOLD

    def test_wrong_length_rejected(self, machine):
        with pytest.raises(ValueError):
            normalize_locality_thresholds(machine, (1,))
        with pytest.raises(ValueError):
            normalize_locality_thresholds(machine, (1, 2, 3, 4))

    def test_bad_level_in_mapping_rejected(self, machine):
        with pytest.raises(ValueError):
            normalize_locality_thresholds(machine, {4: 2})

    def test_non_positive_threshold_rejected(self, machine):
        with pytest.raises(ValueError):
            normalize_locality_thresholds(machine, (1, 2, 0))


class TestTreeLayout:
    def test_offsets_do_not_collide(self, machine):
        layout = TreeLayout.allocate(machine, LayoutAllocator())
        all_offsets = list(layout.next_offsets) + list(layout.status_offsets) + list(layout.tail_offsets)
        assert len(all_offsets) == len(set(all_offsets)) == 3 * machine.n_levels
        assert layout.max_offset == max(all_offsets)

    def test_offsets_respect_base(self, machine):
        layout = TreeLayout.allocate(machine, LayoutAllocator(base=20))
        assert min(layout.next_offsets) >= 20

    def test_per_level_accessors(self, machine):
        layout = TreeLayout.allocate(machine, LayoutAllocator())
        for level in range(1, machine.n_levels + 1):
            assert layout.next_offset(level) in layout.next_offsets
            assert layout.status_offset(level) in layout.status_offsets
            assert layout.tail_offset(level) in layout.tail_offsets

    def test_leaf_queue_node_is_the_process_itself(self, machine):
        layout = TreeLayout.allocate(machine, LayoutAllocator())
        for rank in machine.iter_ranks():
            assert layout.queue_node_rank(rank, machine.n_levels) == rank

    def test_upper_level_queue_node_is_element_representative(self, machine):
        layout = TreeLayout.allocate(machine, LayoutAllocator())
        # ranks 0-2 are node 0 (rack 0); their level-2 node is rank 0
        assert layout.queue_node_rank(1, 2) == 0
        assert layout.queue_node_rank(2, 2) == 0
        # ranks 3-5 are node 1; their representative is rank 3
        assert layout.queue_node_rank(4, 2) == 3
        # at level 1 the enqueued entity is the rack: rack 0 -> rank 0, rack 1 -> rank 6
        assert layout.queue_node_rank(4, 1) == 0
        assert layout.queue_node_rank(10, 1) == 6

    def test_same_element_shares_queue_node(self, machine):
        layout = TreeLayout.allocate(machine, LayoutAllocator())
        for level in range(1, machine.n_levels):
            for element in range(machine.num_elements(level + 1)):
                nodes = {
                    layout.queue_node_rank(rank, level)
                    for rank in machine.ranks_in_element(level + 1, element)
                }
                assert len(nodes) == 1

    def test_tail_host_is_first_rank_of_level_element(self, machine):
        layout = TreeLayout.allocate(machine, LayoutAllocator())
        assert layout.tail_host_rank(5, 3) == 3       # node containing rank 5 starts at 3
        assert layout.tail_host_rank(5, 2) == 0       # rack 0 starts at rank 0
        assert layout.tail_host_rank(11, 2) == 6      # rack 1 starts at rank 6
        assert layout.tail_host_rank(11, 1) == 0      # the machine starts at rank 0

    def test_init_window_nulls_pointers(self, machine):
        layout = TreeLayout.allocate(machine, LayoutAllocator())
        values = layout.init_window(0)
        for level in range(1, machine.n_levels + 1):
            assert values[layout.next_offset(level)] == NULL_RANK
            assert values[layout.tail_offset(level)] == NULL_RANK
            assert values[layout.status_offset(level)] == 0

    def test_single_level_machine(self):
        machine = Machine.single_node(4)
        layout = TreeLayout.allocate(machine, LayoutAllocator())
        assert layout.queue_node_rank(3, 1) == 3
        assert layout.tail_host_rank(3, 1) == 0
