"""Tests for the lock spec/handle abstractions."""

from __future__ import annotations

import pytest

from repro.core.baselines import FompiRWLockSpec, FompiSpinLockSpec
from repro.core.lock_base import LockSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine


class TestMergeInits:
    def test_merges_disjoint(self):
        merged = LockSpec.merge_inits({0: 1}, {1: 2}, {2: 3})
        assert merged == {0: 1, 1: 2, 2: 3}

    def test_identical_values_allowed(self):
        assert LockSpec.merge_inits({0: 5}, {0: 5}) == {0: 5}

    def test_conflicting_values_rejected(self):
        with pytest.raises(ValueError):
            LockSpec.merge_inits({0: 5}, {0: 6})

    def test_empty(self):
        assert LockSpec.merge_inits() == {}


class TestContextManagers:
    def test_held_acquires_and_releases(self):
        machine = Machine.single_node(3)
        spec = FompiSpinLockSpec(num_processes=3)
        rt = SimRuntime(machine, window_words=spec.window_words + 1)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            with lock.held():
                ctx.accumulate(1, 0, spec.window_words)
                ctx.flush(0)

        rt.run(program, window_init=spec.init_window)
        assert rt.window(0).read(spec.window_words) == 3
        # lock word must be free again
        assert rt.window(0).read(spec.lock_offset) == 0

    def test_held_releases_on_exception(self):
        machine = Machine.single_node(2)
        spec = FompiSpinLockSpec(num_processes=2)
        rt = SimRuntime(machine, window_words=spec.window_words + 1)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                try:
                    with lock.held():
                        raise KeyError("inside CS")
                except KeyError:
                    pass
            ctx.barrier()
            # If rank 0 leaked the lock, rank 1 would deadlock here.
            with lock.held():
                ctx.accumulate(1, 0, spec.window_words)
                ctx.flush(0)

        rt.run(program, window_init=spec.init_window)
        assert rt.window(0).read(spec.window_words) == 2

    def test_reading_and_writing_context_managers(self):
        machine = Machine.single_node(4)
        spec = FompiRWLockSpec(num_processes=4)
        rt = SimRuntime(machine, window_words=spec.window_words + 1)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                with lock.writing():
                    ctx.accumulate(10, 0, spec.window_words)
                    ctx.flush(0)
            else:
                with lock.reading():
                    ctx.get(0, spec.window_words)
                    ctx.flush(0)

        rt.run(program, window_init=spec.init_window)
        assert rt.window(0).read(spec.window_words) == 10

    def test_rw_lock_usable_as_plain_lock(self):
        """acquire()/release() on an RW lock take the writer (exclusive) path."""
        machine = Machine.single_node(3)
        spec = FompiRWLockSpec(num_processes=3)
        rt = SimRuntime(machine, window_words=spec.window_words + 1)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            lock.acquire()
            value = ctx.get(0, spec.window_words)
            ctx.flush(0)
            ctx.put(value + 1, 0, spec.window_words)
            ctx.flush(0)
            lock.release()

        rt.run(program, window_init=spec.init_window)
        assert rt.window(0).read(spec.window_words) == 3
