"""Tests for the D-MCS distributed queue lock (Listings 2-3)."""

from __future__ import annotations

import pytest

from repro.core.constants import NULL_RANK
from repro.core.dmcs import DMCSLockSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from tests.support import run_mutex_check


class TestSpec:
    def test_window_layout(self):
        spec = DMCSLockSpec(num_processes=8)
        assert spec.window_words == 3
        assert len({spec.next_offset, spec.status_offset, spec.tail_offset}) == 3

    def test_base_offset_shifts_layout(self):
        spec = DMCSLockSpec(num_processes=8, base_offset=10)
        assert spec.next_offset == 10
        assert spec.window_words == 13

    def test_init_window(self):
        spec = DMCSLockSpec(num_processes=4, tail_rank=2)
        assert spec.init_window(2)[spec.tail_offset] == NULL_RANK
        assert spec.tail_offset not in spec.init_window(0)
        assert spec.init_window(0)[spec.next_offset] == NULL_RANK

    def test_validation(self):
        with pytest.raises(ValueError):
            DMCSLockSpec(num_processes=0)
        with pytest.raises(ValueError):
            DMCSLockSpec(num_processes=4, tail_rank=4)

    def test_handle_rejects_mismatched_runtime(self):
        machine = Machine.single_node(3)
        spec = DMCSLockSpec(num_processes=5)
        rt = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            spec.make(ctx)

        with pytest.raises(ValueError, match="ranks"):
            rt.run(program, window_init=spec.init_window)


class TestMutualExclusion:
    def test_single_process(self):
        machine = Machine.single_node(1)
        outcome = run_mutex_check(DMCSLockSpec(num_processes=1), machine, iterations=5)
        assert outcome.ok

    def test_single_node(self):
        machine = Machine.single_node(6)
        outcome = run_mutex_check(DMCSLockSpec(num_processes=6), machine, iterations=6)
        assert outcome.ok

    def test_multi_node(self, medium_cluster):
        spec = DMCSLockSpec(num_processes=medium_cluster.num_processes)
        outcome = run_mutex_check(spec, medium_cluster, iterations=6)
        assert outcome.ok

    def test_three_level_machine(self, three_level_machine):
        spec = DMCSLockSpec(num_processes=three_level_machine.num_processes)
        outcome = run_mutex_check(spec, three_level_machine, iterations=5)
        assert outcome.ok

    def test_non_zero_tail_rank(self, small_cluster):
        spec = DMCSLockSpec(num_processes=small_cluster.num_processes, tail_rank=5)
        outcome = run_mutex_check(spec, small_cluster, iterations=5)
        assert outcome.ok

    def test_on_thread_runtime(self):
        machine = Machine.single_node(4)
        spec = DMCSLockSpec(num_processes=4)
        outcome = run_mutex_check(spec, machine, iterations=10, runtime="thread")
        assert outcome.ok

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_different_seeds(self, small_cluster, seed):
        spec = DMCSLockSpec(num_processes=small_cluster.num_processes)
        outcome = run_mutex_check(spec, small_cluster, iterations=4, seed=seed)
        assert outcome.ok


class TestQueueBehaviour:
    def test_lock_state_clean_after_run(self, small_cluster):
        """After everyone releases, the tail must be null and nobody waits."""
        spec = DMCSLockSpec(num_processes=small_cluster.num_processes)
        rt = SimRuntime(small_cluster, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            for _ in range(3):
                lock.acquire()
                lock.release()
            ctx.barrier()

        rt.run(program, window_init=spec.init_window)
        assert rt.window(spec.tail_rank).read(spec.tail_offset) == NULL_RANK

    def test_uncontended_acquire_is_fast(self):
        """An uncontended acquire needs only the tail FAO round-trip."""
        machine = Machine.single_node(2)
        spec = DMCSLockSpec(num_processes=2)
        rt = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            if ctx.rank == 1:
                start = ctx.now()
                lock.acquire()
                lock.release()
                return ctx.now() - start
            return 0.0

        result = rt.run(program, window_init=spec.init_window)
        assert 0 < result.returns[1] < 10.0

    def test_fifo_hand_off_order(self):
        """With staggered arrivals the lock is granted in arrival order."""
        machine = Machine.single_node(4)
        spec = DMCSLockSpec(num_processes=4)
        order_off = spec.window_words
        ticket_off = spec.window_words + 1
        rt = SimRuntime(machine, window_words=spec.window_words + 8)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            ctx.compute(float(ctx.rank) * 50.0)  # arrive well apart, in rank order
            lock.acquire()
            from repro.rma.ops import AtomicOp

            ticket = ctx.fao(1, 0, ticket_off, AtomicOp.SUM)
            ctx.put(ctx.rank, 0, order_off + 2 + ticket)
            ctx.flush(0)
            lock.release()
            ctx.barrier()

        rt.run(program, window_init=spec.init_window)
        grant_order = [rt.window(0).read(order_off + 2 + i) for i in range(4)]
        assert grant_order == [0, 1, 2, 3]
