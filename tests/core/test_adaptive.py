"""Tests for the adaptive threshold tuner (the paper's future-work extension)."""

from __future__ import annotations

import pytest

from repro.core.adaptive import (
    AdaptiveParameters,
    ThresholdTuner,
    WorkloadSample,
    tune_rma_rw,
)
from repro.core.rma_rw import RMARWLockSpec
from repro.topology.machine import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine.cluster(nodes=4, procs_per_node=8)


class TestAdaptiveParameters:
    def test_as_lock_kwargs(self, machine):
        params = AdaptiveParameters(t_dc=8, t_r=32, t_l_leaf=4)
        kwargs = params.as_lock_kwargs(machine)
        assert kwargs["t_dc"] == 8
        assert kwargs["t_r"] == 32
        assert kwargs["t_l"] == (4, 4)

    def test_kwargs_build_a_valid_spec(self, machine):
        params = AdaptiveParameters(t_dc=4, t_r=16, t_l_leaf=8)
        spec = RMARWLockSpec(machine, **params.as_lock_kwargs(machine))
        assert spec.t_dc == 4
        assert spec.reader_threshold == 16
        assert spec.locality_threshold(machine.n_levels) == 8

    def test_clamped(self, machine):
        params = AdaptiveParameters(t_dc=10_000, t_r=0, t_l_leaf=0).clamped(machine)
        assert params.t_dc == machine.num_processes
        assert params.t_r == 1
        assert params.t_l_leaf == 1

    def test_single_level_machine_kwargs(self):
        machine = Machine.single_node(4)
        params = AdaptiveParameters(t_dc=2, t_r=8, t_l_leaf=3)
        assert params.as_lock_kwargs(machine)["t_l"] == (3,)


class TestWorkloadSample:
    def test_score_defaults_to_throughput(self):
        sample = WorkloadSample(throughput=5.0, latency_us=100.0, observed_fw=0.1)
        assert sample.score() == 5.0

    def test_latency_penalty(self):
        sample = WorkloadSample(throughput=5.0, latency_us=10.0, observed_fw=0.1)
        assert sample.score(latency_weight=0.1) == pytest.approx(4.0)


class TestThresholdTuner:
    def test_starts_from_paper_recommended_defaults(self, machine):
        tuner = ThresholdTuner(machine)
        params = tuner.current_parameters
        assert params.t_dc == 8  # one counter per node
        assert params.t_r >= 1
        assert params.t_l_leaf >= 1

    def test_keeps_best_on_improvement(self, machine):
        tuner = ThresholdTuner(machine)
        first = tuner.current_parameters
        tuner.observe(WorkloadSample(throughput=1.0, latency_us=10, observed_fw=0.1))
        assert tuner.best_parameters == first
        candidate = tuner.next_parameters()
        assert candidate != first
        tuner.observe(WorkloadSample(throughput=2.0, latency_us=10, observed_fw=0.1))
        assert tuner.best_parameters == candidate

    def test_reverts_on_regression(self, machine):
        tuner = ThresholdTuner(machine)
        baseline = tuner.current_parameters
        tuner.observe(WorkloadSample(throughput=5.0, latency_us=10, observed_fw=0.1))
        tuner.next_parameters()
        tuner.observe(WorkloadSample(throughput=1.0, latency_us=10, observed_fw=0.1))
        assert tuner.best_parameters == baseline
        assert tuner.best_score == 5.0

    def test_candidates_always_valid(self, machine):
        tuner = ThresholdTuner(machine)
        score = 1.0
        for _ in range(20):
            tuner.observe(WorkloadSample(throughput=score, latency_us=5.0, observed_fw=0.1))
            candidate = tuner.next_parameters()
            assert 1 <= candidate.t_dc <= machine.num_processes
            assert candidate.t_r >= 1
            assert candidate.t_l_leaf >= 1
            score *= 0.9  # permanent regression: tuner must keep cycling knobs safely

    def test_history_records_every_phase(self, machine):
        tuner = ThresholdTuner(machine)
        for i in range(4):
            tuner.observe(WorkloadSample(throughput=float(i), latency_us=1.0, observed_fw=0.0))
            tuner.next_parameters()
        assert len(tuner.history) == 4
        assert sum(step.accepted for step in tuner.history) >= 1

    def test_step_factor_validated(self, machine):
        with pytest.raises(ValueError):
            ThresholdTuner(machine, step_factor=1.0)


class TestTuneRmaRw:
    def test_synthetic_objective_converges_towards_optimum(self, machine):
        """The tuner improves a synthetic concave objective over its starting point."""
        optimum = AdaptiveParameters(t_dc=16, t_r=64, t_l_leaf=8)

        def measure(params: AdaptiveParameters) -> WorkloadSample:
            penalty = (
                abs(params.t_dc - optimum.t_dc) / optimum.t_dc
                + abs(params.t_r - optimum.t_r) / optimum.t_r
                + abs(params.t_l_leaf - optimum.t_l_leaf) / optimum.t_l_leaf
            )
            return WorkloadSample(throughput=10.0 - penalty, latency_us=1.0, observed_fw=0.05)

        best, history = tune_rma_rw(machine, measure, phases=12)
        first_score = history[0].sample.score()
        best_score = max(step.sample.score() for step in history)
        assert best_score >= first_score
        assert len(history) == 12
        assert best.t_dc >= 1

    def test_phases_validated(self, machine):
        with pytest.raises(ValueError):
            tune_rma_rw(machine, lambda p: WorkloadSample(1, 1, 0), phases=0)

    def test_end_to_end_with_simulated_benchmark(self):
        """Tuning against the real harness yields parameters at least as good as the start."""
        from repro.bench.harness import run_lock_benchmark
        from repro.bench.workloads import LockBenchConfig

        machine = Machine.cluster(nodes=2, procs_per_node=4)

        def measure(params: AdaptiveParameters) -> WorkloadSample:
            kwargs = params.as_lock_kwargs(machine)
            config = LockBenchConfig(
                machine=machine,
                scheme="rma-rw",
                benchmark="ecsb",
                iterations=6,
                fw=0.1,
                t_dc=kwargs["t_dc"],
                t_l=kwargs["t_l"],
                t_r=kwargs["t_r"],
                seed=4,
            )
            result = run_lock_benchmark(config)
            return WorkloadSample(
                throughput=result.throughput_mln_per_s,
                latency_us=result.latency_mean_us,
                observed_fw=result.writes / max(result.total_acquires, 1),
            )

        best, history = tune_rma_rw(machine, measure, phases=5)
        assert max(s.sample.throughput for s in history) >= history[0].sample.throughput
        assert best.t_dc <= machine.num_processes
