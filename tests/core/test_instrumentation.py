"""Tests for lock instrumentation and hand-off locality analysis."""

from __future__ import annotations

import pytest

from repro.core.dmcs import DMCSLockSpec
from repro.core.instrumentation import (
    GrantLedgerSpec,
    InstrumentedLock,
    InstrumentedRWLock,
    locality_report,
)
from repro.core.rma_mcs import RMAMCSLockSpec
from repro.core.rma_rw import RMARWLockSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine


class TestGrantLedgerSpec:
    def test_layout(self):
        ledger = GrantLedgerSpec(capacity=10, base_offset=5)
        assert ledger.counter_offset == 5
        assert ledger.grants_offset == 6
        assert ledger.window_words == 16

    def test_init_only_on_home_rank(self):
        ledger = GrantLedgerSpec(capacity=4, home_rank=1)
        assert ledger.init_window(0) == {}
        init = ledger.init_window(1)
        assert init[ledger.counter_offset] == 0
        assert init[ledger.grants_offset] == -1

    def test_validation(self):
        with pytest.raises(ValueError):
            GrantLedgerSpec(capacity=0)
        with pytest.raises(ValueError):
            GrantLedgerSpec(capacity=4, home_rank=-1)


class TestLocalityReport:
    def test_empty_sequence(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        report = locality_report(machine, [])
        assert report.transitions == 0
        assert report.node_locality == 1.0

    def test_all_same_node(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        report = locality_report(machine, [0, 1, 2, 3])
        assert report.node_locality == 1.0
        assert report.same_node_transitions == 3

    def test_alternating_nodes(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        report = locality_report(machine, [0, 4, 1, 5])
        assert report.node_locality == 0.0

    def test_mixed_sequence(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        report = locality_report(machine, [0, 1, 4, 5, 6])
        assert report.same_node_transitions == 3
        assert report.transitions == 4
        assert report.node_locality == pytest.approx(0.75)

    def test_element_locality_per_level(self):
        machine = Machine.multi_rack(racks=2, nodes_per_rack=2, procs_per_node=2)
        # 0,1 node0/rack0; 2,3 node1/rack0; 4.. rack1
        report = locality_report(machine, [0, 1, 2, 4])
        assert report.element_locality(3) == pytest.approx(1 / 3)   # node level
        assert report.element_locality(2) == pytest.approx(2 / 3)   # rack level
        assert report.element_locality(1) == pytest.approx(1.0)     # whole machine

    def test_grants_per_rank_and_negatives_filtered(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        report = locality_report(machine, [0, 0, 3, -1, 3, 3])
        assert report.grants_per_rank == {0: 2, 3: 3}
        assert report.recorded_grants == 5

    def test_truncation_flag(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        report = locality_report(machine, [0, 1], total_grants=10)
        assert report.truncated

    def test_max_consecutive_same_node(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        report = locality_report(machine, [0, 1, 2, 4, 5, 0])
        assert report.max_consecutive_same_node(machine, [0, 1, 2, 4, 5, 0]) == 3


class TestInstrumentedLocks:
    def _run_instrumented(self, machine, lock_spec, iterations=3):
        ledger = GrantLedgerSpec(
            capacity=machine.num_processes * iterations, base_offset=lock_spec.window_words
        )
        rt = SimRuntime(machine, window_words=ledger.window_words)

        def window_init(rank):
            values = dict(lock_spec.init_window(rank))
            values.update(ledger.init_window(rank))
            return values

        def program(ctx):
            lock = InstrumentedLock(lock_spec.make(ctx), ledger, ctx)
            ctx.barrier()
            for _ in range(iterations):
                with lock.held():
                    ctx.compute(0.3)
            ctx.barrier()

        rt.run(program, window_init=window_init)
        grants = ledger.read_grants_from_window(rt.window(ledger.home_rank))
        return grants, ledger, rt

    def test_every_grant_recorded(self, small_cluster):
        spec = DMCSLockSpec(num_processes=small_cluster.num_processes)
        grants, ledger, rt = self._run_instrumented(small_cluster, spec, iterations=3)
        assert len(grants) == small_cluster.num_processes * 3
        assert ledger.total_grants_from_window(rt.window(0)) == len(grants)
        for rank in small_cluster.iter_ranks():
            assert grants.count(rank) == 3

    def test_locality_of_topology_aware_lock_is_at_least_oblivious(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        dmcs_grants, _, _ = self._run_instrumented(
            machine, DMCSLockSpec(num_processes=machine.num_processes), iterations=4
        )
        mcs_grants, _, _ = self._run_instrumented(
            machine, RMAMCSLockSpec(machine, t_l=(1, 8)), iterations=4
        )
        dmcs_locality = locality_report(machine, dmcs_grants).node_locality
        rma_locality = locality_report(machine, mcs_grants).node_locality
        assert rma_locality >= dmcs_locality

    def test_ledger_capacity_truncates_gracefully(self):
        machine = Machine.single_node(4)
        spec = DMCSLockSpec(num_processes=4)
        ledger = GrantLedgerSpec(capacity=5, base_offset=spec.window_words)
        rt = SimRuntime(machine, window_words=ledger.window_words)

        def window_init(rank):
            values = dict(spec.init_window(rank))
            values.update(ledger.init_window(rank))
            return values

        def program(ctx):
            lock = InstrumentedLock(spec.make(ctx), ledger, ctx)
            ctx.barrier()
            for _ in range(4):
                with lock.held():
                    pass
            ctx.barrier()
            return ledger.read_grants(ctx)

        result = rt.run(program, window_init=window_init)
        assert len(result.returns[0]) == 5
        assert ledger.total_grants_from_window(rt.window(0)) == 16

    def test_instrumented_rw_lock_records_only_writers(self, small_cluster):
        lock_spec = RMARWLockSpec(small_cluster, t_l=(2, 2), t_r=8)
        ledger = GrantLedgerSpec(capacity=64, base_offset=lock_spec.window_words)
        rt = SimRuntime(small_cluster, window_words=ledger.window_words)

        def window_init(rank):
            values = dict(lock_spec.init_window(rank))
            values.update(ledger.init_window(rank))
            return values

        writer_ranks = {0, 4}

        def program(ctx):
            lock = InstrumentedRWLock(lock_spec.make(ctx), ledger, ctx)
            ctx.barrier()
            for _ in range(3):
                if ctx.rank in writer_ranks:
                    with lock.writing():
                        ctx.compute(0.3)
                else:
                    with lock.reading():
                        ctx.compute(0.3)
            ctx.barrier()

        rt.run(program, window_init=window_init)
        grants = ledger.read_grants_from_window(rt.window(0))
        assert len(grants) == len(writer_ranks) * 3
        assert set(grants) == writer_ranks
