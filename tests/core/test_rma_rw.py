"""Tests for the RMA-RW topology-aware reader-writer lock."""

from __future__ import annotations

import pytest

from repro.core.constants import NULL_RANK
from repro.core.rma_rw import RMARWLockSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from tests.support import run_mutex_check, run_rw_check


class TestSpec:
    def test_default_t_dc_is_one_counter_per_node(self):
        machine = Machine.cluster(nodes=4, procs_per_node=8)
        spec = RMARWLockSpec(machine)
        assert spec.t_dc == 8
        assert spec.counter.counter_ranks == [0, 8, 16, 24]

    def test_default_t_dc_single_node(self):
        machine = Machine.single_node(6)
        spec = RMARWLockSpec(machine)
        assert spec.t_dc == 6
        assert spec.counter.num_counters == 1

    def test_window_words_cover_tree_and_counter(self, small_cluster):
        spec = RMARWLockSpec(small_cluster)
        assert spec.window_words == 3 * small_cluster.n_levels + 2

    def test_default_writer_threshold_is_product_of_locality(self, small_cluster):
        spec = RMARWLockSpec(small_cluster, t_l=(3, 5))
        assert spec.writer_threshold == 15

    def test_explicit_writer_threshold(self, small_cluster):
        spec = RMARWLockSpec(small_cluster, t_l=(3, 5), t_w=7)
        assert spec.writer_threshold == 7

    def test_reader_threshold_exposed(self, small_cluster):
        assert RMARWLockSpec(small_cluster, t_r=17).reader_threshold == 17

    def test_validation(self, small_cluster):
        with pytest.raises(ValueError):
            RMARWLockSpec(small_cluster, t_r=0)
        with pytest.raises(ValueError):
            RMARWLockSpec(small_cluster, t_dc=0)
        with pytest.raises(ValueError):
            RMARWLockSpec(small_cluster, t_w=0)

    def test_init_window_merges_tree_and_counter(self, small_cluster):
        spec = RMARWLockSpec(small_cluster)
        init = spec.init_window(0)
        assert init[spec.layout.tail_offset(1)] == NULL_RANK

    def test_handle_rejects_mismatched_runtime(self, small_cluster):
        spec = RMARWLockSpec(small_cluster)
        rt = SimRuntime(Machine.single_node(3), window_words=spec.window_words)
        with pytest.raises(ValueError):
            rt.run(lambda ctx: spec.make(ctx))


class TestWriterOnly:
    """With only writers RMA-RW must behave like a correct exclusive lock."""

    def test_writers_single_node(self):
        machine = Machine.single_node(5)
        spec = RMARWLockSpec(machine, t_l=(2,), t_r=8)
        outcome = run_mutex_check(spec, machine, iterations=5)
        assert outcome.ok

    def test_writers_two_levels(self, medium_cluster):
        spec = RMARWLockSpec(medium_cluster, t_l=(2, 2), t_r=8)
        outcome = run_mutex_check(spec, medium_cluster, iterations=5)
        assert outcome.ok

    def test_writers_three_levels(self, three_level_machine):
        spec = RMARWLockSpec(three_level_machine, t_l=(2, 2, 2), t_r=8)
        outcome = run_mutex_check(spec, three_level_machine, iterations=4)
        assert outcome.ok

    def test_small_writer_threshold_forces_mode_changes(self, small_cluster):
        """T_W = 1 hands the lock to (non-existent) readers after every writer."""
        spec = RMARWLockSpec(small_cluster, t_l=(2, 2), t_r=4, t_w=1)
        outcome = run_mutex_check(spec, small_cluster, iterations=4)
        assert outcome.ok


class TestReadersAndWriters:
    def test_fixed_roles_two_levels(self, medium_cluster):
        spec = RMARWLockSpec(medium_cluster, t_l=(2, 2), t_r=8)
        outcome = run_rw_check(spec, medium_cluster, iterations=5, writer_ranks=[0, 5])
        assert outcome.ok
        assert outcome.max_concurrent_readers >= 2

    def test_random_roles(self, medium_cluster):
        spec = RMARWLockSpec(medium_cluster, t_l=(2, 2), t_r=8)
        outcome = run_rw_check(spec, medium_cluster, iterations=6, fw=0.2, seed=3)
        assert outcome.ok

    def test_read_dominated_workload(self, medium_cluster):
        spec = RMARWLockSpec(medium_cluster, t_l=(2, 2), t_r=16)
        outcome = run_rw_check(spec, medium_cluster, iterations=8, fw=0.02, seed=1)
        assert outcome.ok

    def test_write_dominated_workload(self, medium_cluster):
        spec = RMARWLockSpec(medium_cluster, t_l=(2, 2), t_r=8)
        outcome = run_rw_check(spec, medium_cluster, iterations=5, fw=0.8, seed=2)
        assert outcome.ok

    def test_all_readers(self, medium_cluster):
        spec = RMARWLockSpec(medium_cluster, t_l=(2, 2), t_r=8)
        outcome = run_rw_check(spec, medium_cluster, iterations=8, writer_ranks=[])
        assert outcome.ok
        assert outcome.writes == 0
        assert outcome.max_concurrent_readers >= 2

    def test_small_reader_threshold(self, medium_cluster):
        """T_R smaller than the reader count forces frequent counter resets."""
        spec = RMARWLockSpec(medium_cluster, t_l=(2, 2), t_r=2)
        outcome = run_rw_check(spec, medium_cluster, iterations=6, writer_ranks=[0], seed=4)
        assert outcome.ok

    def test_single_physical_counter(self, medium_cluster):
        spec = RMARWLockSpec(medium_cluster, t_dc=medium_cluster.num_processes, t_l=(2, 2), t_r=8)
        outcome = run_rw_check(spec, medium_cluster, iterations=5, writer_ranks=[7])
        assert outcome.ok

    def test_counter_per_rank(self, small_cluster):
        spec = RMARWLockSpec(small_cluster, t_dc=1, t_l=(2, 2), t_r=8)
        outcome = run_rw_check(spec, small_cluster, iterations=5, writer_ranks=[3])
        assert outcome.ok

    def test_three_level_machine_mixed(self, three_level_machine):
        spec = RMARWLockSpec(three_level_machine, t_l=(2, 2, 2), t_r=8)
        outcome = run_rw_check(spec, three_level_machine, iterations=4, writer_ranks=[0, 6])
        assert outcome.ok

    def test_single_level_machine_mixed(self, single_node):
        spec = RMARWLockSpec(single_node, t_l=(3,), t_r=6)
        outcome = run_rw_check(spec, single_node, iterations=6, writer_ranks=[2])
        assert outcome.ok

    def test_on_thread_runtime(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = RMARWLockSpec(machine, t_l=(2, 2), t_r=8)
        outcome = run_rw_check(spec, machine, iterations=6, writer_ranks=[0], runtime="thread")
        assert outcome.ok

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_seed_sweep_mixed_workload(self, medium_cluster, seed):
        spec = RMARWLockSpec(medium_cluster, t_l=(2, 2), t_r=8)
        outcome = run_rw_check(spec, medium_cluster, iterations=5, fw=0.25, seed=seed)
        assert outcome.ok


class TestCounterLifecycle:
    def test_counters_return_to_read_mode_after_writer(self, medium_cluster):
        """After the last writer leaves, the counters must be reset so readers can run."""
        spec = RMARWLockSpec(medium_cluster, t_l=(2, 2), t_r=8)
        rt = SimRuntime(medium_cluster, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                lock.acquire_write()
                lock.release_write()
            ctx.barrier()
            # everyone reads afterwards; this only terminates if the counters were reset
            lock.acquire_read()
            lock.release_read()
            ctx.barrier()

        rt.run(program, window_init=spec.init_window)
        for counter in spec.counter.counter_ranks:
            window = rt.window(counter)
            arrive = window.read(spec.counter.arrive_offset)
            depart = window.read(spec.counter.depart_offset)
            assert arrive == depart  # balanced, and no WRITE flag left behind

    def test_tree_clean_after_mixed_run(self, medium_cluster):
        spec = RMARWLockSpec(medium_cluster, t_l=(2, 2), t_r=4)
        rt = SimRuntime(medium_cluster, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            for _ in range(3):
                if ctx.rank % 5 == 0:
                    lock.acquire_write()
                    lock.release_write()
                else:
                    lock.acquire_read()
                    lock.release_read()
            ctx.barrier()

        rt.run(program, window_init=spec.init_window)
        layout = spec.layout
        for level in range(1, medium_cluster.n_levels + 1):
            for element in range(medium_cluster.num_elements(level)):
                host = medium_cluster.first_rank_of_element(level, element)
                assert rt.window(host).read(layout.tail_offset(level)) == NULL_RANK
