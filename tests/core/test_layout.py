"""Tests for window layout allocation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layout import LayoutAllocator, Region


class TestRegion:
    def test_end_and_offset(self):
        region = Region(name="x", start=5, length=3)
        assert region.end == 8
        assert region.offset() == 5
        assert region.offset(2) == 7

    def test_offset_bounds(self):
        region = Region(name="x", start=5, length=3)
        with pytest.raises(IndexError):
            region.offset(3)
        with pytest.raises(IndexError):
            region.offset(-1)


class TestAllocator:
    def test_sequential_allocation(self):
        alloc = LayoutAllocator()
        a = alloc.allocate("a", 2)
        b = alloc.allocate("b", 3)
        assert (a.start, a.length) == (0, 2)
        assert (b.start, b.length) == (2, 3)
        assert alloc.total_words == 5

    def test_base_offset_respected(self):
        alloc = LayoutAllocator(base=10)
        region = alloc.allocate("a", 4)
        assert region.start == 10
        assert alloc.total_words == 14
        assert alloc.words_used == 4

    def test_field_shortcut(self):
        alloc = LayoutAllocator()
        first = alloc.field("x")
        second = alloc.field("y")
        assert (first, second) == (0, 1)

    def test_duplicate_name_rejected(self):
        alloc = LayoutAllocator()
        alloc.field("x")
        with pytest.raises(ValueError):
            alloc.field("x")

    def test_lookup_by_name(self):
        alloc = LayoutAllocator()
        alloc.allocate("a", 2)
        alloc.allocate("b", 1)
        assert alloc.region("b").start == 2
        with pytest.raises(KeyError):
            alloc.region("missing")

    def test_describe_and_regions_sorted(self):
        alloc = LayoutAllocator()
        alloc.allocate("a", 2)
        alloc.allocate("b", 1)
        assert alloc.describe() == [("a", 0, 2), ("b", 2, 1)]
        assert [r.name for r in alloc.regions()] == ["a", "b"]

    def test_invalid_length(self):
        alloc = LayoutAllocator()
        with pytest.raises(ValueError):
            alloc.allocate("a", 0)

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            LayoutAllocator(base=-1)

    @given(st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_regions_never_overlap(self, lengths):
        alloc = LayoutAllocator(base=3)
        regions = [alloc.allocate(f"r{i}", length) for i, length in enumerate(lengths)]
        covered = set()
        for region in regions:
            span = set(range(region.start, region.end))
            assert not (span & covered), "regions overlap"
            covered |= span
        assert alloc.total_words == 3 + sum(lengths)
