"""Tests for the topology-aware RMA-MCS lock."""

from __future__ import annotations

import pytest

from repro.core.constants import NULL_RANK
from repro.core.rma_mcs import RMAMCSLockSpec
from repro.core.tree import UNBOUNDED_THRESHOLD
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from tests.support import run_mutex_check


class TestSpec:
    def test_window_words_cover_all_levels(self, three_level_machine):
        spec = RMAMCSLockSpec(three_level_machine, t_l=(2, 3, 4))
        assert spec.window_words == 3 * three_level_machine.n_levels

    def test_level1_threshold_is_never_applied(self, small_cluster):
        spec = RMAMCSLockSpec(small_cluster, t_l=(5, 7))
        assert spec.locality_threshold(1) == UNBOUNDED_THRESHOLD
        assert spec.locality_threshold(2) == 7

    def test_default_thresholds_unbounded(self, small_cluster):
        spec = RMAMCSLockSpec(small_cluster)
        for level in range(1, small_cluster.n_levels + 1):
            assert spec.locality_threshold(level) == UNBOUNDED_THRESHOLD

    def test_short_threshold_form(self, three_level_machine):
        spec = RMAMCSLockSpec(three_level_machine, t_l=(3, 4))  # levels 2 and 3
        assert spec.locality_threshold(2) == 3
        assert spec.locality_threshold(3) == 4

    def test_init_window_nulls(self, small_cluster):
        spec = RMAMCSLockSpec(small_cluster)
        init = spec.init_window(0)
        for level in range(1, small_cluster.n_levels + 1):
            assert init[spec.layout.tail_offset(level)] == NULL_RANK

    def test_handle_rejects_mismatched_runtime(self, small_cluster):
        spec = RMAMCSLockSpec(small_cluster)
        rt = SimRuntime(Machine.single_node(2), window_words=spec.window_words)
        with pytest.raises(ValueError):
            rt.run(lambda ctx: spec.make(ctx))


class TestMutualExclusion:
    def test_single_node_machine(self):
        machine = Machine.single_node(5)
        outcome = run_mutex_check(RMAMCSLockSpec(machine, t_l=(3,)), machine, iterations=6)
        assert outcome.ok

    def test_two_level_machine(self, medium_cluster):
        spec = RMAMCSLockSpec(medium_cluster, t_l=(1, 3))
        outcome = run_mutex_check(spec, medium_cluster, iterations=6)
        assert outcome.ok

    def test_three_level_machine(self, three_level_machine):
        spec = RMAMCSLockSpec(three_level_machine, t_l=(2, 2, 2))
        outcome = run_mutex_check(spec, three_level_machine, iterations=5)
        assert outcome.ok

    def test_unbounded_thresholds(self, small_cluster):
        spec = RMAMCSLockSpec(small_cluster)
        outcome = run_mutex_check(spec, small_cluster, iterations=5)
        assert outcome.ok

    def test_threshold_of_one_forces_fair_handovers(self, small_cluster):
        spec = RMAMCSLockSpec(small_cluster, t_l=(1, 1))
        outcome = run_mutex_check(spec, small_cluster, iterations=5)
        assert outcome.ok

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_various_seeds(self, medium_cluster, seed):
        spec = RMAMCSLockSpec(medium_cluster, t_l=(2, 4))
        outcome = run_mutex_check(spec, medium_cluster, iterations=4, seed=seed)
        assert outcome.ok

    def test_on_thread_runtime(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = RMAMCSLockSpec(machine, t_l=(2, 2))
        outcome = run_mutex_check(spec, machine, iterations=8, runtime="thread")
        assert outcome.ok

    def test_four_level_machine(self):
        machine = Machine(fanouts=(2, 2, 2), procs_per_leaf=2)
        spec = RMAMCSLockSpec(machine, t_l=(2, 2, 2, 2))
        outcome = run_mutex_check(spec, machine, iterations=4)
        assert outcome.ok


class TestTopologyAwareness:
    def test_queue_state_clean_after_run(self, medium_cluster):
        spec = RMAMCSLockSpec(medium_cluster, t_l=(2, 2))
        rt = SimRuntime(medium_cluster, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            for _ in range(4):
                lock.acquire()
                lock.release()
            ctx.barrier()

        rt.run(program, window_init=spec.init_window)
        layout = spec.layout
        for level in range(1, medium_cluster.n_levels + 1):
            for element in range(medium_cluster.num_elements(level)):
                host = medium_cluster.first_rank_of_element(level, element)
                assert rt.window(host).read(layout.tail_offset(level)) == NULL_RANK

    def test_locality_reduces_cross_node_handoffs(self):
        """With a large node-level threshold the lock stays inside a node longer.

        We measure the number of consecutive same-node grants: with T_L,2 = 1
        the lock must leave the node after every grant whenever another node
        is waiting, so high-locality runs should see at least as many
        consecutive same-node grants as fairness-first runs.
        """
        machine = Machine.cluster(nodes=2, procs_per_node=4)

        def count_same_node_runs(t_l2: int) -> int:
            spec = RMAMCSLockSpec(machine, t_l=(1, t_l2))
            order_off = spec.window_words
            ticket_off = spec.window_words + 63
            rt = SimRuntime(machine, window_words=spec.window_words + 64)

            def program(ctx):
                from repro.rma.ops import AtomicOp

                lock = spec.make(ctx)
                ctx.barrier()
                for _ in range(4):
                    lock.acquire()
                    ticket = ctx.fao(1, 0, ticket_off, AtomicOp.SUM)
                    ctx.put(ctx.rank, 0, order_off + ticket)
                    ctx.flush(0)
                    lock.release()
                ctx.barrier()

            rt.run(program, window_init=spec.init_window)
            grants = [rt.window(0).read(order_off + i) for i in range(machine.num_processes * 4)]
            same_node = 0
            for a, b in zip(grants, grants[1:]):
                if machine.node_of(a) == machine.node_of(b):
                    same_node += 1
            return same_node

        assert count_same_node_runs(8) >= count_same_node_runs(1)

    def test_topology_aware_lock_beats_oblivious_on_hierarchy(self):
        """RMA-MCS should not be slower than D-MCS once several nodes contend."""
        from repro.core.dmcs import DMCSLockSpec

        machine = Machine.cluster(nodes=4, procs_per_node=4)
        mcs = run_mutex_check(RMAMCSLockSpec(machine, t_l=(1, 4)), machine, iterations=6)
        dmcs = run_mutex_check(DMCSLockSpec(num_processes=machine.num_processes), machine, iterations=6)
        assert mcs.ok and dmcs.ok
        assert mcs.total_time_us <= dmcs.total_time_us * 1.5
