"""Sanity checks on the protocol constants."""

from __future__ import annotations

from repro.core.constants import (
    ACQUIRE_START,
    NULL_RANK,
    STATUS_ACQUIRE_PARENT,
    STATUS_MODE_CHANGE,
    STATUS_WAIT,
    WRITE_FLAG,
    is_count_status,
)


def test_null_rank_cannot_collide_with_real_ranks():
    assert NULL_RANK < 0


def test_special_status_values_are_distinct_and_not_counts():
    specials = {STATUS_WAIT, STATUS_ACQUIRE_PARENT, STATUS_MODE_CHANGE}
    assert len(specials) == 3
    for value in specials:
        assert not is_count_status(value)


def test_acquire_start_is_a_count():
    assert is_count_status(ACQUIRE_START)
    assert ACQUIRE_START == 0


def test_counts_are_recognized():
    assert is_count_status(0)
    assert is_count_status(1)
    assert is_count_status(10_000)
    assert not is_count_status(-1)


def test_write_flag_dominates_any_realistic_reader_count():
    # far above any plausible T_R or process count, far below int64 overflow
    assert WRITE_FLAG > 10**9
    assert WRITE_FLAG * 4 < 2**63 - 1
