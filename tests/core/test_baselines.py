"""Tests for the centralized baseline locks (foMPI-Spin and foMPI-RW stand-ins)."""

from __future__ import annotations

import pytest

from repro.core.baselines import FompiRWLockSpec, FompiSpinLockSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from tests.support import run_mutex_check, run_rw_check


class TestSpinLockSpec:
    def test_layout(self):
        spec = FompiSpinLockSpec(num_processes=4)
        assert spec.window_words == 1
        spec_shifted = FompiSpinLockSpec(num_processes=4, base_offset=7)
        assert spec_shifted.lock_offset == 7

    def test_init_window_only_on_home(self):
        spec = FompiSpinLockSpec(num_processes=4, home_rank=2)
        assert spec.init_window(2) == {spec.lock_offset: 0}
        assert spec.init_window(0) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            FompiSpinLockSpec(num_processes=0)
        with pytest.raises(ValueError):
            FompiSpinLockSpec(num_processes=4, home_rank=9)

    def test_handle_rejects_wrong_runtime_size(self):
        spec = FompiSpinLockSpec(num_processes=8)
        rt = SimRuntime(Machine.single_node(2), window_words=2)
        with pytest.raises(ValueError):
            rt.run(lambda ctx: spec.make(ctx))


class TestSpinLockBehaviour:
    def test_mutual_exclusion_single_node(self):
        machine = Machine.single_node(5)
        outcome = run_mutex_check(FompiSpinLockSpec(num_processes=5), machine, iterations=6)
        assert outcome.ok

    def test_mutual_exclusion_multi_node(self, medium_cluster):
        spec = FompiSpinLockSpec(num_processes=medium_cluster.num_processes)
        outcome = run_mutex_check(spec, medium_cluster, iterations=5)
        assert outcome.ok

    def test_mutual_exclusion_on_threads(self):
        machine = Machine.single_node(4)
        outcome = run_mutex_check(FompiSpinLockSpec(num_processes=4), machine, iterations=10, runtime="thread")
        assert outcome.ok

    def test_non_default_home_rank(self, small_cluster):
        spec = FompiSpinLockSpec(num_processes=small_cluster.num_processes, home_rank=4)
        outcome = run_mutex_check(spec, small_cluster, iterations=4)
        assert outcome.ok

    def test_lock_word_free_after_run(self, small_cluster):
        spec = FompiSpinLockSpec(num_processes=small_cluster.num_processes)
        rt = SimRuntime(small_cluster, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            lock.acquire()
            lock.release()

        rt.run(program, window_init=spec.init_window)
        assert rt.window(0).read(spec.lock_offset) == 0


class TestRWLockSpec:
    def test_layout_and_init(self):
        spec = FompiRWLockSpec(num_processes=4)
        assert spec.window_words == 1
        assert spec.init_window(0) == {spec.word_offset: 0}
        assert spec.init_window(3) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            FompiRWLockSpec(num_processes=0)
        with pytest.raises(ValueError):
            FompiRWLockSpec(num_processes=2, home_rank=2)


class TestRWLockBehaviour:
    def test_writer_exclusion_and_reader_concurrency(self, small_cluster):
        spec = FompiRWLockSpec(num_processes=small_cluster.num_processes)
        outcome = run_rw_check(spec, small_cluster, iterations=6, writer_ranks=[0, 4])
        assert outcome.ok
        assert outcome.max_concurrent_readers >= 2  # readers really overlap

    def test_all_readers(self, small_cluster):
        spec = FompiRWLockSpec(num_processes=small_cluster.num_processes)
        outcome = run_rw_check(spec, small_cluster, iterations=6, writer_ranks=[])
        assert outcome.ok
        assert outcome.writes == 0

    def test_all_writers(self, small_cluster):
        spec = FompiRWLockSpec(num_processes=small_cluster.num_processes)
        outcome = run_rw_check(
            spec, small_cluster, iterations=4, writer_ranks=list(small_cluster.iter_ranks())
        )
        assert outcome.ok
        assert outcome.reads == 0

    def test_random_roles(self, small_cluster):
        spec = FompiRWLockSpec(num_processes=small_cluster.num_processes)
        outcome = run_rw_check(spec, small_cluster, iterations=6, fw=0.3, seed=5)
        assert outcome.ok
        assert outcome.reads + outcome.writes == outcome.expected_acquisitions

    def test_on_thread_runtime(self):
        machine = Machine.single_node(4)
        spec = FompiRWLockSpec(num_processes=4)
        outcome = run_rw_check(spec, machine, iterations=8, writer_ranks=[0], runtime="thread")
        assert outcome.ok

    def test_word_clean_after_run(self, small_cluster):
        spec = FompiRWLockSpec(num_processes=small_cluster.num_processes)
        rt = SimRuntime(small_cluster, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank % 2 == 0:
                lock.acquire_write()
                lock.release_write()
            else:
                lock.acquire_read()
                lock.release_read()

        rt.run(program, window_init=spec.init_window)
        assert rt.window(0).read(spec.word_offset) == 0
