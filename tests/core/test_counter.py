"""Tests for the distributed counter (DC)."""

from __future__ import annotations

import pytest

from repro.core.constants import WRITE_FLAG
from repro.core.counter import DistributedCounterHandle, DistributedCounterSpec
from repro.core.layout import LayoutAllocator
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from repro.topology.mapping import CounterPlacement


def make_spec(machine: Machine, t_dc: int) -> DistributedCounterSpec:
    placement = CounterPlacement(t_dc=t_dc, num_processes=machine.num_processes)
    return DistributedCounterSpec.allocate(placement, LayoutAllocator())


class TestSpec:
    def test_counter_ranks_follow_placement(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        spec = make_spec(machine, t_dc=4)
        assert spec.counter_ranks == [0, 4]
        assert spec.num_counters == 2
        assert spec.counter_rank_of(6) == 4

    def test_offsets_are_distinct(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        spec = make_spec(machine, t_dc=4)
        assert spec.arrive_offset != spec.depart_offset

    def test_init_window_is_empty(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        spec = make_spec(machine, t_dc=4)
        assert dict(spec.init_window(0)) == {}


class TestReaderSide:
    def test_arrive_and_depart_update_local_counter(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        spec = make_spec(machine, t_dc=4)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            dc = spec.make(ctx)
            prev = dc.reader_arrive()
            dc.reader_depart()
            return prev

        rt.run(program)
        # each physical counter served 4 local readers
        for counter in spec.counter_ranks:
            w = rt.window(counter)
            assert w.read(spec.arrive_offset) == 4
            assert w.read(spec.depart_offset) == 4

    def test_reader_backoff_undoes_arrival(self):
        machine = Machine.single_node(3)
        spec = make_spec(machine, t_dc=3)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            dc = spec.make(ctx)
            dc.reader_arrive()
            dc.reader_backoff()

        rt.run(program)
        assert rt.window(0).read(spec.arrive_offset) == 0

    def test_arrive_returns_previous_value(self):
        machine = Machine.single_node(1)
        spec = make_spec(machine, t_dc=1)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            dc = spec.make(ctx)
            return [dc.reader_arrive() for _ in range(3)]

        result = rt.run(program)
        assert result.returns[0] == [0, 1, 2]

    def test_read_my_arrivals(self):
        machine = Machine.single_node(2)
        spec = make_spec(machine, t_dc=2)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            dc = spec.make(ctx)
            dc.reader_arrive()
            ctx.barrier()
            return dc.read_my_arrivals()

        result = rt.run(program)
        assert result.returns == [2, 2]


class TestWriterSide:
    def test_set_counters_to_write_marks_every_counter(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        spec = make_spec(machine, t_dc=4)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            if ctx.rank == 0:
                spec.make(ctx).set_counters_to_write()

        rt.run(program)
        for counter in spec.counter_ranks:
            assert rt.window(counter).read(spec.arrive_offset) >= WRITE_FLAG

    def test_reset_counter_clears_flag_and_balances(self):
        machine = Machine.single_node(4)
        spec = make_spec(machine, t_dc=4)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            dc = spec.make(ctx)
            if ctx.rank != 0:
                dc.reader_arrive()
                dc.reader_depart()
            ctx.barrier()
            if ctx.rank == 0:
                dc.set_counters_to_write()
                dc.wait_readers_drained()
                dc.reset_counters()

        rt.run(program)
        w = rt.window(0)
        assert w.read(spec.arrive_offset) == 0
        assert w.read(spec.depart_offset) == 0

    def test_wait_readers_drained_blocks_until_departure(self):
        machine = Machine.single_node(2)
        spec = make_spec(machine, t_dc=2)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            dc = spec.make(ctx)
            if ctx.rank == 1:
                dc.reader_arrive()
                ctx.barrier()
                ctx.compute(25.0)
                dc.reader_depart()
                return None
            ctx.barrier()
            dc.set_counters_to_write()
            start = ctx.now()
            dc.wait_readers_drained()
            return ctx.now() - start

        result = rt.run(program)
        assert result.returns[0] > 0  # the writer had to wait for the reader

    def test_active_readers_helper(self):
        assert DistributedCounterHandle._active_readers(5, 3) == 2
        assert DistributedCounterHandle._active_readers(WRITE_FLAG + 5, 5) == 0
        assert DistributedCounterHandle._active_readers(WRITE_FLAG, 0) == 0

    def test_snapshot_reports_all_counters(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = make_spec(machine, t_dc=2)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            dc = spec.make(ctx)
            dc.reader_arrive()
            ctx.barrier()
            if ctx.rank == 0:
                return dc.snapshot()
            return None

        result = rt.run(program)
        snapshot = result.returns[0]
        assert set(snapshot) == {0, 2}
        assert snapshot[0]["arrive"] == 2
