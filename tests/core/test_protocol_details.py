"""White-box tests of protocol details that the black-box checks cannot see.

These tests look inside the window state between protocol steps to pin down
behaviours the paper describes in prose: the shortcut that lets a writer skip
tree levels, the ``ACQUIRE_PARENT`` hand-over when a locality threshold is
reached, the WRITE flag life cycle of the distributed counter, and the
``T_W`` hand-over from writers to readers.
"""

from __future__ import annotations

import pytest

from repro.core.constants import NULL_RANK, STATUS_MODE_CHANGE, WRITE_FLAG
from repro.core.rma_mcs import RMAMCSLockSpec
from repro.core.rma_rw import RMARWLockSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from tests.support import run_rw_check


class TestShortcutAndClimb:
    def test_intra_node_passing_uses_the_shortcut(self):
        """With a large T_L, a waiting same-node writer receives the lock directly
        (its leaf STATUS carries a passing count, never ACQUIRE_PARENT)."""
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = RMAMCSLockSpec(machine, t_l=(1, 8))
        rt = SimRuntime(machine, window_words=spec.window_words + 2)
        status_seen_off = spec.window_words

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank in (0, 1):  # same node; rank 1 arrives while 0 holds the lock
                if ctx.rank == 0:
                    lock.acquire()
                    ctx.compute(20.0)
                    lock.release()
                else:
                    ctx.compute(5.0)  # arrive strictly after rank 0 acquired
                    lock.acquire()
                    status = ctx.get(ctx.rank, spec.layout.status_offset(2))
                    ctx.flush(ctx.rank)
                    ctx.put(status, 0, status_seen_off)
                    ctx.flush(0)
                    lock.release()
            ctx.barrier()

        rt.run(program, window_init=spec.init_window)
        # rank 1's leaf status was a passing count (>= 1), i.e. the shortcut fired
        assert rt.window(0).read(status_seen_off) >= 1

    def test_locality_threshold_one_forces_climb(self):
        """With T_L,leaf = 1, only one intra-node pass is allowed.

        Three same-node writers queue up: the first climbs, the second receives
        the single allowed shortcut pass (count 1), and the third must be told
        to acquire the parent level itself (its leaf STATUS is ACQUIRE_START
        when it finally holds the lock).
        """
        machine = Machine.cluster(nodes=2, procs_per_node=3)
        spec = RMAMCSLockSpec(machine, t_l=(1, 1))
        rt = SimRuntime(machine, window_words=spec.window_words + 4)
        second_status_off = spec.window_words
        third_status_off = spec.window_words + 1

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                lock.acquire()
                ctx.compute(40.0)
                lock.release()
            elif ctx.rank == 1:
                ctx.compute(5.0)
                lock.acquire()
                status = ctx.get(ctx.rank, spec.layout.status_offset(2))
                ctx.flush(ctx.rank)
                ctx.put(status, 0, second_status_off)
                ctx.flush(0)
                lock.release()
            elif ctx.rank == 2:
                ctx.compute(10.0)
                lock.acquire()
                status = ctx.get(ctx.rank, spec.layout.status_offset(2))
                ctx.flush(ctx.rank)
                ctx.put(status, 0, third_status_off)
                ctx.flush(0)
                lock.release()
            ctx.barrier()

        rt.run(program, window_init=spec.init_window)
        assert rt.window(0).read(second_status_off) == 1   # the one allowed pass
        assert rt.window(0).read(third_status_off) == 0    # ACQUIRE_START: it climbed


class TestCounterLifeCycle:
    def test_write_flag_present_while_writer_in_cs(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = RMARWLockSpec(machine, t_l=(2, 2), t_r=8)
        rt = SimRuntime(machine, window_words=spec.window_words + 2)
        flag_seen_off = spec.window_words

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                lock.acquire_write()
                flagged = 1
                for counter in spec.counter.counter_ranks:
                    arrive = ctx.get(counter, spec.counter.arrive_offset)
                    ctx.flush(counter)
                    if arrive < WRITE_FLAG:
                        flagged = 0
                ctx.put(flagged, 0, flag_seen_off)
                ctx.flush(0)
                lock.release_write()
            ctx.barrier()

        rt.run(program, window_init=spec.init_window)
        assert rt.window(0).read(flag_seen_off) == 1
        # after release the flag must be gone from every counter
        for counter in spec.counter.counter_ranks:
            assert rt.window(counter).read(spec.counter.arrive_offset) < WRITE_FLAG

    def test_writer_threshold_hands_lock_to_readers(self):
        """With T_W = 1 every root release resets the counters (mode change)."""
        machine = Machine.single_node(3)
        spec = RMARWLockSpec(machine, t_l=(4,), t_r=8, t_w=1)
        rt = SimRuntime(machine, window_words=spec.window_words + 2)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                lock.acquire_write()
                lock.release_write()
            ctx.barrier()
            # a reader can get in immediately afterwards: counters were reset
            lock.acquire_read()
            lock.release_read()
            ctx.barrier()

        rt.run(program, window_init=spec.init_window)
        counter = spec.counter.counter_ranks[0]
        window = rt.window(counter)
        assert window.read(spec.counter.arrive_offset) < WRITE_FLAG

    def test_mode_change_notification_reaches_successor_writer(self):
        """When T_W is reached with a waiting writer, the successor receives MODE_CHANGE
        and must win the lock back from the readers — both writers still succeed."""
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = RMARWLockSpec(machine, t_l=(1, 1), t_r=4, t_w=1)
        rt = SimRuntime(machine, window_words=spec.window_words + 2)
        done_off = spec.window_words

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank in (0, 2):  # writers on different nodes
                lock.acquire_write()
                ctx.compute(5.0)
                ctx.accumulate(1, 0, done_off)
                ctx.flush(0)
                lock.release_write()
            ctx.barrier()

        rt.run(program, window_init=spec.init_window)
        assert rt.window(0).read(done_off) == 2
        assert STATUS_MODE_CHANGE < 0  # sanity: sentinel kept distinct from counts


class TestStrandedCounterRecovery:
    """Liveness of saturated readers when the counter-reset race leaves a residue.

    The reset of Listing 6 is not atomic: a reader departure that lands between
    the reset's reads and its accumulates survives as a DEPART residue that
    keeps ARRIVE above T_R forever, stranding every reader of that counter
    (DESIGN.md section 7.4).  These tests pin the falsifying example Hypothesis
    found and exercise the recovery path directly.
    """

    def test_hypothesis_falsifying_example_stays_live(self):
        """Pure readers, one shared counter, T_R smaller than the reader count."""
        machine = Machine.cluster(nodes=3, procs_per_node=2)
        spec = RMARWLockSpec(machine, t_dc=6, t_l=(2, 1), t_r=2)
        outcome = run_rw_check(spec, machine, iterations=3, fw=0.0, seed=0)
        assert outcome.ok, outcome

    def test_many_readers_tiny_threshold_many_iterations(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        spec = RMARWLockSpec(machine, t_dc=machine.num_processes, t_l=(2, 2), t_r=1)
        outcome = run_rw_check(spec, machine, iterations=5, fw=0.0, seed=3)
        assert outcome.ok, outcome

    def test_recovery_resets_a_stranded_counter(self):
        """A reader parked on a stranded counter resets it and proceeds."""
        machine = Machine.single_node(2)
        spec = RMARWLockSpec(machine, t_dc=2, t_l=(4,), t_r=2)
        runtime = SimRuntime(machine, window_words=spec.window_words, seed=1)

        def window_init(rank):
            values = dict(spec.init_window(rank))
            if rank == 0:
                # Craft the stranded state: ARRIVE stuck above T_R with a DEPART
                # residue and no active readers (arrive - depart == 0).
                values[spec.counter.arrive_offset] = 3
                values[spec.counter.depart_offset] = 3
            return values

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 1:
                with lock.reading():
                    ctx.compute(0.2)
            ctx.barrier()

        runtime.run(program, window_init=window_init)
        window = runtime.window(0)
        arrive = window.read(spec.counter.arrive_offset)
        depart = window.read(spec.counter.depart_offset)
        assert arrive - depart == 0
        assert arrive <= 2

    def test_recovery_defers_to_write_mode(self):
        """A counter in WRITE mode is left to the writer even when drained."""
        from repro.core.constants import WRITE_FLAG

        machine = Machine.single_node(2)
        spec = RMARWLockSpec(machine, t_dc=2, t_l=(4,), t_r=2)
        runtime = SimRuntime(machine, window_words=spec.window_words + 1, seed=2)
        flag_off = spec.window_words

        def window_init(rank):
            values = dict(spec.init_window(rank))
            if rank == 0:
                values[spec.counter.arrive_offset] = WRITE_FLAG
            return values

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 1:
                # The reader must wait until rank 0 (standing in for the writer
                # releasing the lock) resets the counter.
                with lock.reading():
                    observed = ctx.get(0, flag_off)
                    ctx.flush(0)
                    return observed
            # Rank 0 plays the writer's release: set the marker, then reset.
            ctx.compute(5.0)
            ctx.put(1, 0, flag_off)
            ctx.flush(0)
            lock.counter_handle.reset_counters()
            return None

        result = runtime.run(program, window_init=window_init)
        # The reader only entered after the counter was reset, i.e. it saw the marker.
        assert result.returns[1] == 1
