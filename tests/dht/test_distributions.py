"""Tests for the key-distribution samplers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.distributions import DISTRIBUTIONS, KeyDistribution


def _rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)


class TestConstruction:
    def test_known_names_only(self):
        with pytest.raises(ValueError):
            KeyDistribution.make("pareto", 1024)
        for name in DISTRIBUTIONS:
            dist = KeyDistribution.make(name, 1024)
            assert dist.name == name

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            KeyDistribution.make("uniform", 0)
        with pytest.raises(ValueError):
            KeyDistribution.make("zipfian", 1024, zipf_exponent=0.0)
        with pytest.raises(ValueError):
            KeyDistribution.make("hotspot", 1024, hot_fraction=0.0)
        with pytest.raises(ValueError):
            KeyDistribution.make("hotspot", 1024, hot_access_fraction=1.5)

    def test_distinct_keys_clamped_to_key_space(self):
        dist = KeyDistribution.make("zipfian", 16, distinct_keys=1000)
        assert dist.distinct_keys == 16

    def test_describe_mentions_name(self):
        assert "zipfian" in KeyDistribution.make("zipfian", 256).describe()
        assert "uniform" in KeyDistribution.make("uniform", 256).describe()


class TestSampling:
    @pytest.mark.parametrize("name", DISTRIBUTIONS)
    def test_samples_stay_in_key_space(self, name):
        dist = KeyDistribution.make(name, key_space=500, distinct_keys=64)
        keys = dist.sample(_rng(), 2000)
        assert keys.dtype == np.int64
        assert keys.min() >= 0
        assert keys.max() < 500

    def test_sample_zero_and_negative_size(self):
        dist = KeyDistribution.make("uniform", 100)
        assert dist.sample(_rng(), 0).size == 0
        with pytest.raises(ValueError):
            dist.sample(_rng(), -1)

    def test_sampling_is_deterministic_per_seed(self):
        dist = KeyDistribution.make("zipfian", 1 << 20)
        a = dist.sample(_rng(3), 100)
        b = dist.sample(_rng(3), 100)
        c = dist.sample(_rng(4), 100)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_sample_one_returns_python_int(self):
        dist = KeyDistribution.make("hotspot", 1024)
        value = dist.sample_one(_rng())
        assert isinstance(value, int)
        assert 0 <= value < 1024

    def test_zipfian_is_skewed_towards_the_hottest_key(self):
        dist = KeyDistribution.make("zipfian", 1 << 16, distinct_keys=256, zipf_exponent=1.1)
        keys = dist.sample(_rng(1), 20_000)
        hottest = dist.hottest_keys(1)[0]
        hottest_share = float(np.mean(keys == hottest))
        # The top key of a Zipf(1.1) over 256 keys receives well over 10% of accesses.
        assert hottest_share > 0.10

    def test_uniform_is_not_skewed(self):
        dist = KeyDistribution.make("uniform", 1 << 16)
        keys = dist.sample(_rng(1), 20_000)
        _, counts = np.unique(keys, return_counts=True)
        assert counts.max() <= 10  # no key dominates a uniform draw over 65k keys

    def test_hotspot_hot_set_receives_requested_share(self):
        dist = KeyDistribution.make(
            "hotspot", 1 << 16, distinct_keys=200, hot_fraction=0.05, hot_access_fraction=0.8
        )
        keys = dist.sample(_rng(2), 20_000)
        hot_keys = set(int(k) for k in dist.hottest_keys(10))
        hot_share = float(np.mean([int(k) in hot_keys for k in keys]))
        assert 0.7 < hot_share < 0.9

    def test_hottest_keys_requires_positive_count(self):
        dist = KeyDistribution.make("zipfian", 1024)
        with pytest.raises(ValueError):
            dist.hottest_keys(0)

    @settings(max_examples=30, deadline=None)
    @given(
        name=st.sampled_from(DISTRIBUTIONS),
        key_space=st.integers(1, 1 << 20),
        size=st.integers(0, 200),
        seed=st.integers(0, 1000),
    )
    def test_samples_always_within_bounds(self, name, key_space, size, seed):
        dist = KeyDistribution.make(name, key_space, distinct_keys=128)
        keys = dist.sample(_rng(seed), size)
        assert keys.size == size
        if size:
            assert keys.min() >= 0
            assert keys.max() < key_space
