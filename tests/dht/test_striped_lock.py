"""Tests for the striped (per-volume) reader-writer locks.

The protocol tests are parametrized over both deterministic schedulers
(ISSUE 4 satellite): the striped lock was previously only exercised through
the DHT workload on the default runtime.
"""

from __future__ import annotations

import pytest

from repro.api.registry import get_runtime
from repro.dht.striped_lock import StripeBoundRWLockSpec, StripedRWLockSpec
from repro.dht.workload import DHTWorkloadConfig, run_dht_benchmark
from repro.rma.ops import AtomicOp
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine

SCHEDULERS = ("horizon", "baseline")


def make_runtime(scheduler: str, machine, **kwargs):
    return get_runtime(scheduler).factory(machine, **kwargs)


class TestStripedRWLockSpec:
    def test_one_word_per_rank(self):
        spec = StripedRWLockSpec(num_processes=4)
        assert spec.window_words == 1
        assert spec.num_stripes == 4
        assert spec.init_window(2) == {spec.word_offset: 0}

    def test_base_offset_is_respected(self):
        spec = StripedRWLockSpec(num_processes=4, base_offset=7)
        assert spec.word_offset == 7
        assert spec.window_words == 8

    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError):
            StripedRWLockSpec(num_processes=0)

    def test_handle_validates_volume_range(self):
        machine = Machine.single_node(2)
        spec = StripedRWLockSpec(num_processes=2)
        runtime = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            lock = spec.make(ctx)
            with pytest.raises(ValueError):
                lock.acquire_read(5)
            with pytest.raises(ValueError):
                lock.release_write(-1)

        runtime.run(program, window_init=spec.init_window)


@pytest.mark.parametrize("scheduler", SCHEDULERS)
class TestStripedRWLockProtocol:
    def test_writers_on_one_stripe_are_exclusive(self, scheduler):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = StripedRWLockSpec(num_processes=machine.num_processes)
        shared = spec.window_words
        runtime = make_runtime(scheduler, machine, window_words=spec.window_words + 1, seed=1)
        iterations = 4

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            for _ in range(iterations):
                with lock.writing(0):
                    value = ctx.get(0, shared)
                    ctx.flush(0)
                    ctx.put(value + 1, 0, shared)
                    ctx.flush(0)
            ctx.barrier()

        runtime.run(program, window_init=spec.init_window)
        assert runtime.window(0).read(shared) == machine.num_processes * iterations

    def test_different_stripes_do_not_exclude_each_other(self, scheduler):
        machine = Machine.single_node(2)
        spec = StripedRWLockSpec(num_processes=2)
        flag = spec.window_words
        runtime = make_runtime(scheduler, machine, window_words=spec.window_words + 1, seed=2)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                with lock.writing(0):
                    # Wait for rank 1 to prove it entered stripe 1 concurrently.
                    ctx.spin_while(0, flag, lambda v: v == 0)
                return None
            with lock.writing(1):
                observed_holder_elsewhere = True
                ctx.put(1, 0, flag)
                ctx.flush(0)
            return observed_holder_elsewhere

        result = runtime.run(program, window_init=spec.init_window)
        assert result.returns[1] is True

    def test_readers_share_a_stripe_and_block_writers(self, scheduler):
        machine = Machine.single_node(3)
        spec = StripedRWLockSpec(num_processes=3)
        inside_flag = spec.window_words       # count of readers currently inside stripe 0
        done_flag = spec.window_words + 1     # count of readers that finished
        runtime = make_runtime(scheduler, machine, window_words=spec.window_words + 2, seed=3)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            if ctx.rank == 0:
                # Writer: enter stripe 0 only after both readers finished.
                ctx.spin_while(0, done_flag, lambda v: v < 2)
                with lock.writing(0):
                    still_inside = ctx.get(0, inside_flag)
                    ctx.flush(0)
                    return still_inside
            with lock.reading(0):
                seen = ctx.fao(1, 0, inside_flag, AtomicOp.SUM) + 1
                ctx.flush(0)
                # Wait inside the stripe until the other reader has also entered:
                # proves that two readers share one stripe concurrently.
                ctx.spin_while(0, inside_flag, lambda v: v < 2)
                ctx.accumulate(-1, 0, inside_flag, AtomicOp.SUM)
                ctx.flush(0)
            ctx.accumulate(1, 0, done_flag, AtomicOp.SUM)
            ctx.flush(0)
            return seen

        result = runtime.run(program, window_init=spec.init_window)
        # Each reader observed itself inside the stripe, both completed (so two
        # readers coexisted), and the writer found no reader left inside.
        assert sorted(r for r in result.returns[1:]) == [1, 2] or all(
            r in (1, 2) for r in result.returns[1:]
        )
        assert result.returns[0] == 0


class TestStripeBoundAdapter:
    """The conformance adapter: one stripe exposed as a plain RW lock."""

    def test_registry_exposes_the_adapter(self):
        from repro.api.registry import get_scheme

        info = get_scheme("striped-rw")
        assert not info.harness
        assert info.conformance_adapter is not None
        machine = Machine.single_node(4)
        spec = info.conformance_adapter(machine)
        assert isinstance(spec, StripeBoundRWLockSpec)
        assert spec.volume == 0
        assert spec.window_words == 1

    def test_adapter_rejects_out_of_range_volume(self):
        inner = StripedRWLockSpec(num_processes=2)
        with pytest.raises(ValueError):
            StripeBoundRWLockSpec(inner=inner, volume=5)

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_adapter_is_mutually_exclusive_on_its_stripe(self, scheduler):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = StripeBoundRWLockSpec(
            inner=StripedRWLockSpec(num_processes=machine.num_processes)
        )
        shared = spec.window_words
        runtime = make_runtime(scheduler, machine, window_words=spec.window_words + 1, seed=4)
        iterations = 3

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            for _ in range(iterations):
                with lock.writing():
                    value = ctx.get(0, shared)
                    ctx.flush(0)
                    ctx.put(value + 1, 0, shared)
                    ctx.flush(0)
            ctx.barrier()

        runtime.run(program, window_init=spec.init_window)
        assert runtime.window(0).read(shared) == machine.num_processes * iterations

    def test_adapter_runs_under_the_benchmark_harness(self):
        """harness=False + adapter: build_lock_spec produces the facade."""
        from repro.bench.harness import build_lock_spec, run_lock_benchmark
        from repro.bench.workloads import LockBenchConfig

        machine = Machine.cluster(nodes=2, procs_per_node=2)
        config = LockBenchConfig(
            machine=machine, scheme="striped-rw", benchmark="wcsb",
            iterations=3, fw=0.3, seed=6,
        )
        spec, is_rw = build_lock_spec(config)
        assert isinstance(spec, StripeBoundRWLockSpec)
        assert is_rw
        result = run_lock_benchmark(config)
        assert result.total_acquires == machine.num_processes * 3


class TestStripedSchemeInWorkload:
    def test_striped_scheme_runs_by_key(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        config = DHTWorkloadConfig(
            machine=machine,
            scheme="striped-rw",
            ops_per_process=5,
            fw=0.3,
            access_pattern="by-key",
            distribution="zipfian",
            distinct_keys=64,
            seed=21,
        )
        outcome = run_dht_benchmark(config)
        assert outcome.total_ops == machine.num_processes * 5
        assert outcome.scheme == "striped-rw"

    def test_striped_scheme_runs_victim_pattern(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        config = DHTWorkloadConfig(
            machine=machine, scheme="striped-rw", ops_per_process=4, fw=0.5, seed=22
        )
        outcome = run_dht_benchmark(config)
        assert outcome.total_ops == (machine.num_processes - 1) * 4
