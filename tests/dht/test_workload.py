"""Tests for the DHT workload generator and Figure 6 benchmark driver."""

from __future__ import annotations

import pytest

from repro.dht.workload import DHTWorkloadConfig, build_dht_setup, run_dht_benchmark
from repro.topology.machine import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine.cluster(nodes=2, procs_per_node=4)


class TestConfig:
    def test_validation(self, machine):
        with pytest.raises(ValueError):
            DHTWorkloadConfig(machine=machine, fw=1.5)
        with pytest.raises(ValueError):
            DHTWorkloadConfig(machine=machine, ops_per_process=0)
        with pytest.raises(ValueError):
            DHTWorkloadConfig(machine=machine, victim_rank=99)

    def test_unknown_scheme_rejected_at_build(self, machine):
        config = DHTWorkloadConfig(machine=machine, scheme="bogus")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            build_dht_setup(config)


class TestSetup:
    def test_lock_and_dht_regions_do_not_overlap(self, machine):
        config = DHTWorkloadConfig(machine=machine, scheme="rma-rw", t_l=(2, 2))
        dht_spec, lock_spec, _ = build_dht_setup(config)
        assert lock_spec is not None
        assert dht_spec.base_offset >= lock_spec.window_words

    def test_fompi_a_has_no_lock(self, machine):
        config = DHTWorkloadConfig(machine=machine, scheme="fompi-a")
        dht_spec, lock_spec, _ = build_dht_setup(config)
        assert lock_spec is None
        assert dht_spec.base_offset == 0

    def test_heap_sized_for_worst_case(self, machine):
        config = DHTWorkloadConfig(machine=machine, scheme="fompi-a", ops_per_process=10)
        dht_spec, _, _ = build_dht_setup(config)
        assert dht_spec.heap_size >= (machine.num_processes - 1) * 10

    def test_window_init_combines_lock_and_dht(self, machine):
        config = DHTWorkloadConfig(machine=machine, scheme="fompi-rw")
        dht_spec, lock_spec, window_init = build_dht_setup(config)
        values = window_init(0)
        assert dht_spec.bucket_offset(0) in values
        assert lock_spec.word_offset in values


class TestBenchmark:
    @pytest.mark.parametrize("scheme", ["fompi-a", "fompi-rw", "rma-rw"])
    def test_runs_and_counts_operations(self, machine, scheme):
        config = DHTWorkloadConfig(
            machine=machine, scheme=scheme, ops_per_process=5, fw=0.2, t_l=(2, 2), seed=3
        )
        outcome = run_dht_benchmark(config)
        assert outcome.scheme == scheme
        assert outcome.total_ops == (machine.num_processes - 1) * 5
        assert outcome.inserts + outcome.lookups == outcome.total_ops
        assert outcome.total_time_us > 0
        assert outcome.ops_per_second > 0

    def test_zero_write_fraction_produces_only_lookups(self, machine):
        config = DHTWorkloadConfig(machine=machine, scheme="fompi-a", ops_per_process=6, fw=0.0)
        outcome = run_dht_benchmark(config)
        assert outcome.inserts == 0
        assert outcome.lookups == outcome.total_ops

    def test_full_write_fraction_produces_only_inserts(self, machine):
        config = DHTWorkloadConfig(machine=machine, scheme="fompi-a", ops_per_process=6, fw=1.0)
        outcome = run_dht_benchmark(config)
        assert outcome.lookups == 0
        assert outcome.inserts == outcome.total_ops

    def test_deterministic_given_seed(self, machine):
        config = DHTWorkloadConfig(machine=machine, scheme="rma-rw", ops_per_process=5, fw=0.1, t_l=(2, 2), seed=9)
        a = run_dht_benchmark(config)
        b = run_dht_benchmark(config)
        assert a.total_time_us == b.total_time_us
        assert a.inserts == b.inserts

    def test_total_time_s_conversion(self, machine):
        config = DHTWorkloadConfig(machine=machine, scheme="fompi-a", ops_per_process=4)
        outcome = run_dht_benchmark(config)
        assert outcome.total_time_s == pytest.approx(outcome.total_time_us / 1e6)


class TestSkewedAndScatteredWorkloads:
    def _machine(self):
        from repro.topology.machine import Machine

        return Machine.cluster(nodes=2, procs_per_node=2)

    def test_rejects_unknown_distribution_and_pattern(self):
        from repro.dht.workload import DHTWorkloadConfig

        with pytest.raises(ValueError):
            DHTWorkloadConfig(machine=self._machine(), distribution="pareto")
        with pytest.raises(ValueError):
            DHTWorkloadConfig(machine=self._machine(), access_pattern="broadcast")

    def test_key_distribution_accessor_matches_config(self):
        from repro.dht.workload import DHTWorkloadConfig

        config = DHTWorkloadConfig(
            machine=self._machine(), distribution="zipfian", distinct_keys=64, zipf_exponent=1.2
        )
        dist = config.key_distribution()
        assert dist.name == "zipfian"
        assert dist.distinct_keys == 64

    def test_zipfian_victim_benchmark_runs(self):
        from repro.dht.workload import DHTWorkloadConfig, run_dht_benchmark

        config = DHTWorkloadConfig(
            machine=self._machine(),
            scheme="rma-rw",
            ops_per_process=5,
            fw=0.2,
            distribution="zipfian",
            distinct_keys=32,
            seed=11,
        )
        outcome = run_dht_benchmark(config)
        assert outcome.total_ops == (self._machine().num_processes - 1) * 5
        assert outcome.total_time_us > 0

    def test_by_key_pattern_spreads_ops_over_all_volumes(self):
        from repro.dht.workload import DHTWorkloadConfig, run_dht_benchmark

        machine = self._machine()
        config = DHTWorkloadConfig(
            machine=machine,
            scheme="fompi-a",
            ops_per_process=6,
            fw=1.0,                    # all inserts so every volume gets entries
            access_pattern="by-key",
            distribution="uniform",
            seed=12,
        )
        outcome = run_dht_benchmark(config)
        # With by-key access every rank (including the victim) issues operations.
        assert outcome.total_ops == machine.num_processes * 6
        assert outcome.inserts == outcome.total_ops

    def test_by_key_pattern_with_lock_is_correct_and_slower_than_lockless(self):
        from repro.dht.workload import DHTWorkloadConfig, run_dht_benchmark

        machine = self._machine()
        base = dict(
            machine=machine,
            ops_per_process=5,
            fw=0.5,
            access_pattern="by-key",
            distribution="hotspot",
            seed=13,
        )
        locked = run_dht_benchmark(DHTWorkloadConfig(scheme="rma-rw", **base))
        lockless = run_dht_benchmark(DHTWorkloadConfig(scheme="fompi-a", **base))
        assert locked.total_ops == lockless.total_ops
        assert locked.total_time_us >= lockless.total_time_us
