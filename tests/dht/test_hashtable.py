"""Tests for the distributed hashtable."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.hashtable import DHTFullError, DHTSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine


def run_single_rank(program, *, table_size=8, heap_size=32):
    """Run a one-rank DHT program and return (spec, runtime, result)."""
    machine = Machine.single_node(1)
    spec = DHTSpec(num_processes=1, table_size=table_size, heap_size=heap_size)
    rt = SimRuntime(machine, window_words=spec.window_words)
    result = rt.run(lambda ctx: program(spec.make(ctx), ctx), window_init=spec.init_window)
    return spec, rt, result


class TestSpec:
    def test_layout_sizes(self):
        spec = DHTSpec(num_processes=4, table_size=8, heap_size=16)
        assert spec.window_words == 1 + 8 + 16 * 3
        assert spec.bucket_offset(0) == 1
        assert spec.element_offsets(0)[0] == 1 + 8

    def test_layout_respects_base_offset(self):
        spec = DHTSpec(num_processes=4, table_size=4, heap_size=4, base_offset=10)
        assert spec.next_free_offset == 10
        assert spec.window_words == 10 + 1 + 4 + 12

    def test_bucket_and_element_bounds(self):
        spec = DHTSpec(num_processes=2, table_size=4, heap_size=4)
        with pytest.raises(IndexError):
            spec.bucket_offset(4)
        with pytest.raises(IndexError):
            spec.element_offsets(4)

    def test_home_rank_and_bucket_stable(self):
        spec = DHTSpec(num_processes=8, table_size=16, heap_size=4)
        for key in (0, 1, 17, 123456789, 2**40):
            assert 0 <= spec.home_rank(key) < 8
            assert 0 <= spec.bucket_of(key) < 16
            assert spec.home_rank(key) == spec.home_rank(key)

    def test_validation(self):
        with pytest.raises(ValueError):
            DHTSpec(num_processes=0)
        with pytest.raises(ValueError):
            DHTSpec(num_processes=1, table_size=0)
        with pytest.raises(ValueError):
            DHTSpec(num_processes=1, heap_size=0)

    def test_init_window_marks_buckets_empty(self):
        spec = DHTSpec(num_processes=1, table_size=4, heap_size=2)
        init = spec.init_window(0)
        for b in range(4):
            assert init[spec.bucket_offset(b)] == -1


class TestSingleRankOperations:
    def test_insert_then_lookup(self):
        def program(dht, ctx):
            assert dht.insert(42, 420)
            return dht.lookup(42)

        _, _, result = run_single_rank(program)
        assert result.returns[0] == 420

    def test_lookup_missing_returns_none(self):
        def program(dht, ctx):
            dht.insert(1, 10)
            return dht.lookup(999)

        _, _, result = run_single_rank(program)
        assert result.returns[0] is None

    def test_duplicate_insert_rejected(self):
        def program(dht, ctx):
            first = dht.insert(7, 70)
            second = dht.insert(7, 71)
            return first, second, dht.lookup(7)

        _, _, result = run_single_rank(program)
        assert result.returns[0] == (True, False, 70)

    def test_collisions_go_to_overflow_chain(self):
        def program(dht, ctx):
            # table_size=1 forces every key into the same bucket
            stored = [dht.insert(k, k * 10) for k in range(6)]
            values = [dht.lookup(k) for k in range(6)]
            return stored, values

        machine = Machine.single_node(1)
        spec = DHTSpec(num_processes=1, table_size=1, heap_size=16)
        rt = SimRuntime(machine, window_words=spec.window_words)
        result = rt.run(lambda ctx: program(spec.make(ctx), ctx), window_init=spec.init_window)
        stored, values = result.returns[0]
        assert all(stored)
        assert values == [k * 10 for k in range(6)]

    def test_contains(self):
        def program(dht, ctx):
            dht.insert(5, 50)
            return dht.contains(5), dht.contains(6)

        _, _, result = run_single_rank(program)
        assert result.returns[0] == (True, False)

    def test_heap_exhaustion_raises(self):
        def program(dht, ctx):
            for k in range(10):
                dht.insert(k, k)

        machine = Machine.single_node(1)
        spec = DHTSpec(num_processes=1, table_size=2, heap_size=4)
        rt = SimRuntime(machine, window_words=spec.window_words)
        with pytest.raises(DHTFullError):
            rt.run(lambda ctx: program(spec.make(ctx), ctx), window_init=spec.init_window)

    def test_negative_and_large_keys(self):
        def program(dht, ctx):
            keys = [-5, 0, 2**40, 17]
            for k in keys:
                dht.insert(k, k + 1)
            return [dht.lookup(k) for k in keys]

        _, _, result = run_single_rank(program)
        assert result.returns[0] == [-4, 1, 2**40 + 1, 18]

    def test_dump_volume_and_usage(self):
        def program(dht, ctx):
            for k in range(5):
                dht.insert(k, k)
            return sorted(dht.dump_volume(0)), dht.local_volume_usage(0)

        _, _, result = run_single_rank(program)
        pairs, used = result.returns[0]
        assert pairs == [(k, k) for k in range(5)]
        assert used == 5


class TestDistributedOperations:
    def test_keys_partitioned_across_ranks(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = DHTSpec(num_processes=4, table_size=8, heap_size=64)
        rt = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            dht = spec.make(ctx)
            ctx.barrier()
            for i in range(8):
                key = ctx.rank * 100 + i
                dht.insert(key, key * 2)
            ctx.barrier()
            return [dht.lookup(r * 100 + i) for r in range(4) for i in range(8)]

        result = rt.run(program, window_init=spec.init_window)
        expected = [(r * 100 + i) * 2 for r in range(4) for i in range(8)]
        for per_rank in result.returns:
            assert per_rank == expected

    def test_concurrent_inserts_to_one_victim_all_land(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        spec = DHTSpec(num_processes=8, table_size=4, heap_size=128)
        rt = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            dht = spec.make(ctx)
            ctx.barrier()
            for i in range(6):
                dht.insert(ctx.rank * 1000 + i, ctx.rank, target_rank=0)
            ctx.barrier()
            missing = 0
            for r in range(8):
                for i in range(6):
                    if dht.lookup(r * 1000 + i, target_rank=0) is None:
                        missing += 1
            return missing

        result = rt.run(program, window_init=spec.init_window)
        assert all(missing == 0 for missing in result.returns)

    def test_concurrent_duplicate_inserts_keep_single_value(self):
        machine = Machine.single_node(4)
        spec = DHTSpec(num_processes=4, table_size=2, heap_size=64)
        rt = SimRuntime(machine, window_words=spec.window_words)

        def program(ctx):
            dht = spec.make(ctx)
            ctx.barrier()
            won = dht.insert(77, ctx.rank + 1, target_rank=0)
            ctx.barrier()
            return won, dht.lookup(77, target_rank=0)

        result = rt.run(program, window_init=spec.init_window)
        winners = [r[0] for r in result.returns]
        values = {r[1] for r in result.returns}
        assert sum(winners) == 1
        assert len(values) == 1
        assert values.pop() in {1, 2, 3, 4}

    def test_mismatched_runtime_rejected(self):
        spec = DHTSpec(num_processes=4)
        rt = SimRuntime(Machine.single_node(2), window_words=spec.window_words)
        with pytest.raises(ValueError):
            rt.run(lambda ctx: spec.make(ctx), window_init=spec.init_window)


class TestAgainstModel:
    @given(
        st.lists(
            st.tuples(st.sampled_from(["insert", "lookup"]), st.integers(0, 30), st.integers(0, 1000)),
            max_size=60,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_single_rank_matches_python_dict(self, operations):
        """A sequential DHT behaves exactly like a dict with first-write-wins."""

        def program(dht, ctx):
            model = {}
            mismatches = 0
            for op, key, value in operations:
                if op == "insert":
                    inserted = dht.insert(key, value)
                    if key in model:
                        if inserted:
                            mismatches += 1
                    else:
                        model[key] = value
                        if not inserted:
                            mismatches += 1
                else:
                    expected = model.get(key)
                    if dht.lookup(key) != expected:
                        mismatches += 1
            return mismatches

        _, _, result = run_single_rank(program, table_size=4, heap_size=128)
        assert result.returns[0] == 0
