"""Tests for the lock-table service layer."""

from __future__ import annotations

import pytest

from repro.api.registry import register_scheme, unregister
from repro.core.lock_base import LockSpec
from repro.rma.sim_runtime import SimRuntime
from repro.topology.builder import xc30_like
from repro.traffic.table import (
    LockTableSpec,
    StripedLockTableSpec,
    as_lock_table,
    build_lock_table,
)

REPLICABLE_SCHEMES = (
    "fompi-spin",
    "fompi-rw",
    "d-mcs",
    "rma-mcs",
    "rma-rw",
    "ticket",
    "hbo",
    "cohort",
    "numa-rw",
)


@pytest.fixture
def machine():
    return xc30_like(8, procs_per_node=4)


class TestReplication:
    @pytest.mark.parametrize("scheme", REPLICABLE_SCHEMES)
    def test_every_builtin_scheme_forms_a_table(self, machine, scheme):
        table, is_rw = build_lock_table(machine, scheme, 8)
        assert isinstance(table, LockTableSpec)
        assert table.num_locks == 8
        stride = table.specs[0].window_words
        assert table.window_words == 8 * stride
        # Entry layouts must be disjoint: the merged init has no conflicts
        # (merge_inits raises on any) and every entry's words sit in its slab.
        for rank in range(machine.num_processes):
            table.init_window(rank)
        for index, spec in enumerate(table.specs):
            for offset in spec.init_window(0):
                assert index * stride <= offset < (index + 1) * stride

    def test_home_ranks_rotate_across_the_machine(self, machine):
        table, _ = build_lock_table(machine, "fompi-spin", 8)
        homes = [spec.home_rank for spec in table.specs]
        assert homes == [i % machine.num_processes for i in range(8)]

    def test_dmcs_tail_ranks_rotate(self, machine):
        table, _ = build_lock_table(machine, "d-mcs", 4)
        assert [spec.tail_rank for spec in table.specs] == [0, 1, 2, 3]

    def test_scheme_params_reach_every_entry(self, machine):
        table, _ = build_lock_table(machine, "rma-rw", 4, params={"t_r": 16})
        assert all(spec.t_r == 16 for spec in table.specs)

    def test_entries_are_independent_locks(self, machine):
        table, _ = build_lock_table(machine, "fompi-spin", 4)
        runtime = SimRuntime(machine, window_words=table.window_words + 4, seed=0)
        counter_base = table.window_words

        def program(ctx):
            handle = table.make(ctx)
            index = ctx.rank % 4
            lock = handle.lock(index)
            ctx.barrier()
            for _ in range(3):
                lock.acquire()
                ctx.accumulate(1, 0, counter_base + index)
                ctx.flush(0)
                ctx.compute(0.5)
                lock.release()
            ctx.barrier()

        runtime.run(program, window_init=table.init_window)
        window = runtime.window(0)
        counts = [window.read(counter_base + i) for i in range(4)]
        assert counts == [6, 6, 6, 6]  # 8 ranks, 2 per entry, 3 acquires each

    def test_out_of_range_entry_rejected(self, machine):
        table, _ = build_lock_table(machine, "fompi-spin", 4)
        runtime = SimRuntime(machine, window_words=table.window_words, seed=0)

        def program(ctx):
            handle = table.make(ctx)
            if ctx.rank == 0:
                with pytest.raises(ValueError, match="out of range"):
                    handle.lock(4)

        runtime.run(program, window_init=table.init_window)


class TestSchemeSlots:
    def _table(self, machine, scheme="fompi-spin", num_locks=4, **kw):
        from repro.control.policy import policy_min_entry_words
        from repro.traffic.scenarios import ADAPTIVE_POLICY

        kw.setdefault("min_entry_words", policy_min_entry_words(machine, ADAPTIVE_POLICY))
        table, _ = build_lock_table(machine, scheme, num_locks, **kw)
        return table

    def test_swap_rebases_and_rotates_the_new_spec(self, machine):
        from repro.api.registry import get_scheme

        table = self._table(machine, "fompi-spin")
        entry = table.entry(2)
        base = get_scheme("d-mcs").build(machine)
        placed = entry.swap_spec(base, rw=False, scheme="d-mcs")
        assert placed is not None
        assert entry.version == 1 and entry.scheme == "d-mcs"
        assert placed.base_offset == entry.base_offset
        assert placed.tail_rank == 2 % machine.num_processes

    def test_swap_is_idempotent_per_planned_version(self, machine):
        from repro.api.registry import get_scheme

        table = self._table(machine)
        entry = table.entry(1)
        base = get_scheme("d-mcs").build(machine)
        assert entry.swap_spec(base, version=1) is not None
        assert entry.swap_spec(base, version=1) is None  # another rank lost the race
        assert entry.version == 1

    def test_reset_restores_construction_state(self, machine):
        from repro.api.registry import get_scheme

        table = self._table(machine)
        original = table.entry(1).spec
        table.entry(1).swap_spec(get_scheme("d-mcs").build(machine), scheme="d-mcs")
        table.reset_entries()
        entry = table.entry(1)
        assert entry.version == 0
        assert entry.spec is original and entry.scheme == "fompi-spin"

    def test_oversized_spec_rejected_with_remedy(self, machine):
        from repro.api.registry import get_scheme

        table, _ = build_lock_table(machine, "fompi-spin", 4)  # no slab floor
        with pytest.raises(ValueError, match="min_entry_words"):
            table.entry(1).place(get_scheme("rma-rw").build(machine))

    def test_handles_rebuild_on_version_bump(self, machine):
        from repro.api.registry import get_scheme
        from repro.rma.sim_runtime import SimRuntime

        table = self._table(machine, "fompi-spin", num_locks=2)
        runtime = SimRuntime(machine, window_words=table.window_words, seed=0)
        kinds = {}

        def program(ctx):
            table.reset_entries()
            handle = table.make(ctx)
            before = type(handle.lock(1)).__name__
            ctx.barrier()
            entry = table.entry(1)
            placed = entry.place(get_scheme("d-mcs").build(machine), nranks=ctx.nranks)
            for offset in range(entry.base_offset, entry.base_offset + entry.stride):
                ctx.put(int(placed.init_window(ctx.rank).get(offset, 0)), ctx.rank, offset)
            ctx.flush(ctx.rank)
            entry.swap_spec(
                get_scheme("d-mcs").build(machine), rw=False, scheme="d-mcs",
                nranks=ctx.nranks, version=1,
            )
            ctx.barrier()
            after = type(handle.lock(1)).__name__
            lock = handle.lock(1)
            lock.acquire()
            ctx.compute(0.5)
            lock.release()
            ctx.barrier()
            if ctx.rank == 0:
                kinds["before"], kinds["after"] = before, after

        runtime.run(program, window_init=table.init_window)
        assert kinds["before"] != kinds["after"]

    def test_striped_entries_reject_swaps(self, machine):
        from repro.api.registry import get_scheme

        table, _ = build_lock_table(machine, "striped-rw", 16)
        with pytest.raises(ValueError, match="striped"):
            table.entry(3).swap_spec(get_scheme("d-mcs").build(machine))


class TestStripedTable:
    def test_striped_scheme_becomes_a_striped_table(self, machine):
        table, is_rw = build_lock_table(machine, "striped-rw", 64)
        assert isinstance(table, StripedLockTableSpec)
        assert is_rw and table.rw
        assert table.num_locks == 64
        # One lock word per rank: the window does not grow with num_locks.
        assert table.window_words == table.inner.window_words

    def test_entries_fold_onto_stripes(self, machine):
        table, _ = build_lock_table(machine, "striped-rw", 64)
        runtime = SimRuntime(machine, window_words=table.window_words + 2, seed=0)
        results = {}

        def program(ctx):
            handle = table.make(ctx)
            ctx.barrier()
            lock = handle.lock(ctx.rank + machine.num_processes)  # wraps mod P
            lock.acquire_write()
            ctx.compute(0.2)
            lock.release_write()
            ctx.barrier()
            return lock.volume

        result = runtime.run(program, window_init=table.init_window)
        results = result.returns
        assert results == list(range(machine.num_processes))


class TestErrorsAndCoercion:
    def test_single_lock_coerces_to_one_entry_table(self, machine):
        from repro.bench.harness import build_lock_spec
        from repro.bench.workloads import LockBenchConfig

        spec, is_rw = build_lock_spec(LockBenchConfig(machine=machine, scheme="rma-mcs"))
        table = as_lock_table(spec, is_rw)
        assert table.num_locks == 1
        assert as_lock_table(table, is_rw) is table  # idempotent

    def test_non_rebasable_spec_rejected(self, machine):
        class PlainSpec(LockSpec):
            @property
            def window_words(self):
                return 1

            def init_window(self, rank):
                return {}

            def make(self, ctx):  # pragma: no cover - never reached
                raise AssertionError

        @register_scheme("table-plain-lock")
        def _build(m):
            return PlainSpec()

        try:
            with pytest.raises(ValueError, match="non-dataclass spec"):
                build_lock_table(machine, "table-plain-lock", 4)
            # A single entry needs no re-basing and still works.
            table, _ = build_lock_table(machine, "table-plain-lock", 1)
            assert table.num_locks == 1
        finally:
            unregister("scheme", "table-plain-lock")

    def test_zero_locks_rejected(self, machine):
        with pytest.raises(ValueError, match="num_locks"):
            build_lock_table(machine, "fompi-spin", 0)
