"""Tests for scenario registration and its harness/campaign integration."""

from __future__ import annotations

import pytest

from repro.api.registry import benchmark_names, get_benchmark, unregister
from repro.bench.campaign import BENCHMARK_SELECTORS, CampaignSpec
from repro.bench.harness import run_lock_benchmark, run_lock_benchmark_detailed
from repro.bench.workloads import BENCHMARKS, LockBenchConfig
from repro.topology.builder import xc30_like
from repro.traffic import TrafficScenario, register_traffic_scenario
from repro.traffic.scenarios import BUILTIN_SCENARIOS, scenario_tags


@pytest.fixture
def machine():
    return xc30_like(8, procs_per_node=4)


class TestRegistration:
    def test_builtin_scenarios_are_registered_benchmarks(self):
        names = benchmark_names(tag="traffic")
        assert {"traffic-zipf", "traffic-uniform", "traffic-burst",
                "traffic-readheavy", "traffic-phased"} <= set(names)
        # The paper's closed-loop benchmarks never carry the traffic tag.
        assert not set(BENCHMARKS) & set(names)

    def test_rw_scenarios_carry_the_rw_tag(self):
        rw = set(benchmark_names(tag="traffic-rw"))
        assert "traffic-readheavy" in rw
        assert "traffic-phased" in rw
        assert "traffic-zipf" not in rw

    def test_scenario_tags_rules(self):
        assert scenario_tags(TrafficScenario(name="x")) == ("traffic",)
        assert scenario_tags(TrafficScenario(name="x", fw=0.3)) == ("traffic", "traffic-rw")

    def test_benchmark_info_carries_spec_transform(self):
        info = get_benchmark("traffic-zipf")
        assert info.program_factory is not None
        assert info.spec_transform is not None

    def test_third_party_scenario_joins_selectors(self, machine):
        scenario = TrafficScenario(name="traffic-test-3p", num_locks=8, fw=0.5)
        register_traffic_scenario(scenario)
        try:
            assert "traffic-test-3p" in benchmark_names(tag="traffic")
            spec = CampaignSpec(name="t3p", benchmarks=("traffic-rw",), schemes=("rma-rw",))
            assert "traffic-test-3p" in spec.resolve_benchmarks()
            # And it runs through the ordinary harness config path.
            config = LockBenchConfig(
                machine=machine, scheme="fompi-rw", benchmark="traffic-test-3p", iterations=4
            )
            result = run_lock_benchmark(config)
            assert result.percentiles
        finally:
            unregister("benchmark", "traffic-test-3p")


class TestSelectors:
    def test_selector_tokens_are_reserved(self):
        assert BENCHMARK_SELECTORS == ("traffic", "traffic-rw", "scale")

    def test_resolve_benchmarks_expands_and_dedupes(self):
        spec = CampaignSpec(
            name="t", schemes=("rma-rw",), benchmarks=("wcsb", "traffic", "traffic-zipf")
        )
        resolved = spec.resolve_benchmarks()
        assert resolved[0] == "wcsb"
        assert resolved.count("traffic-zipf") == 1
        assert set(benchmark_names(tag="traffic")) <= set(resolved)

    def test_unknown_benchmark_still_errors_helpfully(self):
        from repro.api.registry import UnknownNameError

        spec = CampaignSpec(name="t", schemes=("rma-rw",), benchmarks=("traffic-zpif",))
        with pytest.raises(UnknownNameError, match="traffic-zipf"):
            spec.resolve_benchmarks()

    def test_points_expand_scenarios(self):
        spec = CampaignSpec(
            name="t",
            schemes=("fompi-spin",),
            benchmarks=("traffic",),
            process_counts=(8,),
            iterations=2,
        )
        benchmarks = {p.benchmark for p in spec.points()}
        assert benchmarks == set(benchmark_names(tag="traffic"))


class TestHarnessIntegration:
    def test_traffic_result_carries_percentiles_and_phases(self, machine):
        config = LockBenchConfig(
            machine=machine, scheme="rma-mcs", benchmark="traffic-phased", iterations=8, seed=2
        )
        result, raw = run_lock_benchmark_detailed(config)
        assert result.percentiles["e2e_p99_us"] >= result.percentiles["e2e_p50_us"] > 0
        assert result.percentiles["acquire_p999_us"] >= result.percentiles["acquire_p50_us"]
        assert len(result.phases) >= 2  # the spike phase is reached at P=8
        assert result.total_acquires == 8 * machine.num_processes
        row = result.as_row()
        assert "e2e_p99_us" in row and "e2e_p999_us" in row

    def test_closed_loop_results_have_no_percentiles(self, machine):
        config = LockBenchConfig(machine=machine, scheme="rma-mcs", benchmark="wcsb", iterations=4)
        result = run_lock_benchmark(config)
        assert result.percentiles == {}
        assert result.phases == []
        assert "e2e_p99_us" not in result.as_row()

    def test_config_fw_reaches_unpinned_scenarios(self, machine):
        reads_light = run_lock_benchmark(
            LockBenchConfig(machine=machine, scheme="fompi-rw", benchmark="traffic-zipf",
                            iterations=10, fw=0.0, seed=3)
        )
        reads_heavy = run_lock_benchmark(
            LockBenchConfig(machine=machine, scheme="fompi-rw", benchmark="traffic-zipf",
                            iterations=10, fw=1.0, seed=3)
        )
        assert reads_light.writes == 0 and reads_light.reads > 0
        assert reads_heavy.reads == 0 and reads_heavy.writes > 0

    def test_pinned_scenario_fw_overrides_config(self, machine):
        result = run_lock_benchmark(
            LockBenchConfig(machine=machine, scheme="fompi-rw", benchmark="traffic-readheavy",
                            iterations=12, fw=1.0, seed=3)
        )
        assert result.reads > result.writes  # the scenario's 5% writes win

    def test_mcs_scheme_treats_every_request_as_exclusive(self, machine):
        result = run_lock_benchmark(
            LockBenchConfig(machine=machine, scheme="fompi-spin", benchmark="traffic-readheavy",
                            iterations=6, seed=3)
        )
        assert result.reads == 0
        assert result.writes == 6 * machine.num_processes

    def test_striped_rw_runs_traffic_natively(self, machine):
        config = LockBenchConfig(
            machine=machine, scheme="striped-rw", benchmark="traffic-zipf", iterations=6, fw=0.2
        )
        result = run_lock_benchmark(config)
        assert result.percentiles["e2e_p50_us"] > 0
