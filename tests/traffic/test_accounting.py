"""Tests for the tail-latency accounting layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.accounting import (
    LatencyReservoir,
    aggregate_traffic,
    nearest_rank_percentiles,
)


class TestNearestRank:
    def test_known_values(self):
        samples = list(range(1, 101))  # 1..100
        pct = nearest_rank_percentiles(samples)
        assert pct["p50"] == 50
        assert pct["p90"] == 90
        assert pct["p99"] == 99
        assert pct["p999"] == 100

    def test_empty_is_zero(self):
        assert nearest_rank_percentiles([]) == {"p50": 0.0, "p90": 0.0, "p99": 0.0, "p999": 0.0}

    def test_single_sample(self):
        pct = nearest_rank_percentiles([7.5])
        assert all(v == 7.5 for v in pct.values())


class TestReservoir:
    def test_order_independence(self):
        values = list(np.random.default_rng(1).random(5000))
        a = LatencyReservoir()
        a.add_many(values)
        b = LatencyReservoir()
        b.add_many(list(reversed(values)))
        assert a.percentiles() == b.percentiles()

    def test_decimation_bounds_memory_and_keeps_the_tail(self):
        reservoir = LatencyReservoir(cap=256)
        rng = np.random.default_rng(2)
        for _ in range(10):
            reservoir.add_many(rng.exponential(1.0, size=500))
        reservoir.add_many([1e6])  # the extreme outlier must survive
        reservoir.add_many(rng.exponential(1.0, size=2000))
        assert reservoir.kept <= 2 * reservoir.cap + 2
        assert reservoir.count == 10 * 500 + 1 + 2000
        assert reservoir.percentiles()["p999"] > 1.0

    def test_decimated_quantiles_stay_accurate(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(10.0, size=200_000)
        bounded = LatencyReservoir(cap=4096)
        bounded.add_many(values)
        exact = nearest_rank_percentiles(values)
        approx = bounded.percentiles()
        for label in ("p50", "p90", "p99"):
            assert approx[label] == pytest.approx(exact[label], rel=0.05)

    def test_tiny_cap_rejected(self):
        with pytest.raises(ValueError):
            LatencyReservoir(cap=4)


class TestAggregate:
    def _returns(self):
        # Two ranks, three requests each, two phases.
        return [
            {
                "arrivals": [0.0, 10.0, 20.0],
                "latencies": [5.0, 6.0, 7.0],
                "acquire_latencies": [1.0, 2.0, 3.0],
                "hold_us": [1.0, 1.0, 1.0],
                "phases": [0, 0, 1],
                "write_flags": [1, 0, 1],
                "reads": 1,
                "writes": 2,
            },
            {
                "arrivals": [1.0, 11.0, 21.0],
                "latencies": [4.0, 8.0, 9.0],
                "acquire_latencies": [2.0, 2.0, 2.0],
                "hold_us": [2.0, 2.0, 2.0],
                "phases": [0, 1, 1],
                "write_flags": [0, 0, 0],
                "reads": 3,
                "writes": 0,
            },
        ]

    def test_summary_counts_and_span(self):
        summary = aggregate_traffic(self._returns())
        assert summary.requests == 6
        assert summary.reads == 4
        assert summary.writes == 2
        assert summary.open_span_us == 30.0  # arrival 0 .. completion 21+9
        assert summary.mean_hold_us == 1.5

    def test_phase_rows(self):
        summary = aggregate_traffic(self._returns())
        assert [row["phase"] for row in summary.phases] == [0, 1]
        assert [row["requests"] for row in summary.phases] == [3, 3]
        assert summary.phases[0]["writes"] == 1
        assert summary.phases[1]["writes"] == 1

    def test_percentile_fields_are_flat_floats(self):
        import json

        summary = aggregate_traffic(self._returns())
        fields = summary.percentile_fields()
        assert set(fields) >= {"e2e_p50_us", "e2e_p999_us", "acquire_p99_us", "mean_hold_us"}
        json.dumps(fields)  # plain JSON-able floats
        json.dumps(summary.phases)

    def test_empty_returns(self):
        summary = aggregate_traffic([])
        assert summary.requests == 0
        assert summary.offered_per_s == 0.0
        assert summary.phases == []


class TestReservoirBoundParameter:
    """The reservoir bound is a first-class accounting parameter: pinnable
    per scenario, forwarded end to end, and order-independent at the bound."""

    def _rank(self, rng, n, phase=0):
        e2e = rng.exponential(5.0, size=n)
        return {
            "arrivals": np.cumsum(rng.exponential(1.0, size=n)),
            "latencies": e2e,
            "acquire_latencies": e2e * 0.3,
            "hold_us": np.full(n, 1.0),
            "phases": np.full(n, phase),
            "write_flags": np.zeros(n, dtype=np.int64),
            "reads": n,
            "writes": 0,
        }

    def test_aggregate_honors_the_bound(self):
        rng = np.random.default_rng(11)
        returns = [self._rank(rng, 5000) for _ in range(4)]
        bounded = aggregate_traffic(returns, reservoir_cap=64)
        unbounded = aggregate_traffic(returns)
        # Decimation preserves the quantiles it is allowed to keep.
        assert bounded.requests == unbounded.requests == 20_000
        assert bounded.e2e["p50"] == pytest.approx(unbounded.e2e["p50"], rel=0.1)
        assert bounded.e2e["p999"] >= bounded.e2e["p99"] >= bounded.e2e["p50"]

    def test_order_independence_below_the_bound(self):
        # Under the cap the summary is an exact function of the multiset:
        # any rank contribution order yields identical percentiles.
        rng = np.random.default_rng(12)
        returns = [self._rank(rng, 300) for _ in range(5)]
        forward = aggregate_traffic(returns, reservoir_cap=4096)
        backward = aggregate_traffic(list(reversed(returns)), reservoir_cap=4096)
        assert forward.e2e == backward.e2e
        assert forward.acquire == backward.acquire

    def test_reordering_at_the_bound_stays_within_decimation_error(self):
        # Past the cap, reordering shifts which stratified subsample survives
        # — but only within the decimation's quantile error, and the global
        # maximum always survives.
        rng = np.random.default_rng(12)
        returns = [self._rank(rng, 3000) for _ in range(5)]
        forward = aggregate_traffic(returns, reservoir_cap=128)
        backward = aggregate_traffic(list(reversed(returns)), reservoir_cap=128)
        for label in ("p50", "p90", "p99"):
            assert forward.e2e[label] == pytest.approx(backward.e2e[label], rel=0.1)

    def test_scenario_pins_its_own_cap(self):
        from repro.traffic.generators import TrafficScenario

        pinned = TrafficScenario(name="t", reservoir_cap=4096)
        assert pinned.reservoir_cap == 4096
        with pytest.raises(ValueError, match="reservoir_cap"):
            TrafficScenario(name="t", reservoir_cap=8)

    def test_rank_programs_carry_the_pinned_cap(self):
        # A scenario-pinned cap rides the per-rank return dict (part of the
        # fingerprinted run state), which is where the benchmark harness
        # picks it up before calling aggregate_traffic.
        from repro.api.registry import get_runtime
        from repro.topology.builder import cached_machine
        from repro.traffic.generators import TrafficScenario
        from repro.traffic.scenarios import make_open_loop_program
        from repro.traffic.table import build_lock_table

        scenario = TrafficScenario(name="cap-thread-test", num_locks=8, reservoir_cap=64)
        machine = cached_machine(4, procs_per_node=4)
        table, _ = build_lock_table(machine, "fompi-spin", 8)
        program = make_open_loop_program(
            scenario, table, is_rw=False, draw_role=False, requests=4, seed=5,
            fw_default=0.0,
        )
        runtime = get_runtime("horizon").factory(
            machine, window_words=table.window_words + 2,
            latency=None, fabric=None, tracer=None, seed=5,
        )
        result = runtime.run(program, window_init=table.init_window)
        for per_rank in result.returns:
            assert per_rank["reservoir_cap"] == 64
