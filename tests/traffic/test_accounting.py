"""Tests for the tail-latency accounting layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.accounting import (
    LatencyReservoir,
    aggregate_traffic,
    nearest_rank_percentiles,
)


class TestNearestRank:
    def test_known_values(self):
        samples = list(range(1, 101))  # 1..100
        pct = nearest_rank_percentiles(samples)
        assert pct["p50"] == 50
        assert pct["p90"] == 90
        assert pct["p99"] == 99
        assert pct["p999"] == 100

    def test_empty_is_zero(self):
        assert nearest_rank_percentiles([]) == {"p50": 0.0, "p90": 0.0, "p99": 0.0, "p999": 0.0}

    def test_single_sample(self):
        pct = nearest_rank_percentiles([7.5])
        assert all(v == 7.5 for v in pct.values())


class TestReservoir:
    def test_order_independence(self):
        values = list(np.random.default_rng(1).random(5000))
        a = LatencyReservoir()
        a.add_many(values)
        b = LatencyReservoir()
        b.add_many(list(reversed(values)))
        assert a.percentiles() == b.percentiles()

    def test_decimation_bounds_memory_and_keeps_the_tail(self):
        reservoir = LatencyReservoir(cap=256)
        rng = np.random.default_rng(2)
        for _ in range(10):
            reservoir.add_many(rng.exponential(1.0, size=500))
        reservoir.add_many([1e6])  # the extreme outlier must survive
        reservoir.add_many(rng.exponential(1.0, size=2000))
        assert reservoir.kept <= 2 * reservoir.cap + 2
        assert reservoir.count == 10 * 500 + 1 + 2000
        assert reservoir.percentiles()["p999"] > 1.0

    def test_decimated_quantiles_stay_accurate(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(10.0, size=200_000)
        bounded = LatencyReservoir(cap=4096)
        bounded.add_many(values)
        exact = nearest_rank_percentiles(values)
        approx = bounded.percentiles()
        for label in ("p50", "p90", "p99"):
            assert approx[label] == pytest.approx(exact[label], rel=0.05)

    def test_tiny_cap_rejected(self):
        with pytest.raises(ValueError):
            LatencyReservoir(cap=4)


class TestAggregate:
    def _returns(self):
        # Two ranks, three requests each, two phases.
        return [
            {
                "arrivals": [0.0, 10.0, 20.0],
                "latencies": [5.0, 6.0, 7.0],
                "acquire_latencies": [1.0, 2.0, 3.0],
                "hold_us": [1.0, 1.0, 1.0],
                "phases": [0, 0, 1],
                "write_flags": [1, 0, 1],
                "reads": 1,
                "writes": 2,
            },
            {
                "arrivals": [1.0, 11.0, 21.0],
                "latencies": [4.0, 8.0, 9.0],
                "acquire_latencies": [2.0, 2.0, 2.0],
                "hold_us": [2.0, 2.0, 2.0],
                "phases": [0, 1, 1],
                "write_flags": [0, 0, 0],
                "reads": 3,
                "writes": 0,
            },
        ]

    def test_summary_counts_and_span(self):
        summary = aggregate_traffic(self._returns())
        assert summary.requests == 6
        assert summary.reads == 4
        assert summary.writes == 2
        assert summary.open_span_us == 30.0  # arrival 0 .. completion 21+9
        assert summary.mean_hold_us == 1.5

    def test_phase_rows(self):
        summary = aggregate_traffic(self._returns())
        assert [row["phase"] for row in summary.phases] == [0, 1]
        assert [row["requests"] for row in summary.phases] == [3, 3]
        assert summary.phases[0]["writes"] == 1
        assert summary.phases[1]["writes"] == 1

    def test_percentile_fields_are_flat_floats(self):
        import json

        summary = aggregate_traffic(self._returns())
        fields = summary.percentile_fields()
        assert set(fields) >= {"e2e_p50_us", "e2e_p999_us", "acquire_p99_us", "mean_hold_us"}
        json.dumps(fields)  # plain JSON-able floats
        json.dumps(summary.phases)

    def test_empty_returns(self):
        summary = aggregate_traffic([])
        assert summary.requests == 0
        assert summary.offered_per_s == 0.0
        assert summary.phases == []
