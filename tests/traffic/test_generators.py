"""Property tests for the traffic generators.

The satellite contract of the traffic engine: schedules are bit-reproducible
per seed, phases apply at their boundaries, and the Zipf sampler's head
matches its analytic frequencies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.traffic.generators import (
    Phase,
    TrafficScenario,
    generate_schedule,
    traffic_rng,
    zipf_cdf,
    zipf_head_frequencies,
)


def _schedules_equal(a, b) -> bool:
    return (
        np.array_equal(a.arrival_us, b.arrival_us)
        and np.array_equal(a.lock_index, b.lock_index)
        and np.array_equal(a.is_write, b.is_write)
        and np.array_equal(a.cs_us, b.cs_us)
        and np.array_equal(a.think_us, b.think_us)
        and np.array_equal(a.phase, b.phase)
    )


class TestDeterminism:
    @pytest.mark.parametrize("arrival", ["poisson", "uniform", "burst"])
    def test_same_seed_same_schedule_bit_for_bit(self, arrival):
        scenario = TrafficScenario(name="t", arrival=arrival, num_locks=64)
        first = generate_schedule(scenario, seed=7, rank=3, requests=200, fw_default=0.2)
        second = generate_schedule(scenario, seed=7, rank=3, requests=200, fw_default=0.2)
        assert _schedules_equal(first, second)

    def test_different_seeds_and_ranks_differ(self):
        scenario = TrafficScenario(name="t", num_locks=64)
        base = generate_schedule(scenario, seed=7, rank=0, requests=100)
        other_seed = generate_schedule(scenario, seed=8, rank=0, requests=100)
        other_rank = generate_schedule(scenario, seed=7, rank=1, requests=100)
        assert not np.array_equal(base.arrival_us, other_seed.arrival_us)
        assert not np.array_equal(base.arrival_us, other_rank.arrival_us)

    def test_traffic_stream_disjoint_from_workload_stream(self):
        from repro.util.rng import rank_rng

        workload = rank_rng(5, 0).random(64)
        traffic = traffic_rng(5, 0).random(64)
        assert not np.array_equal(workload, traffic)

    def test_prefix_stability(self):
        # A longer schedule extends a shorter one: the per-request draw
        # count is fixed, so request i never depends on the horizon.
        scenario = TrafficScenario(name="t", num_locks=32)
        short = generate_schedule(scenario, seed=3, rank=2, requests=50)
        long = generate_schedule(scenario, seed=3, rank=2, requests=120)
        assert np.array_equal(short.arrival_us, long.arrival_us[:50])
        assert np.array_equal(short.lock_index, long.lock_index[:50])


class TestArrivals:
    @pytest.mark.parametrize("arrival", ["poisson", "uniform", "burst"])
    def test_arrivals_positive_and_monotonic(self, arrival):
        scenario = TrafficScenario(name="t", arrival=arrival, num_locks=16)
        schedule = generate_schedule(scenario, seed=1, rank=0, requests=300)
        arrivals = schedule.arrival_us
        assert np.all(arrivals > 0)
        assert np.all(np.diff(arrivals) >= 0)

    def test_mean_gap_tracks_configuration(self):
        fast = TrafficScenario(name="t", mean_gap_us=2.0, num_locks=16)
        slow = TrafficScenario(name="t", mean_gap_us=20.0, num_locks=16)
        n = 4000
        fast_span = generate_schedule(fast, 1, 0, n).arrival_us[-1]
        slow_span = generate_schedule(slow, 1, 0, n).arrival_us[-1]
        assert slow_span / fast_span == pytest.approx(10.0, rel=0.15)


class TestZipf:
    def test_cdf_shape(self):
        cdf = zipf_cdf(1024, 1.0)
        assert cdf.shape == (1024,)
        assert cdf[-1] == 1.0
        assert np.all(np.diff(cdf) > 0)

    def test_sampler_matches_analytic_head_frequencies(self):
        scenario = TrafficScenario(name="t", num_locks=1024, zipf_exponent=1.0)
        n = 60_000
        schedule = generate_schedule(scenario, seed=9, rank=0, requests=n)
        counts = np.bincount(schedule.lock_index, minlength=1024)
        empirical = counts / n
        analytic = zipf_head_frequencies(1024, 1.0, count=3)
        for i in range(3):
            assert empirical[i] == pytest.approx(analytic[i], rel=0.1)

    def test_uniform_keys_cover_the_table(self):
        scenario = TrafficScenario(name="t", num_locks=64, key_dist="uniform")
        schedule = generate_schedule(scenario, seed=2, rank=0, requests=6000)
        counts = np.bincount(schedule.lock_index, minlength=64)
        assert np.all(counts > 0)
        assert counts.max() / counts.min() < 3.0

    def test_cdf_is_memoized_and_shared(self):
        # Large tables (the fluid scenarios go to 2^20 keys) make the cdf a
        # one-time cost: repeat calls must hand back the same frozen array.
        a = zipf_cdf(1 << 16, 1.1)
        b = zipf_cdf(1 << 16, 1.1)
        assert a is b
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 0.5  # shared state must be immutable
        assert zipf_cdf(1 << 16, 1.0) is not a  # distinct exponent, distinct entry

    def test_memoized_cdf_feeds_every_rank_the_same_distribution(self):
        scenario = TrafficScenario(name="t", num_locks=512, zipf_exponent=1.2)
        first = generate_schedule(scenario, seed=3, rank=0, requests=400)
        again = generate_schedule(scenario, seed=3, rank=0, requests=400)
        assert np.array_equal(first.lock_index, again.lock_index)


class TestPhases:
    def _phased(self) -> TrafficScenario:
        return TrafficScenario(
            name="t",
            num_locks=64,
            mean_gap_us=4.0,
            zipf_exponent=0.5,
            fw=0.0,
            phases=(
                Phase(duration_us=200.0, rate_scale=1.0, name="warm"),
                Phase(duration_us=200.0, rate_scale=4.0, fw=1.0, zipf_exponent=2.5, name="spike"),
                Phase(duration_us=None, rate_scale=1.0, name="cool"),
            ),
        )

    def test_phase_ids_monotonic_and_complete(self):
        schedule = generate_schedule(self._phased(), seed=4, rank=0, requests=600)
        assert np.all(np.diff(schedule.phase) >= 0)
        assert set(np.unique(schedule.phase)) == {0, 1, 2}

    def test_spike_phase_is_denser_and_write_heavy(self):
        schedule = generate_schedule(self._phased(), seed=4, rank=0, requests=600)
        warm = schedule.phase == 0
        spike = schedule.phase == 1
        assert spike.sum() > 2 * warm.sum()  # 4x rate over equal durations
        assert not schedule.is_write[warm].any()  # fw=0 outside the spike
        assert schedule.is_write[spike].all()  # fw=1 inside it
        # The spike's hotter skew concentrates keys on the head.
        assert schedule.lock_index[spike].mean() < schedule.lock_index[warm].mean()

    def test_non_final_open_phase_rejected(self):
        with pytest.raises(ValueError, match="final phase"):
            TrafficScenario(
                name="t",
                phases=(Phase(duration_us=None), Phase(duration_us=10.0)),
            )


class TestValidation:
    def test_bad_arrival_kind(self):
        with pytest.raises(ValueError, match="unknown arrival"):
            TrafficScenario(name="t", arrival="diurnal")

    def test_bad_key_dist(self):
        with pytest.raises(ValueError, match="unknown key_dist"):
            TrafficScenario(name="t", key_dist="pareto")

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            TrafficScenario(name="t", cs_us=(2.0, 1.0))
        with pytest.raises(ValueError):
            TrafficScenario(name="t", mean_gap_us=0.0)
        with pytest.raises(ValueError):
            TrafficScenario(name="t", num_locks=0)
        with pytest.raises(ValueError):
            generate_schedule(TrafficScenario(name="t"), seed=1, rank=-1, requests=1)
