"""Tests for the traffic sweep engine: invariance, caching, bless, gating.

These pin the acceptance contract of the traffic subsystem: rows are
bit-identical across repeat runs, across the horizon and baseline schedulers
(fingerprint for fingerprint) and across ``--jobs`` settings, and the
``BENCH_traffic.json`` baseline round-trips through the campaign cache.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.campaign import CampaignSpec, run_campaign
from repro.bench.regress import check_traffic_manifest
from repro.traffic import engine as traffic_engine

#: Small grid reused throughout: three structurally distinct schemes on the
#: Zipf scenario at P=8 (the full 1024-entry table, few requests).
TINY = CampaignSpec(
    name="traffic-tiny-test",
    schemes=("fompi-spin", "rma-mcs", "rma-rw"),
    benchmarks=("traffic-zipf",),
    process_counts=(8,),
    fw_values=(0.1,),
    iterations=4,
    procs_per_node=4,
    seed=13,
)


def _strip_host_fields(row):
    return {k: v for k, v in row.items() if k not in ("wall_s", "sim_ops_per_s", "cached")}


def _determinism_view(rows):
    return [
        (row["case"], row["fingerprint"], row["percentiles"], row["phases"])
        for row in rows
    ]


class TestInvariance:
    def test_repeat_runs_are_bit_identical(self):
        first = run_campaign(TINY, cache=False, jobs=1)
        second = run_campaign(TINY, cache=False, jobs=1)
        assert _determinism_view(first.rows) == _determinism_view(second.rows)

    def test_schedulers_agree_fingerprint_for_fingerprint(self):
        horizon = run_campaign(TINY, cache=False, jobs=1, scheduler="horizon")
        baseline = run_campaign(TINY, cache=False, jobs=1, scheduler="baseline")
        assert len(horizon.rows) == len(baseline.rows)
        for h_row, b_row in zip(horizon.rows, baseline.rows):
            assert h_row["fingerprint"] == b_row["fingerprint"]
            assert h_row["percentiles"] == b_row["percentiles"]
            assert h_row["phases"] == b_row["phases"]

    def test_parallel_jobs_match_serial_bit_for_bit(self):
        serial = run_campaign(TINY, cache=False, jobs=1)
        parallel = run_campaign(TINY, cache=False, jobs=2)
        for s_row, p_row in zip(serial.rows, parallel.rows):
            assert _strip_host_fields(s_row) == _strip_host_fields(p_row)


class TestConformanceOnTraffic:
    def test_oracles_and_chaos_run_on_traffic_points(self):
        from repro.bench.conformance import ConformancePoint, run_conformance_point

        for perturb_seed in (0, 3):
            point = ConformancePoint(
                scheme="rma-mcs",
                benchmark="traffic-zipf",
                procs=8,
                procs_per_node=4,
                iterations=4,
                fw=0.2,
                seed=13,
                perturb_seed=perturb_seed,
                latency_jitter=0.3 if perturb_seed else 0.0,
                pause_rate=0.02 if perturb_seed else 0.0,
            )
            row = run_conformance_point(point)
            assert row["ok"], row["violations"]
            assert row["reproducible"] is True
            assert row["acquires"] > 0  # the hottest entry saw real traffic

    def test_conform_cli_accepts_traffic_selector(self):
        from repro.bench.conformance import conformance_points

        points = conformance_points(
            seeds=1,
            schemes=("rma-mcs",),
            benchmarks=("traffic-zipf",),
            process_counts=(8,),
            iterations=2,
        )
        assert {p.benchmark for p in points} == {"traffic-zipf"}


class TestEngine:
    def test_traffic_spec_narrows_the_suite(self):
        spec = traffic_engine.traffic_spec(
            schemes=("rma-rw",), scenarios=("traffic-zipf",), process_counts=(8,), iterations=3
        )
        assert spec.schemes == ("rma-rw",)
        assert spec.benchmarks == ("traffic-zipf",)
        assert spec.process_counts == (8,)

    def test_smoke_grid_is_small(self):
        spec = traffic_engine.traffic_spec(smoke=True)
        assert spec.schemes == traffic_engine.SMOKE_SCHEMES
        assert spec.process_counts == traffic_engine.SMOKE_PROCS

    def test_run_traffic_merges_scheduler_rows(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_EPOCH", "traffic-engine-test")
        report = traffic_engine.run_traffic(
            TINY, schedulers=("horizon", "baseline"), jobs=1, cache_dir=tmp_path
        )
        assert report.points == 6  # 3 schemes x 2 schedulers
        schedulers = {row["scheduler"] for row in report.rows}
        assert schedulers == {"horizon", "baseline"}
        # Baseline-scheduler cases are distinct rows in a merged manifest.
        cases = [row["case"] for row in report.rows]
        assert len(set(cases)) == 6

    def test_bless_round_trips_through_the_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_EPOCH", "traffic-bless-test")
        baseline = tmp_path / "BENCH_traffic.json"
        report = traffic_engine.bless_traffic(
            baseline,
            spec=TINY,
            schedulers=("horizon", "baseline"),
            jobs=1,
            cache_dir=tmp_path / "cache",
        )
        payload = json.loads(baseline.read_text())
        assert payload["suite"] == "traffic"
        assert payload["timing"]["warm_cache_hits"] == report.points == 6
        assert not check_traffic_manifest(payload)  # sanity gate passes

    def test_empty_scheduler_list_rejected(self):
        with pytest.raises(ValueError, match="at least one scheduler"):
            traffic_engine.run_traffic(TINY, schedulers=())


class TestTrafficManifestGate:
    def _payload(self, schemes=("a", "b", "c"), schedulers=("horizon", "baseline")):
        rows = []
        for scheme in schemes:
            for scheduler in schedulers:
                rows.append(
                    {
                        "case": f"{scheme}-traffic-zipf-p8-{scheduler}",
                        "scheme": scheme,
                        "scheduler": scheduler,
                        "fingerprint": "ab" * 32,
                        "percentiles": {"e2e_p99_us": 1.0},
                    }
                )
        return {"suite": "traffic", "rows": rows}

    def test_healthy_manifest_passes(self):
        assert check_traffic_manifest(self._payload()) == []

    def test_empty_manifest_is_hard(self):
        findings = check_traffic_manifest({"rows": []})
        assert [f.level for f in findings] == ["hard"]

    def test_missing_percentiles_is_hard(self):
        payload = self._payload()
        del payload["rows"][0]["percentiles"]
        findings = check_traffic_manifest(payload)
        assert any(f.level == "hard" and f.field == "percentiles" for f in findings)

    def test_missing_fingerprint_is_hard(self):
        payload = self._payload()
        payload["rows"][0]["fingerprint"] = ""
        findings = check_traffic_manifest(payload)
        assert any(f.level == "hard" and f.field == "fingerprint" for f in findings)

    def test_too_few_schemes_fails(self):
        findings = check_traffic_manifest(self._payload(schemes=("a", "b")))
        assert any(f.level == "fail" and f.field == "schemes" for f in findings)

    def test_single_scheduler_fails(self):
        findings = check_traffic_manifest(self._payload(schedulers=("horizon",)))
        assert any(f.level == "fail" and f.field == "schedulers" for f in findings)


class TestTopKeys:
    def _spec(self):
        return traffic_engine.traffic_spec(
            schemes=("fompi-spin",), scenarios=("traffic-zipf",),
            process_counts=(8,), iterations=16,
        )

    def test_rows_rank_the_zipf_head_first(self):
        rows = traffic_engine.top_key_rows(self._spec(), top_keys=3)
        assert [r["rank"] for r in rows] == [1, 2, 3]
        assert rows[0]["key"] == 0  # Zipf head
        shares = [r["share"] for r in rows]
        assert shares == sorted(shares, reverse=True)
        assert all(0.0 < s <= 1.0 for s in shares)
        assert all(r["requests"] > 0 for r in rows)

    def test_report_is_pure_analysis(self):
        # Same rows on repeat calls — no simulation, no cache, no RNG drift.
        first = traffic_engine.top_key_rows(self._spec(), top_keys=5)
        second = traffic_engine.top_key_rows(self._spec(), top_keys=5)
        assert first == second

    def test_one_block_per_scenario_and_p(self):
        spec = traffic_engine.traffic_spec(
            schemes=("fompi-spin",),
            scenarios=("traffic-zipf", "traffic-uniform"),
            process_counts=(8, 16),
            iterations=8,
        )
        rows = traffic_engine.top_key_rows(spec, top_keys=2)
        blocks = {(r["scenario"], r["P"]) for r in rows}
        assert blocks == {
            ("traffic-zipf", 8), ("traffic-zipf", 16),
            ("traffic-uniform", 8), ("traffic-uniform", 16),
        }
        assert len(rows) == 8  # 2 keys per block

    def test_non_positive_count_rejected(self):
        with pytest.raises(ValueError, match="top_keys"):
            traffic_engine.top_key_rows(self._spec(), top_keys=0)


class TestDisplayRows:
    def test_display_rows_flatten_percentiles(self):
        rows = [
            {
                "case": "x",
                "P": 8,
                "scheduler": "horizon",
                "percentiles": {"e2e_p50_us": 1.0, "e2e_p99_us": 2.0,
                                "e2e_p999_us": 3.0, "acquire_p99_us": 0.5,
                                "offered_per_s": 1000.0},
                "phases": [{"phase": 0}],
                "cached": True,
            }
        ]
        display = traffic_engine.traffic_display_rows(rows)
        assert display[0]["e2e_p99_us"] == 2.0
        assert display[0]["phases"] == 1
        assert display[0]["cached"] == "yes"

    def test_export_flattening(self):
        from repro.bench.export import flatten_traffic_rows

        flat = flatten_traffic_rows(
            [{"case": "x", "percentiles": {"e2e_p99_us": 2.0}, "phases": [{}, {}]}]
        )
        assert flat == [{"case": "x", "e2e_p99_us": 2.0, "num_phases": 2}]
