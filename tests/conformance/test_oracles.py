"""Unit and end-to-end tests for the live safety/fairness oracles."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.bench.harness import run_lock_benchmark_detailed
from repro.bench.workloads import LockBenchConfig
from repro.core.lock_base import LockHandle, LockSpec, RWLockSpec, RWLockHandle
from repro.rma.ops import RMACall
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from repro.verification.oracles import (
    MODE_READ,
    MODE_WRITE,
    LockOracleObserver,
    ObservedLock,
    ObservedRWLock,
    observe_lock,
)


class TestObserverScripted:
    """Drive the oracle with hand-scripted event sequences."""

    def test_clean_exclusive_sequence_passes(self):
        obs = LockOracleObserver()
        obs.on_run_start(2)
        for rank in (0, 1):
            obs.wait_start(rank, MODE_WRITE, 0.0)
            obs.acquired(rank, MODE_WRITE, 1.0)
            obs.released(rank, MODE_WRITE, 2.0)
        obs.on_run_end()
        report = obs.report()
        assert report.ok
        assert report.acquires == 2
        assert report.releases == 2

    def test_two_writers_inside_is_flagged(self):
        obs = LockOracleObserver()
        obs.on_run_start(2)
        obs.wait_start(0, MODE_WRITE, 0.0)
        obs.acquired(0, MODE_WRITE, 1.0)
        obs.wait_start(1, MODE_WRITE, 0.5)
        obs.acquired(1, MODE_WRITE, 1.5)
        report = obs.report()
        assert not report.ok
        assert any(v.oracle == "mutual-exclusion" for v in report.violations)

    def test_reader_during_writer_is_flagged(self):
        obs = LockOracleObserver()
        obs.on_run_start(2)
        obs.wait_start(0, MODE_WRITE, 0.0)
        obs.acquired(0, MODE_WRITE, 1.0)
        obs.wait_start(1, MODE_READ, 0.5)
        obs.acquired(1, MODE_READ, 1.5)
        report = obs.report()
        assert any(v.oracle == "mutual-exclusion" for v in report.violations)

    def test_readers_coexist_without_violation(self):
        obs = LockOracleObserver()
        obs.on_run_start(3)
        for rank in (0, 1, 2):
            obs.wait_start(rank, MODE_READ, 0.0)
            obs.acquired(rank, MODE_READ, 1.0)
        for rank in (0, 1, 2):
            obs.released(rank, MODE_READ, 2.0)
        obs.on_run_end()
        report = obs.report()
        assert report.ok
        assert report.max_concurrent_readers == 3

    def test_release_without_acquire_is_flagged(self):
        obs = LockOracleObserver()
        obs.on_run_start(1)
        obs.released(0, MODE_WRITE, 0.0)
        assert any(v.oracle == "handoff" for v in obs.report().violations)

    def test_mode_mismatch_is_flagged(self):
        obs = LockOracleObserver()
        obs.on_run_start(1)
        obs.wait_start(0, MODE_READ, 0.0)
        obs.acquired(0, MODE_READ, 1.0)
        obs.released(0, MODE_WRITE, 2.0)
        assert any("released as" in v.detail for v in obs.report().violations)

    def test_reentrant_acquire_is_flagged(self):
        obs = LockOracleObserver()
        obs.on_run_start(1)
        obs.wait_start(0, MODE_WRITE, 0.0)
        obs.acquired(0, MODE_WRITE, 1.0)
        obs.wait_start(0, MODE_WRITE, 2.0)
        assert any("re-entrant" in v.detail for v in obs.report().violations)

    def test_unreleased_holder_at_run_end_is_flagged(self):
        obs = LockOracleObserver()
        obs.on_run_start(1)
        obs.wait_start(0, MODE_WRITE, 0.0)
        obs.acquired(0, MODE_WRITE, 1.0)
        obs.on_run_end()
        assert any("still holds" in v.detail for v in obs.report().violations)

    def test_violation_flood_is_capped(self):
        obs = LockOracleObserver(max_violations=3)
        obs.on_run_start(1)
        for _ in range(10):
            obs.released(0, MODE_WRITE, 0.0)
        assert len(obs.report().violations) == 3


class TestBypassCounting:
    def test_bypass_counts_from_ordering_rmw(self):
        """Foreign entries before the waiter's first RMW do not count."""
        obs = LockOracleObserver(bypass_bound=1)
        obs.on_run_start(3)
        obs.wait_start(0, MODE_WRITE, 0.0)
        # Two foreign entries while rank 0 has not yet reached its FAO: a
        # FIFO scheme owes it nothing yet (it has no queue position).
        for _ in range(2):
            obs.wait_start(1, MODE_WRITE, 0.0)
            obs.on_rmw(1, RMACall.FAO)
            obs.acquired(1, MODE_WRITE, 1.0)
            obs.released(1, MODE_WRITE, 2.0)
        obs.on_rmw(0, RMACall.FAO)  # rank 0 is ordered from here on
        obs.wait_start(2, MODE_WRITE, 0.0)
        obs.on_rmw(2, RMACall.FAO)
        obs.acquired(2, MODE_WRITE, 3.0)
        obs.released(2, MODE_WRITE, 4.0)
        obs.acquired(0, MODE_WRITE, 5.0)
        report = obs.report()
        assert report.max_bypass == 1
        assert report.ok, [str(v) for v in report.violations]

    def test_bound_violation_is_flagged(self):
        obs = LockOracleObserver(bypass_bound=0)
        obs.on_run_start(2)
        obs.wait_start(0, MODE_WRITE, 0.0)
        obs.on_rmw(0, RMACall.FAO)
        obs.wait_start(1, MODE_WRITE, 0.0)
        obs.on_rmw(1, RMACall.FAO)
        obs.acquired(1, MODE_WRITE, 1.0)
        obs.released(1, MODE_WRITE, 2.0)
        obs.acquired(0, MODE_WRITE, 3.0)
        report = obs.report()
        assert not report.ok
        assert any(v.oracle == "fairness" for v in report.violations)

    def test_without_rmw_falls_back_to_wait_start(self):
        obs = LockOracleObserver(bypass_bound=None)
        obs.on_run_start(2)
        obs.wait_start(0, MODE_WRITE, 0.0)
        obs.wait_start(1, MODE_WRITE, 0.0)
        obs.acquired(1, MODE_WRITE, 1.0)
        obs.released(1, MODE_WRITE, 2.0)
        obs.acquired(0, MODE_WRITE, 3.0)
        assert obs.report().max_bypass == 1


# --------------------------------------------------------------------------- #
# End-to-end: a deliberately broken lock must fail the oracles.
# --------------------------------------------------------------------------- #

@dataclass(frozen=True)
class _BrokenTestThenSetSpec(LockSpec):
    """Non-atomic test-then-set: Get then Put with a window in between."""

    num_processes: int

    @property
    def window_words(self) -> int:
        return 1

    def init_window(self, rank: int) -> Mapping[int, int]:
        return {0: 0}

    def make(self, ctx):
        return _BrokenTestThenSetHandle(ctx)


class _BrokenTestThenSetHandle(LockHandle):
    def __init__(self, ctx):
        self.ctx = ctx

    def acquire(self) -> None:
        ctx = self.ctx
        while True:
            value = ctx.get(0, 0)
            ctx.flush(0)
            if value == 0:
                # The race: another rank can pass the same test before our
                # put lands (the broken_test_and_set_model of lock_models,
                # but running on the real simulator this time).  The compute
                # widens the test-to-set window so the simulator's causal
                # schedule actually interleaves a competitor into it.
                ctx.compute(2.0)
                ctx.put(1, 0, 0)
                ctx.flush(0)
                return
            ctx.spin_while(0, 0, lambda v: v != 0)

    def release(self) -> None:
        self.ctx.put(0, 0, 0)
        self.ctx.flush(0)


class TestBrokenLockEndToEnd:
    def test_oracle_catches_mutual_exclusion_violation(self):
        # wcsb, not ecsb: an empty critical section has zero width in the
        # execution order, so overlapping holders are only observable when
        # the CS body itself issues operations (wcsb: counter + compute).
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        config = LockBenchConfig(
            machine=machine, scheme="d-mcs", benchmark="wcsb", iterations=6, seed=2
        )
        observer = LockOracleObserver()
        # Substitute the broken spec for the registered scheme's.
        run_lock_benchmark_detailed(
            config,
            spec=_BrokenTestThenSetSpec(num_processes=4),
            is_rw=False,
            observer=observer,
        )
        report = observer.report()
        assert not report.ok
        assert any(v.oracle == "mutual-exclusion" for v in report.violations)

    def test_observer_does_not_change_the_fingerprint(self):
        """Observed and unobserved runs are bit-identical (oracles watch only)."""
        from repro.bench.campaign import run_result_sha

        machine = Machine.cluster(nodes=2, procs_per_node=4)
        config = LockBenchConfig(
            machine=machine, scheme="rma-rw", benchmark="wcsb", iterations=5, fw=0.2, seed=7
        )
        _, bare = run_lock_benchmark_detailed(config)
        _, observed = run_lock_benchmark_detailed(config, observer=LockOracleObserver())
        assert run_result_sha(bare) == run_result_sha(observed)


class TestObservedWrappers:
    def test_observe_lock_picks_rw_wrapper(self):
        machine = Machine.single_node(2)
        from repro.api.registry import get_scheme

        rw_spec = get_scheme("fompi-rw").build(machine)
        plain_spec = get_scheme("d-mcs").build(machine)
        seen = {}

        def program(ctx):
            obs = LockOracleObserver()
            seen[("rw", ctx.rank)] = type(observe_lock(rw_spec.make(ctx), ctx, obs))
            seen[("plain", ctx.rank)] = type(observe_lock(plain_spec.make(ctx), ctx, obs))

        SimRuntime(
            machine, window_words=max(rw_spec.window_words, plain_spec.window_words)
        ).run(program, window_init=rw_spec.init_window)
        assert seen[("rw", 0)] is ObservedRWLock
        assert seen[("plain", 0)] is ObservedLock

    def test_forced_reader_overlap_is_recorded(self):
        """Readers holding the CS together register as coexistence."""
        machine = Machine.single_node(4)
        from repro.api.registry import get_scheme

        spec: RWLockSpec = get_scheme("fompi-rw").build(machine)
        observer = LockOracleObserver()
        flag = spec.window_words

        def program(ctx):
            lock: RWLockHandle = observe_lock(spec.make(ctx), ctx, observer)
            ctx.barrier()
            if ctx.rank == 0:
                # Writer enters only after all three readers are done.
                ctx.spin_while(0, flag, lambda v: v < 3)
                with lock.writing():
                    ctx.compute(1.0)
                return
            with lock.reading():
                # Stay inside until every reader has entered at least once.
                from repro.rma.ops import AtomicOp

                ctx.fao(1, 0, flag + 1, AtomicOp.SUM)
                ctx.flush(0)
                ctx.spin_while(0, flag + 1, lambda v: v < 3)
            from repro.rma.ops import AtomicOp

            ctx.accumulate(1, 0, flag, AtomicOp.SUM)
            ctx.flush(0)

        runtime = SimRuntime(machine, window_words=spec.window_words + 2, observer=observer)
        runtime.run(program, window_init=spec.init_window)
        report = observer.report()
        assert report.ok, [str(v) for v in report.violations]
        assert report.max_concurrent_readers == 3
        assert report.write_acquires == 1
