"""Tests for the conformance & chaos engine (repro.bench.conformance)."""

from __future__ import annotations

import pytest

from repro.api.registry import register_scheme, unregister
from repro.bench.campaign import ResultCache, get_campaign, run_result_sha
from repro.bench.conformance import (
    ConformancePoint,
    conformance_points,
    run_conformance,
    run_conformance_point,
    write_conformance_json,
)
from repro.bench.harness import run_lock_benchmark_detailed
from repro.bench.workloads import LockBenchConfig
from repro.topology.builder import cached_machine


class TestGridExpansion:
    def test_conformance_selector_includes_adapter_schemes(self):
        spec = get_campaign("conformance")
        schemes = spec.resolve_schemes()
        assert "striped-rw" in schemes  # harness=False, but adapter-equipped
        assert "rma-rw" in schemes and "d-mcs" in schemes
        assert len(schemes) >= 10

    def test_points_cross_seeds_with_one_control(self):
        points = conformance_points(schemes=["d-mcs"], benchmarks=["wcsb"],
                                    process_counts=[8], seeds=3)
        assert len(points) == 4  # control + 3 chaos seeds
        controls = [p for p in points if not p.perturbed]
        assert len(controls) == 1
        assert controls[0].perturbation() is None
        assert all(p.perturbation() is not None for p in points if p.perturbed)

    def test_case_names_are_unique(self):
        points = conformance_points(seeds=2)
        cases = [p.case for p in points]
        assert len(cases) == len(set(cases))

    def test_third_party_scheme_joins_the_sweep(self):
        from repro.core.lock_base import LockSpec

        class _NullSpec(LockSpec):
            @property
            def window_words(self):
                return 1

            def init_window(self, rank):
                return {}

            def make(self, ctx):  # pragma: no cover - grid-expansion only
                raise NotImplementedError

        @register_scheme("conform-test-lock", category="custom", replace=True)
        def _build(machine):
            return _NullSpec()

        try:
            points = conformance_points(benchmarks=["wcsb"], process_counts=[8], seeds=1)
            assert any(p.scheme == "conform-test-lock" for p in points)
        finally:
            unregister("scheme", "conform-test-lock")

    def test_negative_seeds_rejected(self):
        with pytest.raises(ValueError):
            conformance_points(seeds=-1)

    def test_rw_schemes_sweep_the_full_fw_axis(self):
        from dataclasses import replace

        spec = replace(get_campaign("conformance"), fw_values=(0.1, 0.5))
        points = conformance_points(spec, schemes=["rma-rw", "d-mcs"],
                                    benchmarks=["wcsb"], process_counts=[8], seeds=1)
        rw_fws = {p.fw for p in points if p.scheme == "rma-rw"}
        mcs_fws = {p.fw for p in points if p.scheme == "d-mcs"}
        assert rw_fws == {0.1, 0.5}  # RW schemes cover every fw value
        assert mcs_fws == {0.1}     # non-RW schemes ignore fw: first value only
        cases = [p.case for p in points]
        assert len(cases) == len(set(cases))  # fw is part of the case name


class TestPointExecution:
    def test_control_point_fingerprint_matches_plain_harness_run(self):
        """The unperturbed control runs the exact golden-path schedule."""
        point = ConformancePoint(scheme="rma-mcs", benchmark="wcsb", procs=8,
                                 procs_per_node=4, iterations=4, seed=5)
        row = run_conformance_point(point, recheck=False)
        config = LockBenchConfig(
            machine=cached_machine(8, 4, "xc30"), scheme="rma-mcs",
            benchmark="wcsb", iterations=4, fw=0.2, seed=5,
        )
        _, raw = run_lock_benchmark_detailed(config)
        assert row["fingerprint"] == run_result_sha(raw)
        assert row["ok"]
        assert row["reproducible"] is None  # recheck was off

    def test_recheck_certifies_reproducibility(self):
        point = ConformancePoint(scheme="ticket", benchmark="wcsb", procs=8,
                                 procs_per_node=4, iterations=4, perturb_seed=2,
                                 latency_jitter=0.3, rank_slowdown=1.0, pause_rate=0.02)
        row = run_conformance_point(point)
        assert row["reproducible"] is True
        assert row["ok"]
        assert row["bypass_bound"] == 7  # declared FIFO bound at P=8
        assert row["max_bypass"] <= 7

    def test_striped_adapter_point_runs(self):
        point = ConformancePoint(scheme="striped-rw", benchmark="wcsb", procs=8,
                                 procs_per_node=4, iterations=4, perturb_seed=1,
                                 latency_jitter=0.3, rank_slowdown=1.0, pause_rate=0.02)
        row = run_conformance_point(point, recheck=False)
        assert row["ok"], row["violations"]
        assert row["acquires"] > 0

    def test_crashing_scheme_yields_failing_row_not_a_crash(self):
        from dataclasses import dataclass
        from typing import Mapping

        from repro.core.lock_base import LockHandle, LockSpec

        @dataclass(frozen=True)
        class _CrashSpec(LockSpec):
            @property
            def window_words(self) -> int:
                return 1

            def init_window(self, rank: int) -> Mapping[int, int]:
                return {}

            def make(self, ctx):
                class _Crash(LockHandle):
                    def acquire(self) -> None:
                        raise KeyError("third-party bug")

                    def release(self) -> None:  # pragma: no cover
                        pass

                return _Crash()

        @register_scheme("conform-crash-lock", category="custom", replace=True)
        def _build(machine):
            return _CrashSpec()

        try:
            point = ConformancePoint(scheme="conform-crash-lock", benchmark="wcsb",
                                     procs=4, procs_per_node=4, iterations=2)
            row = run_conformance_point(point, recheck=False)
            assert not row["ok"]
            assert any("KeyError" in str(v) for v in row["violations"])
        finally:
            unregister("scheme", "conform-crash-lock")

    def test_deadlocking_scheme_yields_failing_row_not_a_crash(self):
        from dataclasses import dataclass
        from typing import Mapping

        from repro.core.lock_base import LockHandle, LockSpec

        @dataclass(frozen=True)
        class _StuckSpec(LockSpec):
            @property
            def window_words(self) -> int:
                return 1

            def init_window(self, rank: int) -> Mapping[int, int]:
                return {0: 0}

            def make(self, ctx):
                class _Stuck(LockHandle):
                    def acquire(self) -> None:
                        ctx.spin_while(0, 0, lambda v: v == 0)  # never satisfied

                    def release(self) -> None:  # pragma: no cover
                        pass

                return _Stuck()

        @register_scheme("conform-stuck-lock", category="custom", replace=True)
        def _build(machine):
            return _StuckSpec()

        try:
            point = ConformancePoint(scheme="conform-stuck-lock", benchmark="wcsb",
                                     procs=4, procs_per_node=4, iterations=2)
            row = run_conformance_point(point, recheck=False)
            assert not row["ok"]
            assert any("deadlock" in str(v) for v in row["violations"])
            assert row["fingerprint"] is None
        finally:
            unregister("scheme", "conform-stuck-lock")


class TestSweepAndCache:
    @pytest.fixture
    def cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_EPOCH", "conform-test-epoch")
        return ResultCache(tmp_path, namespace="conformance")

    def test_sweep_reports_and_caches(self, cache):
        report = run_conformance(schemes=["d-mcs", "fompi-rw"], benchmarks=["wcsb"],
                                 process_counts=[8], seeds=1, jobs=1, cache=cache,
                                 iterations=3)
        assert report.points == 4  # 2 schemes x (control + 1 seed)
        assert report.ok
        assert report.cache_misses == 4 and report.cache_hits == 0

        again = run_conformance(schemes=["d-mcs", "fompi-rw"], benchmarks=["wcsb"],
                                process_counts=[8], seeds=1, jobs=1, cache=cache,
                                iterations=3)
        assert again.cache_hits == 4 and again.cache_misses == 0
        strip = lambda rows: [{k: v for k, v in r.items() if k != "cached"} for r in rows]
        assert strip(again.rows) == strip(report.rows)

    def test_uncertified_rows_not_served_to_rechecking_sweeps(self, cache):
        """--no-recheck rows carry no determinism certificate; a recheck=True
        sweep must recompute them instead of silently skipping the contract."""
        kwargs = dict(schemes=["ticket"], benchmarks=["wcsb"], process_counts=[8],
                      seeds=1, jobs=1, cache=cache, iterations=3)
        fast = run_conformance(recheck=False, **kwargs)
        assert all(r["reproducible"] is None for r in fast.rows)

        certified = run_conformance(recheck=True, **kwargs)
        assert certified.cache_hits == 0  # uncertified rows were not reused
        assert all(r["reproducible"] is True for r in certified.rows)

        # The certified rows replace the cached ones; a fast sweep can reuse
        # them (extra certificate does no harm) and so can a rechecking one.
        fast_again = run_conformance(recheck=False, **kwargs)
        assert fast_again.cache_misses == 0
        certified_again = run_conformance(recheck=True, **kwargs)
        assert certified_again.cache_misses == 0

    def test_parallel_equals_serial(self, cache):
        kwargs = dict(schemes=["ticket"], benchmarks=["wcsb"], process_counts=[8],
                      seeds=2, iterations=3, cache=False)
        serial = run_conformance(jobs=1, **kwargs)
        parallel = run_conformance(jobs=2, **kwargs)
        strip = lambda rows: [{k: v for k, v in r.items() if k != "cached"} for r in rows]
        assert strip(serial.rows) == strip(parallel.rows)

    def test_scheme_verdicts_aggregate(self):
        report = run_conformance(schemes=["d-mcs"], benchmarks=["wcsb"],
                                 process_counts=[8], seeds=1, jobs=1, cache=False,
                                 iterations=3)
        verdicts = report.scheme_verdicts()
        assert len(verdicts) == 1
        assert verdicts[0]["scheme"] == "d-mcs"
        assert verdicts[0]["verdict"] == "ok"
        assert verdicts[0]["reproducible"] == "yes"

    def test_report_json_round_trip(self, tmp_path):
        import json

        report = run_conformance(schemes=["ticket"], benchmarks=["wcsb"],
                                 process_counts=[8], seeds=1, jobs=1, cache=False,
                                 iterations=3, recheck=False)
        path = write_conformance_json(report, tmp_path / "report.json")
        payload = json.loads(path.read_text())
        assert payload["suite"] == "conformance"
        assert payload["ok"] is True
        assert len(payload["rows"]) == 2
        assert payload["schemes"][0]["scheme"] == "ticket"

    def test_campaign_namespace_isolated_from_conformance(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_EPOCH", "ns-test")
        campaign_cache = ResultCache(tmp_path)
        conformance_cache = ResultCache(tmp_path, namespace="conformance")
        assert campaign_cache.dir != conformance_cache.dir
        point = ConformancePoint(scheme="ticket", benchmark="wcsb", procs=8)
        conformance_cache.put(point, {"ok": True})
        assert campaign_cache.get(point) is None
        assert conformance_cache.get(point) == {"ok": True}
