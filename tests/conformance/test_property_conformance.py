"""Hypothesis property tests for the conformance layer (ISSUE 4 satellite).

Two contracts, sampled over the configuration space instead of hand-picked:

* determinism — for *any* perturbation magnitudes and seed, re-running the
  same configuration reproduces the run fingerprint and the oracle verdict
  bit-for-bit;
* robustness — *any* writer-fraction/iteration combination accepted by
  ``LockBenchConfig`` validation runs every registered scheme to completion
  (no crash, no oracle violation) at a small machine size.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.registry import scheme_names
from repro.bench.campaign import run_result_sha
from repro.bench.harness import run_lock_benchmark_detailed
from repro.bench.workloads import LockBenchConfig
from repro.rma.perturbation import PerturbationModel
from repro.topology.builder import cached_machine
from repro.verification.oracles import LockOracleObserver

#: Small-but-multi-node machine reused across examples (builder memoizes it).
PROCS, PPN = 8, 4

perturbation_models = st.builds(
    PerturbationModel,
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    latency_jitter=st.floats(0.0, 0.5, allow_nan=False),
    rank_slowdown=st.floats(0.0, 2.0, allow_nan=False),
    pause_rate=st.floats(0.0, 0.1, allow_nan=False),
)

SLOW_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@SLOW_SETTINGS
@given(model=perturbation_models, scheme=st.sampled_from(["rma-rw", "d-mcs"]))
def test_fingerprint_and_verdict_invariant_under_rerun(model, scheme):
    config = LockBenchConfig(
        machine=cached_machine(PROCS, PPN, "xc30"),
        scheme=scheme,
        benchmark="wcsb",
        iterations=3,
        fw=0.2,
        seed=4,
    )

    def run():
        observer = LockOracleObserver()
        _, raw = run_lock_benchmark_detailed(
            config, perturbation=model, observer=observer
        )
        return run_result_sha(raw), observer.report().summary()

    first_sha, first_verdict = run()
    second_sha, second_verdict = run()
    assert first_sha == second_sha
    assert first_verdict == second_verdict
    assert first_verdict["ok"], first_verdict["violations"]


@SLOW_SETTINGS
@given(
    fw=st.floats(0.0, 1.0, allow_nan=False),
    iterations=st.integers(min_value=1, max_value=4),
    scheme=st.sampled_from(sorted(scheme_names(harness=True))),
)
def test_any_valid_config_runs_every_scheme_cleanly(fw, iterations, scheme):
    """fw/iterations round-trip through validation and crash no scheme."""
    config = LockBenchConfig(
        machine=cached_machine(PROCS, PPN, "xc30"),
        scheme=scheme,
        benchmark="wcsb",
        iterations=iterations,
        fw=fw,
        seed=2,
    )
    assert config.fw == fw and config.iterations == iterations
    observer = LockOracleObserver()
    bench, _ = run_lock_benchmark_detailed(config, observer=observer)
    assert bench.total_acquires == iterations * PROCS
    report = observer.report()
    assert report.ok, [str(v) for v in report.violations]
    assert report.acquires == iterations * PROCS
