"""Tests for the command-line interface (`python -m repro ...`)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.command == "figures"
        assert args.names == []

    def test_bench_arguments(self):
        args = build_parser().parse_args(
            ["bench", "--scheme", "rma-mcs", "--benchmark", "sob", "--procs", "16", "--t-l", "2", "4"]
        )
        assert args.scheme == "rma-mcs"
        assert args.t_l == [2, 4]

    def test_bench_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--scheme", "bogus"])


class TestCommands:
    def test_figures_unknown_name_errors(self, capsys):
        code = main(["figures", "99z"])
        assert code == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_figures_single_small_sweep(self, capsys):
        code = main(["figures", "4a", "--procs", "4", "8", "--iterations", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4a" in out
        assert "P" in out

    def test_figures_ablation(self, capsys):
        code = main(["figures", "ablation-locality", "--procs", "4", "--iterations", "4"])
        assert code == 0
        assert "ablation-locality" in capsys.readouterr().out.lower()

    def test_bench_runs_and_prints_metrics(self, capsys):
        code = main([
            "bench", "--scheme", "d-mcs", "--benchmark", "ecsb",
            "--procs", "8", "--procs-per-node", "4", "--iterations", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput_mln_s" in out
        assert "RMA operations issued" in out

    def test_bench_rma_rw_with_thresholds(self, capsys):
        code = main([
            "bench", "--scheme", "rma-rw", "--procs", "8", "--procs-per-node", "4",
            "--iterations", "5", "--fw", "0.1", "--t-dc", "4", "--t-r", "8", "--t-l", "2", "2",
        ])
        assert code == 0
        assert "rma-rw" in capsys.readouterr().out

    def test_info(self, capsys):
        code = main(["info", "--procs", "16", "--procs-per-node", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Machine:" in out
        assert "Portability" in out
        assert "fortran-2008" in out


class TestFigureExport:
    def test_output_dir_writes_csv_and_json(self, tmp_path, capsys):
        code = main([
            "figures", "4a", "--procs", "4", "--iterations", "4",
            "--output-dir", str(tmp_path / "out"),
        ])
        assert code == 0
        assert (tmp_path / "out" / "figure_4a.csv").exists()
        assert (tmp_path / "out" / "figure_4a.json").exists()
        assert "saved:" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_mcs_scheme(self, capsys):
        from repro.cli import main

        code = main(["trace", "--scheme", "rma-mcs", "--procs", "8", "--procs-per-node", "4", "--iterations", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "operation share by distance" in out
        assert "hottest remote targets" in out

    def test_trace_rw_scheme_with_activity_strip(self, capsys):
        from repro.cli import main

        code = main([
            "trace", "--scheme", "rma-rw", "--procs", "8", "--procs-per-node", "4",
            "--iterations", "3", "--fw", "0.5", "--activity",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "virtual time 0" in out  # the per-rank activity strip header


class TestVerifyCommand:
    def test_verify_reports_all_models(self, capsys):
        from repro.cli import main

        code = main(["verify", "--procs", "2", "--rounds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MCS / D-MCS" in out
        assert "ticket lock" in out
        assert "test-and-set" in out
        assert "EXCEEDED" in out      # the TAS model exceeds the FIFO bypass bound
        assert out.count("OK") >= 4   # safety + fairness of the FIFO designs


class TestRelatedFigureNames:
    def test_related_mcs_figure_runs(self, capsys):
        from repro.cli import main

        code = main(["figures", "related-rw", "--procs", "4", "8", "--iterations", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure related-rw" in out
        assert "numa-rw" in out


class TestSchedulerFlag:
    def test_bench_accepts_scheduler_choices(self):
        args = build_parser().parse_args(["bench", "--scheduler", "baseline"])
        assert args.scheduler == "baseline"
        args = build_parser().parse_args(["figures", "4a", "--scheduler", "baseline"])
        assert args.scheduler == "baseline"

    def test_bench_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--scheduler", "bogus"])

    def test_bench_baseline_scheduler_output_is_identical(self, capsys):
        argv = ["bench", "--scheme", "rma-rw", "--procs", "8", "--procs-per-node", "4",
                "--iterations", "5", "--t-l", "2", "2"]
        assert main(argv + ["--scheduler", "horizon"]) == 0
        horizon_out = capsys.readouterr().out
        assert main(argv + ["--scheduler", "baseline"]) == 0
        baseline_out = capsys.readouterr().out
        assert horizon_out == baseline_out

    def test_figures_scheduler_flag_runs_and_restores_default(self, capsys):
        code = main(["figures", "4a", "--procs", "4", "--iterations", "4",
                     "--scheduler", "baseline"])
        assert code == 0
        assert "Figure 4a" in capsys.readouterr().out
        # The process-wide default must come back to the fast scheduler for
        # any later in-process caller (the figures command uses a context
        # manager, not a permanent switch).
        from repro.bench.harness import default_scheduler

        assert default_scheduler() == "horizon"


class TestGeneratedThresholdFlags:
    def test_t_w_flag_is_generated_from_registry(self, capsys):
        code = main([
            "bench", "--scheme", "rma-rw", "--procs", "8", "--procs-per-node", "4",
            "--iterations", "4", "--t-l", "2", "2", "--t-w", "3",
        ])
        assert code == 0
        assert "rma-rw" in capsys.readouterr().out

    def test_help_names_the_schemes_using_each_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--help"])
        out = capsys.readouterr().out
        assert "--t-dc" in out and "--t-r" in out and "--t-l" in out and "--t-w" in out
        assert "schemes: rma-rw" in out

    def test_figures_unknown_name_suggests_close_match(self, capsys):
        code = main(["figures", "4x"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown figure" in err
        assert "Did you mean" in err
