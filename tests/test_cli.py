"""Tests for the command-line interface (`python -m repro ...`)."""

from __future__ import annotations

import pytest

from repro.api.registry import scheme_names
from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figures_defaults(self):
        args = build_parser().parse_args(["figures"])
        assert args.command == "figures"
        assert args.names == []

    def test_bench_arguments(self):
        args = build_parser().parse_args(
            ["bench", "--scheme", "rma-mcs", "--benchmark", "sob", "--procs", "16", "--t-l", "2", "4"]
        )
        assert args.scheme == "rma-mcs"
        assert args.t_l == [2, 4]

    def test_bench_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--scheme", "bogus"])


class TestCommands:
    def test_figures_unknown_name_errors(self, capsys):
        code = main(["figures", "99z"])
        assert code == 2
        assert "unknown figure" in capsys.readouterr().err

    def test_figures_single_small_sweep(self, capsys):
        code = main(["figures", "4a", "--procs", "4", "8", "--iterations", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4a" in out
        assert "P" in out

    def test_figures_ablation(self, capsys):
        code = main(["figures", "ablation-locality", "--procs", "4", "--iterations", "4"])
        assert code == 0
        assert "ablation-locality" in capsys.readouterr().out.lower()

    def test_bench_runs_and_prints_metrics(self, capsys):
        code = main([
            "bench", "--scheme", "d-mcs", "--benchmark", "ecsb",
            "--procs", "8", "--procs-per-node", "4", "--iterations", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput_mln_s" in out
        assert "RMA operations issued" in out

    def test_bench_rma_rw_with_thresholds(self, capsys):
        code = main([
            "bench", "--scheme", "rma-rw", "--procs", "8", "--procs-per-node", "4",
            "--iterations", "5", "--fw", "0.1", "--t-dc", "4", "--t-r", "8", "--t-l", "2", "2",
        ])
        assert code == 0
        assert "rma-rw" in capsys.readouterr().out

    def test_info(self, capsys):
        code = main(["info", "--procs", "16", "--procs-per-node", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Machine:" in out
        assert "Portability" in out
        assert "fortran-2008" in out


class TestFigureExport:
    def test_output_dir_writes_csv_and_json(self, tmp_path, capsys):
        code = main([
            "figures", "4a", "--procs", "4", "--iterations", "4",
            "--output-dir", str(tmp_path / "out"),
        ])
        assert code == 0
        assert (tmp_path / "out" / "figure_4a.csv").exists()
        assert (tmp_path / "out" / "figure_4a.json").exists()
        assert "saved:" in capsys.readouterr().out


class TestTraceCommand:
    def test_trace_mcs_scheme(self, capsys):
        from repro.cli import main

        code = main(["trace", "--scheme", "rma-mcs", "--procs", "8", "--procs-per-node", "4", "--iterations", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "operation share by distance" in out
        assert "hottest remote targets" in out

    def test_trace_rw_scheme_with_activity_strip(self, capsys):
        from repro.cli import main

        code = main([
            "trace", "--scheme", "rma-rw", "--procs", "8", "--procs-per-node", "4",
            "--iterations", "3", "--fw", "0.5", "--activity",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "virtual time 0" in out  # the per-rank activity strip header


class TestVerifyCommand:
    def test_verify_reports_all_models(self, capsys):
        from repro.cli import main

        code = main(["verify", "--procs", "2", "--rounds", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MCS / D-MCS" in out
        assert "ticket lock" in out
        assert "test-and-set" in out
        assert "EXCEEDED" in out      # the TAS model exceeds the FIFO bypass bound
        assert out.count("OK") >= 4   # safety + fairness of the FIFO designs


class TestRelatedFigureNames:
    def test_related_mcs_figure_runs(self, capsys):
        from repro.cli import main

        code = main(["figures", "related-rw", "--procs", "4", "8", "--iterations", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure related-rw" in out
        assert "numa-rw" in out


class TestSchedulerFlag:
    def test_bench_accepts_scheduler_choices(self):
        args = build_parser().parse_args(["bench", "--scheduler", "baseline"])
        assert args.scheduler == "baseline"
        args = build_parser().parse_args(["figures", "4a", "--scheduler", "baseline"])
        assert args.scheduler == "baseline"

    def test_bench_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--scheduler", "bogus"])

    def test_bench_baseline_scheduler_output_is_identical(self, capsys):
        argv = ["bench", "--scheme", "rma-rw", "--procs", "8", "--procs-per-node", "4",
                "--iterations", "5", "--t-l", "2", "2"]
        assert main(argv + ["--scheduler", "horizon"]) == 0
        horizon_out = capsys.readouterr().out
        assert main(argv + ["--scheduler", "baseline"]) == 0
        baseline_out = capsys.readouterr().out
        assert horizon_out == baseline_out

    def test_figures_scheduler_flag_runs_and_restores_default(self, capsys):
        code = main(["figures", "4a", "--procs", "4", "--iterations", "4",
                     "--scheduler", "baseline"])
        assert code == 0
        assert "Figure 4a" in capsys.readouterr().out
        # The process-wide default must come back to the fast scheduler for
        # any later in-process caller (the figures command uses a context
        # manager, not a permanent switch).
        from repro.bench.harness import default_scheduler

        assert default_scheduler() == "horizon"


class TestCampaignCommand:
    @pytest.fixture()
    def tiny_campaign(self, tmp_path, monkeypatch):
        from repro.bench.campaign import CampaignSpec, register_campaign, unregister_campaign

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        spec = CampaignSpec(
            name="cli-tiny",
            schemes=("rma-mcs",),
            benchmarks=("ecsb",),
            process_counts=(4,),
            iterations=3,
            procs_per_node=4,
        )
        register_campaign(spec, replace=True)
        yield spec
        unregister_campaign(spec.name)

    def test_campaign_list_names_builtins(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "ci-gate" in out
        assert "rw-contention" in out

    def test_campaign_show_prints_expanded_grid(self, capsys):
        assert main(["campaign", "show", "ci-gate"]) == 0
        out = capsys.readouterr().out
        assert "rma-rw-wcsb-p64" in out
        # schemes resolve against the live registry: every harness scheme
        # (including the fault-recovery locks) x P in {8, 32, 64}.
        expected = 3 * len(scheme_names(harness=True))
        assert f"{expected} points" in out

    def test_campaign_show_unknown_name_suggests(self, capsys):
        assert main(["campaign", "show", "ci-gat"]) == 2
        err = capsys.readouterr().err
        assert "unknown campaign" in err
        assert "ci-gate" in err

    def test_campaign_list_survives_a_broken_campaign(self, capsys):
        """One campaign with an unresolvable scheme must not take down the
        listing (nor `show`/`run` crash with a traceback)."""
        from repro.bench.campaign import CampaignSpec, register_campaign, unregister_campaign

        register_campaign(
            CampaignSpec(name="broken", schemes=("no-such-lock",)), replace=True
        )
        try:
            assert main(["campaign", "list"]) == 0
            out = capsys.readouterr().out
            assert "ci-gate" in out
            assert "error:" in out
            assert main(["campaign", "show", "broken"]) == 2
            assert "cannot be expanded" in capsys.readouterr().err
            assert main(["campaign", "run", "broken", "--jobs", "1", "--no-cache"]) == 2
        finally:
            unregister_campaign("broken")

    def test_campaign_run_computes_then_hits_cache(self, tiny_campaign, capsys):
        assert main(["campaign", "run", "cli-tiny", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "0 cached / 1 computed" in out
        assert main(["campaign", "run", "cli-tiny", "--jobs", "1"]) == 0
        assert "1 cached / 0 computed" in capsys.readouterr().out

    def test_campaign_run_writes_manifest(self, tiny_campaign, tmp_path, capsys):
        out_file = tmp_path / "out.json"
        assert main(["campaign", "run", "cli-tiny", "--jobs", "1", "--no-cache",
                     "--output", str(out_file)]) == 0
        import json

        payload = json.loads(out_file.read_text())
        assert payload["campaign"] == "cli-tiny"
        assert len(payload["rows"]) == 1
        assert "fingerprint" in payload["rows"][0]


class TestRegressCommand:
    def test_regress_bless_then_pass(self, tmp_path, monkeypatch, capsys):
        from repro.bench.campaign import CampaignSpec, register_campaign, unregister_campaign

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        spec = CampaignSpec(
            name="cli-regress-tiny",
            schemes=("ticket",),
            benchmarks=("ecsb",),
            process_counts=(4,),
            iterations=3,
            procs_per_node=4,
        )
        register_campaign(spec, replace=True)
        try:
            baseline = tmp_path / "BENCH_campaign.json"
            assert main(["regress", "--campaign", "cli-regress-tiny", "--jobs", "1",
                         "--baseline", str(baseline), "--bless"]) == 0
            assert baseline.exists()
            # --strict-tol disables the wall-clock throughput gate: a
            # millisecond one-point campaign is too noisy for 25% under load,
            # and this test's subject is the determinism gate + exit code.
            assert main(["regress", "--campaign", "cli-regress-tiny", "--jobs", "1",
                         "--baseline", str(baseline), "--runtime-baseline", "none",
                         "--strict-tol", "1e9"]) == 0
            out = capsys.readouterr().out
            assert "regress: PASS" in out
        finally:
            unregister_campaign(spec.name)

    def test_regress_unknown_campaign_errors(self, capsys):
        assert main(["regress", "--campaign", "nope"]) == 2
        assert "unknown campaign" in capsys.readouterr().err

    def test_regress_soft_flag_parses(self):
        args = build_parser().parse_args(["regress", "--soft", "--jobs", "4", "--scaling"])
        assert args.soft is True
        assert args.jobs == 4
        assert args.scaling is True


class TestTrafficCommand:
    TINY_ARGS = [
        "traffic", "--schemes", "fompi-spin", "--scenarios", "traffic-zipf",
        "--procs", "8", "--iterations", "3", "--jobs", "1",
    ]

    def test_traffic_defaults(self):
        args = build_parser().parse_args(["traffic"])
        assert args.command == "traffic"
        # None = "both, or horizon-only under --smoke"; an explicit
        # --scheduler always wins over the smoke default.
        assert args.scheduler is None
        assert args.smoke is False

    def test_traffic_runs_both_schedulers_and_prints_percentiles(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(self.TINY_ARGS) == 0
        out = capsys.readouterr().out
        assert "e2e_p99_us" in out
        assert "scheduler(s) horizon, baseline" in out
        assert "2 rows" in out

    def test_traffic_writes_report_and_hits_cache(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        report = tmp_path / "TRAFFIC_report.json"
        assert main(self.TINY_ARGS + ["--scheduler", "horizon", "--output", str(report)]) == 0
        assert "0 cached / 1 computed" in capsys.readouterr().out
        import json

        payload = json.loads(report.read_text())
        assert payload["suite"] == "traffic"
        assert payload["rows"][0]["percentiles"]["e2e_p99_us"] > 0
        assert main(self.TINY_ARGS + ["--scheduler", "horizon"]) == 0
        assert "1 cached / 0 computed" in capsys.readouterr().out

    def test_traffic_bless_writes_baseline(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        baseline = tmp_path / "BENCH_traffic.json"
        args = [
            "traffic", "--schemes", "fompi-spin", "rma-mcs", "rma-rw",
            "--scenarios", "traffic-zipf", "--procs", "8", "--iterations", "3",
            "--jobs", "1", "--bless", "--baseline", str(baseline),
        ]
        assert main(args) == 0
        assert "blessed" in capsys.readouterr().out
        import json

        from repro.bench.regress import check_traffic_manifest

        payload = json.loads(baseline.read_text())
        assert check_traffic_manifest(payload) == []

    def test_traffic_unknown_scheme_errors(self, capsys):
        assert main(["traffic", "--schemes", "no-such-lock", "--jobs", "1"]) == 2
        assert "cannot run" in capsys.readouterr().err

    def test_traffic_smoke_flag_parses(self):
        args = build_parser().parse_args(["traffic", "--smoke", "--jobs", "4"])
        assert args.smoke is True
        assert args.jobs == 4

    def test_traffic_top_keys_is_analysis_only(self, capsys):
        # No sweep, no cache: the hot-key table prints straight from the
        # materialized schedules.
        args = [
            "traffic", "--scenarios", "traffic-zipf", "--procs", "8",
            "--iterations", "16", "--top-keys", "3",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "share" in out
        assert "virtual-time analysis" in out
        assert "e2e_p99_us" not in out  # the sweep never ran


class TestScaleCommand:
    def test_scale_defaults(self):
        args = build_parser().parse_args(["scale"])
        assert args.command == "scale"
        assert args.scheduler is None
        assert args.smoke is False
        assert args.fluid is None

    def test_scale_smoke_runs_and_reports_the_verdicts(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        report = tmp_path / "SCALE_report.json"
        args = [
            "scale", "--smoke", "--jobs", "1", "--fluid", "fluid-phased",
            "--output", str(report),
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "fluid: 1 scenario(s), all within tolerance" in out
        assert "re-homing improved=True" in out
        import json

        payload = json.loads(report.read_text())
        assert payload["suite"] == "scale"
        assert payload["rehome"]["improved"] is True
        assert payload["fluid"][0]["name"] == "fluid-phased"

    def test_scale_unknown_fluid_errors(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["scale", "--smoke", "--jobs", "1", "--fluid", "no-such"]) == 2
        assert "cannot run" in capsys.readouterr().err


class TestGeneratedThresholdFlags:
    def test_t_w_flag_is_generated_from_registry(self, capsys):
        code = main([
            "bench", "--scheme", "rma-rw", "--procs", "8", "--procs-per-node", "4",
            "--iterations", "4", "--t-l", "2", "2", "--t-w", "3",
        ])
        assert code == 0
        assert "rma-rw" in capsys.readouterr().out

    def test_help_names_the_schemes_using_each_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--help"])
        out = capsys.readouterr().out
        assert "--t-dc" in out and "--t-r" in out and "--t-l" in out and "--t-w" in out
        assert "schemes: rma-rw" in out

    def test_figures_unknown_name_suggests_close_match(self, capsys):
        code = main(["figures", "4x"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown figure" in err
        assert "Did you mean" in err


class TestParamOverlayFlag:
    def test_param_flag_parses_json_values(self):
        from repro.cli import _parse_param_assignments

        overlay = _parse_param_assignments(["t-r=16", "local_cap_us=0.5", "t_l=[2, 2]"])
        assert overlay == (("t_r", 16), ("local_cap_us", 0.5), ("t_l", [2, 2]))

    def test_param_flag_rejects_missing_value(self):
        from repro.cli import _parse_param_assignments

        with pytest.raises(SystemExit, match="NAME=VALUE"):
            _parse_param_assignments(["t_r"])

    def test_bench_accepts_param_overlay(self, capsys):
        code = main([
            "bench", "--scheme", "hbo", "--procs", "8", "--procs-per-node", "4",
            "--iterations", "4", "--param", "local-cap-us=0.5",
            "--param", "min_backoff_us=0.2",
        ])
        assert code == 0
        assert "hbo" in capsys.readouterr().out

    def test_bench_unknown_param_errors_helpfully(self, capsys):
        code = main([
            "bench", "--scheme", "rma-rw", "--procs", "8", "--procs-per-node", "4",
            "--iterations", "4", "--param", "t_rr=8",
        ])
        assert code == 2
        assert "t_r" in capsys.readouterr().err

    def test_threshold_flags_survive_as_deprecated_aliases(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--help"])
        out = capsys.readouterr().out
        assert "deprecated alias of --param" in out


class TestTuneCommand:
    def test_tune_defaults_parse(self):
        args = build_parser().parse_args(["tune", "--smoke", "--jobs", "4"])
        assert args.smoke is True and args.jobs == 4
        assert args.scheduler == "horizon"
        assert args.bless is False

    def test_tune_single_grid_runs_and_prints_figure(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_EPOCH", "cli-tune-test")
        out_path = tmp_path / "TUNE.json"
        code = main([
            "tune", "--scheme", "rma-rw", "--tune-param", "t_r",
            "--scenario", "traffic-zipf", "--procs", "8", "--iterations", "3",
            "--jobs", "1", "--cache-dir", str(tmp_path / "cache"),
            "--output", str(out_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "e2e p99" in out and "default" in out
        assert "Best-known thresholds" in out
        assert out_path.exists()

    def test_tune_rejects_untunable_scheme(self, capsys):
        code = main(["tune", "--scheme", "ticket", "--jobs", "1", "--no-cache"])
        assert code == 2
        assert "no tunable parameters" in capsys.readouterr().err

    def test_regress_accepts_tune_baseline_flag(self):
        args = build_parser().parse_args(["regress", "--tune-baseline", "none"])
        assert args.tune_baseline == "none"
