"""Tests for deterministic random-number helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.rng import rank_rng, spawn_rngs


class TestRankRng:
    def test_deterministic_per_seed_and_rank(self):
        a = rank_rng(7, 3).integers(0, 1_000_000, size=16)
        b = rank_rng(7, 3).integers(0, 1_000_000, size=16)
        assert np.array_equal(a, b)

    def test_different_ranks_differ(self):
        a = rank_rng(7, 0).integers(0, 1_000_000, size=16)
        b = rank_rng(7, 1).integers(0, 1_000_000, size=16)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = rank_rng(1, 0).integers(0, 1_000_000, size=16)
        b = rank_rng(2, 0).integers(0, 1_000_000, size=16)
        assert not np.array_equal(a, b)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            rank_rng(0, -1)


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(5, 4)
        assert len(rngs) == 4
        draws = [r.integers(0, 1_000_000, size=8).tolist() for r in rngs]
        assert len({tuple(d) for d in draws}) == 4

    def test_zero_count(self):
        assert spawn_rngs(5, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(5, -1)

    def test_matches_rank_rng(self):
        spawned = spawn_rngs(9, 3)[2].integers(0, 1000, size=8)
        direct = rank_rng(9, 2).integers(0, 1000, size=8)
        assert np.array_equal(spawned, direct)
