"""Tests for the statistics helpers (warm-up discard, summaries)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.stats import Summary, discard_warmup, geometric_mean, summarize


class TestDiscardWarmup:
    def test_discards_leading_fraction(self):
        assert discard_warmup(list(range(10)), 0.1) == list(range(1, 10))
        assert discard_warmup(list(range(10)), 0.3) == list(range(3, 10))

    def test_zero_fraction_keeps_everything(self):
        assert discard_warmup([1, 2, 3], 0.0) == [1, 2, 3]

    def test_rounds_down(self):
        assert discard_warmup([1, 2, 3], 0.5) == [2, 3]

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            discard_warmup([1], 1.0)
        with pytest.raises(ValueError):
            discard_warmup([1], -0.1)


class TestSummarize:
    def test_basic_statistics(self):
        s = summarize([1.0, 2.0, 3.0, 4.0], warmup_fraction=0.0)
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_warmup_applied(self):
        s = summarize([100.0] + [1.0] * 9, warmup_fraction=0.1)
        assert s.maximum == 1.0
        assert s.count == 9

    def test_empty_after_warmup_raises(self):
        with pytest.raises(ValueError):
            summarize([], warmup_fraction=0.0)

    def test_as_dict_round_trip(self):
        s = summarize([2.0, 2.0, 2.0], warmup_fraction=0.0)
        d = s.as_dict()
        assert d["mean"] == 2.0
        assert d["count"] == 3
        assert set(d) == {"count", "mean", "median", "p95", "min", "max", "std"}

    @given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=2, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_mean_within_min_max(self, values):
        s = summarize(values, warmup_fraction=0.0)
        assert s.minimum - 1e-9 <= s.mean <= s.maximum + 1e-9
        assert s.minimum - 1e-9 <= s.p95 <= s.maximum + 1e-9

    @given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=10, max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_warmup_never_increases_count(self, values):
        full = summarize(values, warmup_fraction=0.0)
        trimmed = summarize(values, warmup_fraction=0.1)
        assert trimmed.count <= full.count


class TestGeometricMean:
    def test_simple(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
