"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.topology.machine import Machine


@pytest.fixture
def small_cluster() -> Machine:
    """Two compute nodes with four ranks each (the workhorse of the lock tests)."""
    return Machine.cluster(nodes=2, procs_per_node=4)


@pytest.fixture
def medium_cluster() -> Machine:
    """Four compute nodes with four ranks each."""
    return Machine.cluster(nodes=4, procs_per_node=4)


@pytest.fixture
def three_level_machine() -> Machine:
    """The Figure 2 shape: 2 racks x 2 nodes x 3 ranks."""
    return Machine.multi_rack(racks=2, nodes_per_rack=2, procs_per_node=3)


@pytest.fixture
def single_node() -> Machine:
    """A single shared element with six ranks (N = 1)."""
    return Machine.single_node(6)
