"""The example scripts must run end-to-end (with shrunken workloads)."""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

SMALL_ENV = {
    "REPRO_EXAMPLE_ITERATIONS": "4",
    "REPRO_EXAMPLE_NODES": "2",
    "REPRO_EXAMPLE_PROCS_PER_NODE": "4",
    "REPRO_EXAMPLE_OPS": "4",
    "REPRO_EXAMPLE_VERTICES": "24",
}


def run_example(name: str, monkeypatch, capsys) -> str:
    for key, value in SMALL_ENV.items():
        monkeypatch.setenv(key, value)
    monkeypatch.setattr(sys, "argv", [name])
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


def test_examples_directory_contains_at_least_three_scripts():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 3
    assert "quickstart.py" in scripts


def test_quickstart(monkeypatch, capsys):
    out = run_example("quickstart.py", monkeypatch, capsys)
    assert "no lost updates" in out


def test_key_value_store(monkeypatch, capsys):
    out = run_example("key_value_store.py", monkeypatch, capsys)
    assert "rma-rw" in out
    assert "fompi-a" in out


def test_graph_processing(monkeypatch, capsys):
    out = run_example("graph_processing.py", monkeypatch, capsys)
    assert "rma-rw" in out
    assert "fompi-rw" in out


def test_parameter_tuning(monkeypatch, capsys):
    out = run_example("parameter_tuning.py", monkeypatch, capsys)
    assert "T_DC" in out
    assert "T_R" in out


def test_adaptive_tuning(monkeypatch, capsys):
    out = run_example("adaptive_tuning.py", monkeypatch, capsys)
    assert "Best parameters found" in out
    assert "hand-off locality" in out


def test_reproduce_figures_single_figure(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_BENCH_PROCS", "4 8")
    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.3")
    monkeypatch.setattr(sys, "argv", ["reproduce_figures.py", "4a"])
    runpy.run_path(str(EXAMPLES_DIR / "reproduce_figures.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Figure 4a" in out


def test_related_locks_comparison(monkeypatch, capsys):
    out = run_example("related_locks_comparison.py", monkeypatch, capsys)
    assert "rma-mcs" in out
    assert "cohort" in out
    assert "numa-rw" in out
    assert "ranking" in out


def test_trace_analysis(monkeypatch, capsys):
    out = run_example("trace_analysis.py", monkeypatch, capsys)
    assert "RMA-MCS" in out
    assert "operation share by distance" in out
    assert "hottest remote targets" in out


def test_custom_lock(monkeypatch, capsys):
    out = run_example("custom_lock.py", monkeypatch, capsys)
    assert "tas-backoff" in out
    assert "mutual exclusion through the public API" in out


def test_adaptive_demo(monkeypatch, capsys):
    out = run_example("adaptive_demo.py", monkeypatch, capsys)
    assert "scheme swaps" in out
    assert "bit-identical across schedulers" in out
    assert "third-party lock joined the policy-switched table" in out


def test_traffic_demo(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_EXAMPLE_LOCKS", "64")
    out = run_example("traffic_demo.py", monkeypatch, capsys)
    assert "demo-tas" in out
    assert "e2e_p99_us" in out
    assert "Lowest p99 end-to-end latency" in out
