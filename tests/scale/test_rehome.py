"""Tests for topology-aware re-homing of hot lock-table entries.

The acceptance contract: the matched scenario pair draws bit-identical
request schedules, the re-homed run's end-to-end p99 beats static placement
under the topology-aware latency model, the swap ledger records the move,
and the whole thing is fingerprint-identical across all three deterministic
schedulers and across ``--jobs`` settings.
"""

from __future__ import annotations

import numpy as np

from repro.bench.campaign import CampaignSpec, run_campaign
from repro.scale.rehome import REHOME_POLICY, REHOME_SCENARIO, STATIC_HOT_SCENARIO
from repro.traffic.generators import generate_schedule

#: The matched pair at the campaign's shape: P=32 / 8 per node puts
#: ``bias_ranks=(24, 32)`` exactly on node 3 while entry 0 homes on node 0.
PAIR = CampaignSpec(
    name="scale-hot-tiny-test",
    schemes=("fompi-spin",),
    benchmarks=("scale-hot", "scale-hot-rehome"),
    process_counts=(32,),
    fw_values=(0.0,),
    iterations=32,
    procs_per_node=8,
    seed=17,
)


def _by_benchmark(rows):
    return {row["benchmark"]: row for row in rows}


class TestScenarioPair:
    def test_schedules_are_bit_identical(self):
        # The pair differs only in the attached policy: the generator draws
        # are name-independent, so every rank sees the same arrivals/keys.
        for rank in (0, 7, 24, 31):
            static = generate_schedule(STATIC_HOT_SCENARIO, 17, rank, 32)
            rehomed = generate_schedule(REHOME_SCENARIO, 17, rank, 32)
            assert np.array_equal(static.arrival_us, rehomed.arrival_us)
            assert np.array_equal(static.lock_index, rehomed.lock_index)

    def test_bias_concentrates_the_hot_key_on_the_far_node(self):
        biased = generate_schedule(STATIC_HOT_SCENARIO, 17, 24, 200)
        unbiased = generate_schedule(STATIC_HOT_SCENARIO, 17, 0, 200)
        biased_share = float(np.mean(biased.lock_index == 0))
        unbiased_share = float(np.mean(unbiased.lock_index == 0))
        assert biased_share > 0.6  # bias_fraction=0.75 plus the Zipf head
        assert biased_share > 2 * unbiased_share

    def test_policy_shape(self):
        (rule,) = REHOME_POLICY.rules
        assert rule.action == "rehome"
        assert rule.min_node_share > 0.0  # guards against flat-traffic thrash


class TestRehomeWin:
    def test_rehoming_beats_static_placement_on_p99(self):
        report = run_campaign(PAIR, cache=False, jobs=1)
        rows = _by_benchmark(report.rows)
        static = rows["scale-hot"]["percentiles"]
        rehomed = rows["scale-hot-rehome"]["percentiles"]
        assert rehomed["e2e_p99_us"] < static["e2e_p99_us"]
        assert rehomed["e2e_p999_us"] < static["e2e_p999_us"]

    def test_swap_ledger_records_the_move(self):
        report = run_campaign(PAIR, cache=False, jobs=1)
        rows = _by_benchmark(report.rows)
        # Policy-free runs have no swap ledger at all (no new return keys,
        # so pre-existing scenario fingerprints stay untouched).
        assert rows["scale-hot"]["percentiles"].get("swaps_total", 0) == 0
        # Every rank performs the collective re-home crossing; the policy
        # caps the plan at max_swaps_per_boundary entries.
        swaps = rows["scale-hot-rehome"]["percentiles"]["swaps_total"]
        assert swaps > 0
        assert swaps % 32 == 0  # collective: same count on every rank


class TestRehomeDeterminism:
    REHOME_ONLY = CampaignSpec(
        name="scale-rehome-det-test",
        schemes=("fompi-spin",),
        benchmarks=("scale-hot-rehome",),
        process_counts=(32,),
        fw_values=(0.0,),
        iterations=32,
        procs_per_node=8,
        seed=17,
    )

    def test_schedulers_agree_fingerprint_for_fingerprint(self):
        views = {}
        for scheduler in ("horizon", "baseline", "vector"):
            report = run_campaign(
                self.REHOME_ONLY, cache=False, jobs=1, scheduler=scheduler
            )
            views[scheduler] = [
                (row["fingerprint"], row["percentiles"], row["phases"])
                for row in report.rows
            ]
        assert views["horizon"] == views["baseline"] == views["vector"]

    def test_parallel_jobs_match_serial_bit_for_bit(self):
        serial = run_campaign(self.REHOME_ONLY, cache=False, jobs=1)
        parallel = run_campaign(self.REHOME_ONLY, cache=False, jobs=2)
        assert [(r["case"], r["fingerprint"]) for r in serial.rows] == [
            (r["case"], r["fingerprint"]) for r in parallel.rows
        ]
