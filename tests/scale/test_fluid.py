"""Tests for the fluid-flow load model and its sampled sub-stream.

The acceptance contract: the closed-form fluid profile agrees with exactly
materialized schedules across a property sweep of (rate, skew, phase shape),
the sampled cohort's percentiles land inside the fluid service model's bands,
the 10^6+ clients/s scenario resolves in seconds, and the sampled fingerprint
is one identical value across schedulers and reruns.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.scale.fluid import (
    FLUID_LANE,
    FLUID_MEGA,
    FLUID_PHASED,
    FLUID_SCENARIOS,
    FluidScenario,
    fluid_profile,
    get_fluid_scenario,
    run_sampled,
    sampled_scenario,
    validate_fluid,
)
from repro.traffic.generators import Phase, TrafficScenario, generate_schedule

PHASED = (
    Phase(duration_us=100.0, rate_scale=1.0, name="warm"),
    Phase(duration_us=120.0, rate_scale=2.5, name="spike"),
    Phase(duration_us=None, rate_scale=1.0, name="cooldown"),
)


def _fluid(
    clients_per_s: float,
    *,
    exponent: float = 1.0,
    phases=PHASED,
    num_locks: int = 1024,
    horizon_us: float = 1500.0,
    name: str = "fluid-test",
) -> FluidScenario:
    return FluidScenario(
        name=name,
        base=TrafficScenario(
            name=f"{name}-base",
            num_locks=num_locks,
            arrival="poisson",
            key_dist="zipf",
            zipf_exponent=exponent,
            phases=phases,
        ),
        clients_per_s=clients_per_s,
        horizon_us=horizon_us,
    )


class TestFluidProfile:
    def test_mass_conservation(self):
        profile = fluid_profile(_fluid(500_000.0))
        assert profile.total_offered == pytest.approx(
            profile.total_served + profile.final_backlog, rel=1e-9
        )

    def test_entry_share_is_a_distribution(self):
        profile = fluid_profile(_fluid(500_000.0, exponent=1.2))
        share = profile.entry_share()
        assert share.sum() == pytest.approx(1.0)
        assert share[0] == share.max()  # Zipf head is the hottest key
        folded = profile.folded_share(256)
        assert folded.shape == (256,)
        assert folded.sum() == pytest.approx(1.0)

    def test_rate_scale_multiplies_offered_load(self):
        flat = fluid_profile(
            _fluid(200_000.0, phases=(Phase(duration_us=None, rate_scale=1.0),))
        )
        spiked = fluid_profile(
            _fluid(200_000.0, phases=(Phase(duration_us=None, rate_scale=3.0),))
        )
        assert spiked.total_offered == pytest.approx(3.0 * flat.total_offered)

    def test_cs_scale_weighs_into_the_mean_service_time(self):
        base = _fluid(200_000.0, phases=(Phase(duration_us=None, cs_scale=1.0),))
        slow = _fluid(200_000.0, phases=(Phase(duration_us=None, cs_scale=2.0),))
        assert fluid_profile(slow).mean_cs_us == pytest.approx(
            2.0 * fluid_profile(base).mean_cs_us
        )

    def test_backlog_builds_only_past_saturation(self):
        # 1e5 clients/s over 1024 keys is deeply sub-critical: no backlog.
        calm = fluid_profile(_fluid(100_000.0, exponent=0.8))
        assert calm.final_backlog == pytest.approx(0.0, abs=1e-6)
        # Concentrate 5e6 clients/s on a near-degenerate key space: the hot
        # station saturates and the fluid queue must carry real backlog.
        stormy = fluid_profile(_fluid(5_000_000.0, exponent=2.5, num_locks=4))
        assert stormy.final_backlog > 0.0
        assert stormy.peak_utilization > 1.0

    def test_uniform_key_dist_spreads_evenly(self):
        fluid = FluidScenario(
            name="fluid-uniform-test",
            base=TrafficScenario(
                name="fluid-uniform-test-base", num_locks=128, key_dist="uniform"
            ),
            clients_per_s=100_000.0,
            horizon_us=500.0,
        )
        share = fluid_profile(fluid).entry_share()
        assert np.allclose(share, 1.0 / 128)


class TestPropertySweep:
    """Satellite (d): fluid vs exact across rates, skews and phase shapes."""

    # Rates stay sub-critical for the 1024-key Zipf table: past ~1e6/s at
    # high skew the hot station saturates and the p50 sojourn band no longer
    # applies (the mega scenario covers 2M/s on its flatter 2^20-key space).
    @pytest.mark.parametrize("clients_per_s", (120_000.0, 450_000.0, 1_000_000.0))
    @pytest.mark.parametrize("exponent", (0.7, 1.1))
    def test_rate_and_skew_grid_validates(self, clients_per_s, exponent):
        record = validate_fluid(
            _fluid(clients_per_s, exponent=exponent),
            schedulers=("horizon",),
        )
        assert record["within_tolerance"], record["checks"]
        assert record["fingerprints_identical"], record["fingerprints"]

    @pytest.mark.parametrize(
        "phases",
        (
            (Phase(duration_us=None, rate_scale=1.0, name="flat"),),
            PHASED,
            (
                Phase(duration_us=60.0, rate_scale=0.5, name="idle"),
                Phase(duration_us=80.0, rate_scale=3.0, name="burst"),
                Phase(duration_us=None, rate_scale=0.75, name="drain"),
            ),
        ),
    )
    def test_phase_shapes_validate(self, phases):
        record = validate_fluid(
            _fluid(300_000.0, phases=phases), schedulers=("horizon",)
        )
        assert record["within_tolerance"], record["checks"]

    def test_sampled_percentiles_are_ordered(self):
        record = validate_fluid(_fluid(250_000.0), schedulers=("horizon",))
        pct = record["sampled"]["percentiles"]
        assert pct["e2e_p50_us"] <= pct["e2e_p99_us"] <= pct["e2e_p999_us"]
        assert pct["e2e_p50_us"] > 0.0


class TestSampledCohort:
    def test_cohort_rate_matches_declared_intensity(self):
        fluid = _fluid(400_000.0)
        scenario = sampled_scenario(fluid)
        expected_gap = fluid.sample_ranks * 1e6 / fluid.clients_per_s
        assert scenario.mean_gap_us == pytest.approx(expected_gap)
        assert scenario.reservoir_cap == fluid.reservoir_cap

    def test_repeat_runs_share_one_fingerprint(self):
        fluid = _fluid(250_000.0)
        first = run_sampled(fluid, scheduler="horizon", seed=17)
        second = run_sampled(fluid, scheduler="horizon", seed=17)
        assert first["fingerprint"] == second["fingerprint"]
        assert first["percentiles"] == second["percentiles"]

    def test_seed_moves_the_fingerprint(self):
        fluid = _fluid(250_000.0)
        a = run_sampled(fluid, scheduler="horizon", seed=17)
        b = run_sampled(fluid, scheduler="horizon", seed=18)
        assert a["fingerprint"] != b["fingerprint"]

    def test_fluid_lane_is_disjoint_from_the_traffic_lane(self):
        scenario = sampled_scenario(_fluid(250_000.0))
        on_lane = generate_schedule(scenario, 17, 0, 32, lane=FLUID_LANE)
        default = generate_schedule(scenario, 17, 0, 32)
        assert not np.array_equal(on_lane.arrival_us, default.arrival_us)

    def test_wall_clock_backend_rejected(self):
        with pytest.raises(ValueError, match="deterministic"):
            run_sampled(_fluid(250_000.0), scheduler="thread")


class TestMegaScale:
    def test_mega_profile_resolves_millions_of_requests_instantly(self):
        t0 = time.perf_counter()
        profile = fluid_profile(FLUID_MEGA)
        elapsed = time.perf_counter() - t0
        assert profile.total_offered > 2e6  # 2M clients/s x 1 simulated second
        assert profile.num_keys == 1 << 20
        assert elapsed < 10.0

    def test_mega_validates_within_seconds(self):
        t0 = time.perf_counter()
        record = validate_fluid(FLUID_MEGA, schedulers=("horizon",))
        elapsed = time.perf_counter() - t0
        assert record["within_tolerance"], record["checks"]
        assert record["fingerprints_identical"]
        assert elapsed < 60.0


class TestCatalogueAndValidation:
    def test_builtins_are_registered(self):
        assert FLUID_PHASED.name in FLUID_SCENARIOS
        assert FLUID_MEGA.name in FLUID_SCENARIOS
        assert get_fluid_scenario("fluid-mega") is FLUID_MEGA

    def test_unknown_scenario_names_the_catalogue(self):
        with pytest.raises(KeyError, match="fluid-mega"):
            get_fluid_scenario("no-such-fluid")

    def test_rank_biased_bases_rejected(self):
        base = TrafficScenario(
            name="biased-base",
            num_locks=64,
            bias_ranks=(0, 8),
            bias_fraction=0.5,
        )
        with pytest.raises(ValueError, match="bias-free"):
            FluidScenario(
                name="bad", base=base, clients_per_s=1e5, horizon_us=100.0
            )

    def test_degenerate_intensities_rejected(self):
        base = TrafficScenario(name="ok-base", num_locks=64)
        with pytest.raises(ValueError):
            FluidScenario(name="bad", base=base, clients_per_s=0.0, horizon_us=100.0)
        with pytest.raises(ValueError):
            FluidScenario(name="bad", base=base, clients_per_s=1e5, horizon_us=0.0)
        with pytest.raises(ValueError):
            FluidScenario(
                name="bad", base=base, clients_per_s=1e5, horizon_us=100.0,
                sample_ranks=1,
            )
