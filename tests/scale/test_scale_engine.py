"""Tests for the scale engine: spec narrowing, verdicts, bless, gating.

These pin the subsystem's integration contract: the ``scale-suite`` campaign
narrows like every other suite, the re-homing verdict pairs rows correctly,
``BENCH_scale.json`` round-trips through the campaign cache and the regress
gate accepts exactly the manifests ``bless_scale`` would have recorded.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.regress import check_scale_manifest
from repro.scale import engine as scale_engine


class TestSpec:
    def test_scale_spec_narrows_the_suite(self):
        spec = scale_engine.scale_spec(
            schemes=("fompi-spin",), scenarios=("scale-hot",), iterations=12
        )
        assert spec.schemes == ("fompi-spin",)
        assert spec.benchmarks == ("scale-hot",)
        assert spec.iterations == 12

    def test_smoke_shrinks_iterations_only(self):
        full = scale_engine.scale_spec()
        smoke = scale_engine.scale_spec(smoke=True)
        assert smoke.iterations == scale_engine.SMOKE_ITERATIONS
        assert smoke.iterations < full.iterations
        assert smoke.benchmarks == full.benchmarks

    def test_scale_selector_expands_to_the_tagged_scenarios(self):
        resolved = scale_engine.scale_spec().resolve_benchmarks()
        assert {"scale-elastic", "scale-hot", "scale-hot-rehome"} <= set(resolved)


class TestRehomeComparison:
    def _row(self, benchmark, scheduler, p99):
        return {
            "benchmark": benchmark,
            "scheduler": scheduler,
            "scheme": "fompi-spin",
            "P": 32,
            "percentiles": {"e2e_p99_us": p99},
        }

    def test_improved_requires_every_pair_to_win(self):
        rows = [
            self._row("scale-hot", "horizon", 100.0),
            self._row("scale-hot-rehome", "horizon", 80.0),
            self._row("scale-hot", "baseline", 100.0),
            self._row("scale-hot-rehome", "baseline", 120.0),
        ]
        verdict = scale_engine.rehome_comparison(rows)
        assert len(verdict["pairs"]) == 2
        assert not verdict["improved"]
        per_sched = {p["scheduler"]: p["improved"] for p in verdict["pairs"]}
        assert per_sched == {"horizon": True, "baseline": False}

    def test_unpaired_rows_are_ignored(self):
        rows = [
            self._row("scale-hot", "horizon", 100.0),
            self._row("scale-elastic", "horizon", 50.0),
        ]
        verdict = scale_engine.rehome_comparison(rows)
        assert verdict["pairs"] == []
        assert not verdict["improved"]

    def test_delta_is_static_minus_rehomed(self):
        rows = [
            self._row("scale-hot", "horizon", 100.0),
            self._row("scale-hot-rehome", "horizon", 75.0),
        ]
        (pair,) = scale_engine.rehome_comparison(rows)["pairs"]
        assert pair["delta_us"] == pytest.approx(25.0)
        assert pair["improved"]


class TestScaleManifestGate:
    def _payload(self, *, schedulers=("horizon", "baseline"), improved=True,
                 within=True, identical=True):
        rows = [
            {
                "case": f"fompi-spin-scale-hot-{s}",
                "scheduler": s,
                "fingerprint": "ab" * 32,
                "percentiles": {"e2e_p99_us": 10.0},
            }
            for s in schedulers
        ]
        return {
            "suite": "scale",
            "rows": rows,
            "fluid": [
                {
                    "name": "fluid-phased",
                    "within_tolerance": within,
                    "fingerprints_identical": identical,
                    "fingerprints": ["cd" * 32] if identical else ["a", "b"],
                    "checks": [{"name": "offered_rate_per_us", "ok": within}],
                }
            ],
            "rehome": {
                "pairs": [{"scheduler": "horizon", "improved": improved}],
                "improved": improved,
            },
        }

    def test_healthy_manifest_passes(self):
        assert check_scale_manifest(self._payload()) == []

    def test_empty_manifest_is_hard(self):
        findings = check_scale_manifest({"rows": []})
        assert [f.level for f in findings] == ["hard"]

    def test_single_scheduler_fails(self):
        findings = check_scale_manifest(self._payload(schedulers=("horizon",)))
        assert any(f.level == "fail" and f.field == "schedulers" for f in findings)

    def test_fluid_out_of_tolerance_is_hard(self):
        findings = check_scale_manifest(self._payload(within=False))
        assert any(f.level == "hard" and f.field == "validation" for f in findings)

    def test_divergent_fluid_fingerprints_are_hard(self):
        findings = check_scale_manifest(self._payload(identical=False))
        assert any(f.level == "hard" and f.field == "fingerprints" for f in findings)

    def test_missing_fluid_records_are_hard(self):
        payload = self._payload()
        payload["fluid"] = []
        findings = check_scale_manifest(payload)
        assert any(f.level == "hard" and f.field == "fluid" for f in findings)

    def test_rehome_regression_fails(self):
        findings = check_scale_manifest(self._payload(improved=False))
        assert any(f.field == "rehome" for f in findings)

    def test_missing_rehome_verdict_is_hard(self):
        payload = self._payload()
        del payload["rehome"]
        findings = check_scale_manifest(payload)
        assert any(f.level == "hard" and f.field == "rehome" for f in findings)


class TestBless:
    def test_bless_round_trips_through_the_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_EPOCH", "scale-bless-test")
        baseline = tmp_path / "BENCH_scale.json"
        spec = scale_engine.scale_spec(smoke=True)
        report = scale_engine.bless_scale(
            baseline,
            spec=spec,
            schedulers=("horizon", "baseline"),
            jobs=1,
            cache_dir=tmp_path / "cache",
            fluid_names=("fluid-phased",),
        )
        payload = json.loads(baseline.read_text())
        assert payload["suite"] == "scale"
        assert payload["timing"]["warm_cache_hits"] == report.points == 6
        assert payload["rehome"]["improved"] is True
        assert check_scale_manifest(payload) == []  # the gate accepts its own bless


class TestOraclesSurviveMutations:
    """The live safety oracles stay attached across resize and re-home
    crossings (the table re-wraps rebuilt handles with the same observer)."""

    @pytest.mark.parametrize("scenario_name", ("scale-elastic", "scale-hot-rehome"))
    def test_conformance_point_stays_clean(self, scenario_name):
        from repro.bench.conformance import ConformancePoint, run_conformance_point

        point = ConformancePoint(
            scheme="fompi-spin",
            benchmark=scenario_name,
            procs=32,
            procs_per_node=8,
            iterations=8,
            fw=0.0,
            seed=17,
            perturb_seed=0,
            latency_jitter=0.0,
            pause_rate=0.0,
        )
        row = run_conformance_point(point)
        assert row["ok"], row["violations"]
        assert row["reproducible"] is True
        assert row["acquires"] > 0
