"""Tests for elastic lock tables: plan semantics and resize determinism.

The acceptance contract: resize crossings are collective virtual-time events
with bit-identical fingerprints across the horizon, baseline and vector
schedulers and across ``--jobs`` settings, and the plan's active-entry
schedule is a pure function every rank derives identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.campaign import CampaignSpec, run_campaign
from repro.scale.elastic import (
    ELASTIC_PLAN,
    ELASTIC_SCENARIO,
    ElasticController,
    ElasticPlan,
    ResizeEvent,
)

#: Small grid reused by the determinism tests: one scheme, the built-in
#: elastic scenario, enough requests per rank to land in all three phases.
TINY = CampaignSpec(
    name="scale-elastic-tiny-test",
    schemes=("fompi-spin",),
    benchmarks=("scale-elastic",),
    process_counts=(16,),
    fw_values=(0.0,),
    iterations=24,
    procs_per_node=8,
    seed=17,
)


def _determinism_view(rows):
    return [
        (row["case"], row["fingerprint"], row["percentiles"], row["phases"])
        for row in rows
    ]


class TestPlanSemantics:
    def test_active_by_phase_follows_the_events(self):
        assert list(ELASTIC_PLAN.active_by_phase(3)) == [8, 64, 16]

    def test_events_past_the_phase_count_are_inert(self):
        plan = ElasticPlan(
            capacity=32, initial_active=4, events=(ResizeEvent(boundary=5, active=32),)
        )
        assert list(plan.active_by_phase(3)) == [4, 4, 4]

    def test_num_boundaries_spans_the_last_event(self):
        assert ELASTIC_PLAN.num_boundaries == 2
        assert ElasticPlan(capacity=8, initial_active=8).num_boundaries == 0

    def test_plan_validation_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            ElasticPlan(
                capacity=8,
                initial_active=4,
                events=(ResizeEvent(0, 8), ResizeEvent(0, 4)),
            )
        with pytest.raises(ValueError, match="exceeds the table capacity"):
            ElasticPlan(capacity=8, initial_active=4, events=(ResizeEvent(0, 16),))
        with pytest.raises(ValueError, match="within"):
            ElasticPlan(capacity=8, initial_active=9)

    def test_plan_must_fit_the_scenario(self):
        plan = ElasticPlan(capacity=32, initial_active=4)
        with pytest.raises(ValueError, match="num_locks"):
            plan.validate(ELASTIC_SCENARIO)  # scenario has 64 locks
        deep = ElasticPlan(
            capacity=64, initial_active=8, events=(ResizeEvent(boundary=7, active=64),)
        )
        with pytest.raises(ValueError, match="boundaries"):
            deep.validate(ELASTIC_SCENARIO)  # scenario has only 2 boundaries

    def test_regrown_entries_get_bumped_versions(self):
        # Grow, shrink, grow again: the re-activated entries' target slot
        # versions must count *occurrences*, matching reset_entries() state.
        plan = ElasticPlan(
            capacity=8,
            initial_active=2,
            events=(
                ResizeEvent(boundary=0, active=8),
                ResizeEvent(boundary=1, active=2),
                ResizeEvent(boundary=2, active=4),
            ),
        )
        controller = ElasticController(table=None, plan=plan)
        first_grow, first_targets = controller._by_boundary[0]
        assert first_grow == (2, 3, 4, 5, 6, 7)
        assert all(v == 1 for v in first_targets.values())
        shrink_grow, _ = controller._by_boundary[1]
        assert shrink_grow == ()  # shrinks never touch the window
        regrow, regrow_targets = controller._by_boundary[2]
        assert regrow == (2, 3)
        assert regrow_targets == {2: 2, 3: 2}  # second activation, version 2


class TestResizeDeterminism:
    def test_schedulers_agree_fingerprint_for_fingerprint(self):
        views = {}
        for scheduler in ("horizon", "baseline", "vector"):
            report = run_campaign(TINY, cache=False, jobs=1, scheduler=scheduler)
            views[scheduler] = [
                (row["fingerprint"], row["percentiles"], row["phases"])
                for row in report.rows
            ]
        assert views["horizon"] == views["baseline"] == views["vector"]

    def test_parallel_jobs_match_serial_bit_for_bit(self):
        serial = run_campaign(TINY, cache=False, jobs=1)
        parallel = run_campaign(TINY, cache=False, jobs=2)
        assert _determinism_view(serial.rows) == _determinism_view(parallel.rows)

    def test_resizes_are_counted_and_requests_span_the_phases(self):
        report = run_campaign(TINY, cache=False, jobs=1)
        (row,) = report.rows
        pct = row["percentiles"]
        # Every rank re-inits the 56 entries grown at the first boundary;
        # the shrink at the second boundary adds none.
        assert pct["resizes_total"] == 16 * 56
        phases = {p["phase"] for p in row["phases"]}
        assert phases == {0, 1, 2}  # the plan's crossings actually fired mid-run
