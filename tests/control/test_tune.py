"""Tests for the offline auto-tuner and its regress gate."""

from __future__ import annotations

import json

import pytest

from repro.api.registry import UnknownNameError, get_scheme
from repro.bench.regress import check_tune_manifest
from repro.control.tune import (
    TuneGrid,
    TuneReport,
    bless_tune,
    default_grids,
    derive_axis,
    policy_from_tune,
    render_sensitivity,
    run_tune,
    write_tune_json,
)

TINY_GRID = TuneGrid(
    scheme="rma-rw", param="t_r", scenario="traffic-readheavy",
    values=(16, 64), procs=8, iterations=4, procs_per_node=4, seed=5,
)


class TestAxes:
    def test_curated_axis_wins(self):
        assert derive_axis("rma-rw", "t_r") == (4, 16, 64, 256)
        assert derive_axis("rma-rw", "t_dc") == (1, 2, 8, 32)

    def test_int_default_brackets_by_4x(self):
        # cohort's max_local_passes defaults to 16 with no curated axis.
        assert derive_axis("cohort", "max_local_passes") == (4, 16, 64)

    def test_float_default_brackets_by_4x(self):
        assert derive_axis("hbo", "local_cap_us") == (0.5, 2.0, 8.0)

    def test_non_tunable_parameter_rejected(self):
        # home_rank is numeric but registered tunable=False (a placement
        # choice, not a threshold).
        with pytest.raises(ValueError, match="not tunable"):
            derive_axis("ticket", "home_rank")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(UnknownNameError):
            derive_axis("rma-rw", "t_rr")


class TestGrids:
    def test_grid_points_include_the_default_baseline(self):
        points = TINY_GRID.points()
        assert len(points) == 3  # default + 2 swept values
        assert points[0].params == ()
        assert points[1].params == (("t_r", 16),)

    def test_grid_validates_eagerly(self):
        with pytest.raises(UnknownNameError):
            TuneGrid(scheme="rma-rw", param="t_rr", scenario="traffic-zipf", values=(1,))
        with pytest.raises(ValueError, match="at least one"):
            TuneGrid(scheme="rma-rw", param="t_r", scenario="traffic-zipf", values=())

    def test_default_suite_covers_three_schemes_even_in_smoke(self):
        for smoke in (False, True):
            grids = default_grids(smoke=smoke)
            assert len({g.scheme for g in grids}) >= 3


class TestRunTune:
    def test_sweep_certifies_the_winner(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_EPOCH", "tune-test")
        report = run_tune([TINY_GRID], jobs=1, cache_dir=tmp_path)
        assert report.points == 3
        (best,) = report.best
        assert best["scheme"] == "rma-rw" and best["param"] == "t_r"
        assert best["best_value"] in (16, 64)
        assert best["e2e_p99_us"] <= best["default_p99_us"] or best["improvement_pct"] <= 0
        # The winner re-run reproduced its recorded fingerprint bit-exactly.
        assert best["refingerprint"] == best["fingerprint"] != ""
        (series,) = report.sensitivity
        assert [p["value"] for p in series["series"]] == [16, 64]
        # A warm sweep serves every grid point from the cache.
        warm = run_tune([TINY_GRID], jobs=1, cache_dir=tmp_path)
        assert warm.cache_hits == warm.points == 3
        assert warm.best[0]["fingerprint"] == best["fingerprint"]

    def test_bless_round_trips_through_the_gate(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_EPOCH", "tune-bless-test")
        baseline = tmp_path / "BENCH_tune.json"
        report = bless_tune(
            baseline, grids=[TINY_GRID], jobs=1, cache_dir=tmp_path / "cache"
        )
        payload = json.loads(baseline.read_text())
        assert payload["suite"] == "tune"
        assert payload["timing"]["warm_cache_hits"] == report.points == 3
        assert payload["best"] and payload["sensitivity"]
        # One scheme only, so the scheme floor fails — but nothing is hard.
        findings = check_tune_manifest(payload)
        assert [f.level for f in findings] == ["fail"]
        assert findings[0].field == "schemes"

    def test_render_sensitivity_shows_axis_and_default(self):
        report = TuneReport(
            rows=[], best=[], scheduler="horizon", jobs=1, wall_s=0.0,
            cache_hits=0, cache_misses=0, epoch="e",
            sensitivity=[{
                "grid": "g", "scheme": "rma-rw", "benchmark": "traffic-zipf",
                "param": "t_r", "default_p99_us": 2.0,
                "series": [{"value": 16, "e2e_p99_us": 1.0}],
            }],
        )
        text = render_sensitivity(report)
        assert "t_r=16" in text and "default" in text
        assert "rma-rw @ traffic-zipf" in text


class TestTuneManifestGate:
    def _payload(self, schemes=("a", "b", "c")):
        best = [
            {
                "scheme": scheme,
                "best_case": f"{scheme}-case",
                "fingerprint": "ab" * 32,
                "refingerprint": "ab" * 32,
            }
            for scheme in schemes
        ]
        return {"suite": "tune", "rows": [{"case": "x"}], "best": best}

    def test_healthy_manifest_passes(self):
        assert check_tune_manifest(self._payload()) == []

    def test_empty_rows_or_best_is_hard(self):
        assert [f.level for f in check_tune_manifest({"rows": []})] == ["hard"]
        assert [f.level for f in check_tune_manifest({"rows": [{}], "best": []})] == ["hard"]

    def test_broken_certificate_is_hard(self):
        payload = self._payload()
        payload["best"][0]["refingerprint"] = "cd" * 32
        findings = check_tune_manifest(payload)
        assert any(f.level == "hard" and f.field == "refingerprint" for f in findings)
        payload["best"][0]["refingerprint"] = ""
        findings = check_tune_manifest(payload)
        assert any(f.level == "hard" and f.field == "refingerprint" for f in findings)

    def test_too_few_schemes_fails(self):
        findings = check_tune_manifest(self._payload(schemes=("a", "b")))
        assert any(f.level == "fail" and f.field == "schemes" for f in findings)

    def test_committed_baseline_passes(self):
        from repro.bench.regress import DEFAULT_TUNE_BASELINE

        payload = json.loads(DEFAULT_TUNE_BASELINE.read_text())
        assert check_tune_manifest(payload) == []
        # The acceptance criterion: the tuner beats the static defaults'
        # p99 on at least one built-in traffic scenario.
        assert any(row["improvement_pct"] > 0 for row in payload["best"])


class TestPolicyFeed:
    BEST = [
        {"scheme": "rma-rw", "benchmark": "traffic-readheavy",
         "param": "t_r", "params": {"t_r": 16}},
        {"scheme": "hbo", "benchmark": "traffic-zipf",
         "param": "local_cap_us", "params": {"local_cap_us": 0.5}},
    ]

    def test_policy_from_best_rows(self):
        table = policy_from_tune(self.BEST)
        assert len(table.rules) == 2
        rule = table.rules[0]
        assert rule.scheme == "rma-rw"
        assert rule.params == (("t_r", 16),)
        # traffic-readheavy is read-dominated: gate on a high read fraction.
        assert rule.min_read_fraction == 0.5 and rule.max_read_fraction == 1.0

    def test_policy_from_manifest_path(self, tmp_path):
        path = tmp_path / "tune.json"
        path.write_text(json.dumps({"best": self.BEST}))
        table = policy_from_tune(path)
        assert {r.scheme for r in table.rules} == {"rma-rw", "hbo"}

    def test_committed_baseline_feeds_a_valid_policy(self):
        from repro.control.tune import DEFAULT_TUNE_BASELINE

        table = policy_from_tune(DEFAULT_TUNE_BASELINE)
        assert len(table.rules) >= 3  # rule validation ran for every winner


class TestAdapterAxes:
    """Tunable parameters of adapter-driven (harness=False) schemes.

    The old behavior silently dropped every parameter on the adapter path:
    the tune sweep would measure the identical point N times and report a
    sensitivity series that was pure noise.  Now the axis is either live
    (the adapter accepts the parameter) or loudly refused/warned about.
    """

    @pytest.fixture
    def adapter_scheme(self):
        from repro.api.registry import ParamSpec, register_scheme, unregister
        from repro.related.hbo import HBOLockSpec

        name = "test-tune-adapter-lock"

        def adapter(machine, local_cap_us=2.0):
            return HBOLockSpec(machine, local_cap_us=float(local_cap_us))

        @register_scheme(
            name,
            category="test",
            harness=False,
            params=(
                ParamSpec("local_cap_us", float, 2.0, "live adapter knob"),
                ParamSpec("dead_knob", float, 1.0, "knob the adapter drops"),
            ),
            conformance_adapter=adapter,
        )
        def _build(machine):  # native protocol irrelevant for these tests
            return HBOLockSpec(machine)

        yield name
        unregister("scheme", name)

    def test_adapter_param_axis_is_live(self, adapter_scheme):
        from repro.bench.harness import build_lock_spec
        from repro.bench.workloads import LockBenchConfig
        from repro.topology.machine import Machine

        machine = Machine.cluster(nodes=2, procs_per_node=2)
        config = LockBenchConfig(
            machine=machine, scheme=adapter_scheme,
            params=(("local_cap_us", 8.0),),
        )
        spec, _ = build_lock_spec(config)
        assert spec.local_cap_us == 8.0

    def test_dropped_adapter_param_warns(self, adapter_scheme):
        from repro.bench.harness import build_lock_spec
        from repro.bench.workloads import LockBenchConfig
        from repro.topology.machine import Machine

        machine = Machine.cluster(nodes=2, procs_per_node=2)
        config = LockBenchConfig(
            machine=machine, scheme=adapter_scheme,
            params=(("dead_knob", 3.0),),
        )
        with pytest.warns(RuntimeWarning, match="dead_knob"):
            build_lock_spec(config)

    def test_grid_on_a_dead_adapter_axis_is_refused(self, adapter_scheme):
        with pytest.raises(ValueError, match="silent no-op"):
            TuneGrid(
                scheme=adapter_scheme, param="dead_knob",
                scenario="traffic-zipf", values=(0.5, 2.0),
            )

    def test_grid_on_a_live_adapter_axis_is_accepted(self, adapter_scheme):
        grid = TuneGrid(
            scheme=adapter_scheme, param="local_cap_us",
            scenario="traffic-zipf", values=(0.5, 2.0),
        )
        assert len(grid.points()) == 3

    def test_new_lock_family_params_are_tunable_axes(self):
        # lock-server's retry-vs-queue threshold is the tentpole's policy
        # knob: the curated axis spans the pure-queue (0) and pure-retry
        # (>= P) endpoints of arxiv 1507.03274.
        assert derive_axis("lock-server", "queue_threshold") == (0, 1, 2, 8, 32)
        grid = TuneGrid(
            scheme="lock-server", param="queue_threshold",
            scenario="traffic-zipf", values=derive_axis("lock-server", "queue_threshold"),
        )
        assert len(grid.points()) == 6
