"""Tests for the online control plane: rules, plans, swap determinism."""

from __future__ import annotations

import math

import pytest

from repro.api.registry import UnknownNameError, unregister
from repro.bench.campaign import CampaignSpec, run_campaign, run_result_sha
from repro.bench.harness import run_lock_benchmark_detailed
from repro.bench.workloads import LockBenchConfig
from repro.control.policy import (
    EntryPhaseStats,
    PolicyController,
    PolicyRule,
    PolicyTable,
    build_swap_plan,
    policy_min_entry_words,
    policy_schemes,
)
from repro.topology.builder import xc30_like
from repro.traffic.generators import Phase, TrafficScenario
from repro.traffic.scenarios import (
    ADAPTIVE_POLICY,
    ADAPTIVE_SCENARIO,
    register_traffic_scenario,
)
from repro.traffic.table import build_lock_table

DETERMINISTIC_SCHEDULERS = ("horizon", "baseline", "vector")


@pytest.fixture
def machine():
    return xc30_like(8, procs_per_node=4)


def _stats(requests=10, writes=2, cs=40.0, span=100.0, entry=0, phase=0):
    return EntryPhaseStats(
        entry=entry, phase=phase, requests=requests, writes=writes,
        cs_us_total=cs, span_us=span,
    )


class TestStatsAndRules:
    def test_stats_derived_quantities(self):
        stats = _stats(requests=10, writes=2, cs=40.0, span=100.0)
        assert stats.read_fraction == pytest.approx(0.8)
        assert stats.waiter_depth == pytest.approx(0.4)

    def test_stats_zero_guards(self):
        empty = _stats(requests=0, writes=0, cs=0.0, span=0.0)
        assert empty.read_fraction == 0.0
        assert empty.waiter_depth == 0.0

    def test_rule_window_matching(self):
        rule = PolicyRule(name="r", scheme="rma-rw", min_read_fraction=0.7, min_requests=4)
        assert rule.matches(_stats(requests=10, writes=1))
        assert not rule.matches(_stats(requests=10, writes=5))  # too write-heavy
        assert not rule.matches(_stats(requests=3, writes=0))  # below min_requests

    def test_rule_rejects_unknown_threshold(self):
        with pytest.raises(UnknownNameError) as excinfo:
            PolicyRule(name="r", scheme="rma-rw", params=(("t_rr", 8),))
        assert excinfo.value.suggestion == "t_r"

    def test_rule_rejects_non_harness_scheme(self):
        with pytest.raises(ValueError, match="lock-handle protocol"):
            PolicyRule(name="r", scheme="striped-rw")

    def test_swap_incompatible_rule_fails_at_construction_with_candidates(self):
        # The old behavior let the rule pass validation and blow up mid-run
        # inside build_swap_plan; now the constructor names the problem and
        # the schemes that *are* valid swap targets.
        with pytest.raises(ValueError) as excinfo:
            PolicyRule(name="r", scheme="striped-rw")
        message = str(excinfo.value)
        assert "not swap-compatible" in message
        assert "Swap-compatible schemes:" in message
        assert "rma-rw" in message

    def test_new_lock_families_are_valid_policy_targets(self):
        rule = PolicyRule(name="r", scheme="lock-server", params={"queue_threshold": 4})
        assert rule.params == (("queue_threshold", 4),)
        PolicyRule(name="r2", scheme="alock", params={"local_cap_us": 4.0})

    def test_rule_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="read-fraction"):
            PolicyRule(name="r", scheme="d-mcs", min_read_fraction=0.9, max_read_fraction=0.1)
        with pytest.raises(ValueError, match="min_requests"):
            PolicyRule(name="r", scheme="d-mcs", min_requests=0)

    def test_rule_params_accept_mappings(self):
        rule = PolicyRule(name="r", scheme="rma-rw", params={"t_r": 16, "t_dc": 2})
        assert rule.params == (("t_dc", 2), ("t_r", 16))

    def test_table_decides_first_match(self):
        first = PolicyRule(name="a", scheme="d-mcs")
        second = PolicyRule(name="b", scheme="rma-rw")
        table = PolicyTable(rules=(first, second))
        assert table.decide(_stats()) is first
        assert policy_schemes(table) == ("d-mcs", "rma-rw")

    def test_table_rejects_zero_budget(self):
        with pytest.raises(ValueError, match="max_swaps_per_boundary"):
            PolicyTable(rules=(), max_swaps_per_boundary=0)

    def test_min_entry_words_covers_largest_rule_target(self, machine):
        words = policy_min_entry_words(machine, ADAPTIVE_POLICY)
        spin, _ = build_lock_table(machine, "fompi-spin", 1)
        assert words > spin.specs[0].window_words  # rma-rw needs more room


class TestSwapPlan:
    def _table(self, machine, scheme="fompi-spin"):
        table, _ = build_lock_table(
            machine, scheme, ADAPTIVE_SCENARIO.num_locks,
            min_entry_words=policy_min_entry_words(machine, ADAPTIVE_POLICY),
        )
        return table

    def _config(self, machine, **kw):
        kw.setdefault("scheme", "fompi-spin")
        kw.setdefault("benchmark", "traffic-adaptive")
        kw.setdefault("iterations", 10)
        kw.setdefault("seed", 3)
        return LockBenchConfig(machine=machine, **kw)

    def test_adaptive_policy_produces_swaps(self, machine):
        plan = build_swap_plan(
            ADAPTIVE_SCENARIO, self._config(machine), self._table(machine), ADAPTIVE_POLICY
        )
        assert plan.num_boundaries == 2
        assert not plan.empty
        schemes = {swap.scheme for swap in plan.swaps}
        assert schemes <= {"d-mcs", "rma-rw"}
        # Versions increase monotonically per entry.
        for entry in {s.entry_index for s in plan.swaps}:
            versions = [s.version for s in plan.swaps if s.entry_index == entry]
            assert versions == sorted(versions)

    def test_plan_is_deterministic(self, machine):
        args = (ADAPTIVE_SCENARIO, self._config(machine), self._table(machine), ADAPTIVE_POLICY)
        a = build_swap_plan(*args)
        b = build_swap_plan(*args)
        key = lambda p: [(s.boundary, s.entry_index, s.version, s.scheme, s.rule) for s in p.swaps]
        assert key(a) == key(b)

    def test_null_policy_and_single_phase_plans_are_empty(self, machine):
        config = self._config(machine)
        table = self._table(machine)
        assert build_swap_plan(ADAPTIVE_SCENARIO, config, table, None).empty
        assert build_swap_plan(ADAPTIVE_SCENARIO, config, table, PolicyTable()).empty
        single = TrafficScenario(name="x", num_locks=16)
        assert build_swap_plan(single, config, table, ADAPTIVE_POLICY).num_boundaries == 0

    def test_budget_caps_swaps_per_boundary(self, machine):
        tight = PolicyTable(rules=ADAPTIVE_POLICY.rules, max_swaps_per_boundary=1)
        plan = build_swap_plan(
            ADAPTIVE_SCENARIO, self._config(machine), self._table(machine), tight
        )
        per_boundary = {}
        for swap in plan.swaps:
            per_boundary[swap.boundary] = per_boundary.get(swap.boundary, 0) + 1
        assert per_boundary and all(n == 1 for n in per_boundary.values())

    def test_undersized_slab_fails_at_plan_time(self, machine):
        # A table built without the policy's slab floor cannot place rma-rw.
        table, _ = build_lock_table(machine, "fompi-spin", ADAPTIVE_SCENARIO.num_locks)
        with pytest.raises(ValueError):
            build_swap_plan(
                ADAPTIVE_SCENARIO, self._config(machine), table, ADAPTIVE_POLICY
            )


class TestSwapDeterminism:
    """The acceptance criterion: adaptive runs are bit-reproducible."""

    def test_adaptive_run_identical_across_schedulers(self, machine):
        config = LockBenchConfig(
            machine=machine, scheme="fompi-spin", benchmark="traffic-adaptive",
            iterations=10, fw=0.2, seed=3,
        )
        shas = {}
        for scheduler in DETERMINISTIC_SCHEDULERS:
            result, raw = run_lock_benchmark_detailed(config, scheduler=scheduler)
            assert result.percentiles["swaps_total"] > 0  # the policy really fired
            shas[scheduler] = run_result_sha(raw)
        assert len(set(shas.values())) == 1, shas

    @pytest.mark.parametrize("scheme", ("rma-rw", "fompi-spin"))
    def test_null_policy_is_bit_identical_to_policy_free_run(self, machine, scheme):
        base = dict(
            num_locks=8, arrival="poisson", mean_gap_us=6.0, key_dist="zipf",
            zipf_exponent=1.0, fw=0.3,
            phases=(
                Phase(duration_us=100.0, rate_scale=1.0, name="a"),
                Phase(duration_us=None, rate_scale=1.0, name="b"),
            ),
        )
        register_traffic_scenario(
            TrafficScenario(name="traffic-nullpol-free", **base), tags=("traffic-test",)
        )
        register_traffic_scenario(
            TrafficScenario(name="traffic-nullpol-ctl", **base),
            policy=PolicyTable(),  # no rules: the plan must be empty
            tags=("traffic-test",),
        )
        try:
            for scheduler in DETERMINISTIC_SCHEDULERS:
                shas = []
                for benchmark in ("traffic-nullpol-free", "traffic-nullpol-ctl"):
                    config = LockBenchConfig(
                        machine=machine, scheme=scheme, benchmark=benchmark,
                        iterations=6, fw=0.3, seed=5,
                    )
                    _, raw = run_lock_benchmark_detailed(config, scheduler=scheduler)
                    shas.append(run_result_sha(raw))
                assert shas[0] == shas[1], scheduler
        finally:
            unregister("benchmark", "traffic-nullpol-free")
            unregister("benchmark", "traffic-nullpol-ctl")

    def test_parallel_jobs_match_serial_bit_for_bit(self):
        spec = CampaignSpec(
            name="adaptive-jobs", schemes=("fompi-spin",),
            benchmarks=("traffic-adaptive",), process_counts=(8,),
            fw_values=(0.2,), iterations=6, procs_per_node=4, seed=7,
        )
        serial = run_campaign(spec, cache=False, jobs=1)
        parallel = run_campaign(spec, cache=False, jobs=2)
        assert [r["fingerprint"] for r in serial.rows] == [
            r["fingerprint"] for r in parallel.rows
        ]
        assert all(r["percentiles"]["swaps_total"] > 0 for r in serial.rows)


class TestOraclesAcrossSwaps:
    def test_conformance_oracles_span_the_swap(self):
        """The observer attached to entry 0 survives handle rebuilds, so the
        safety/fairness oracles judge the whole adaptive run."""
        from repro.bench.conformance import ConformancePoint, run_conformance_point

        point = ConformancePoint(
            scheme="fompi-spin", benchmark="traffic-adaptive", procs=8,
            procs_per_node=4, iterations=6, fw=0.2, seed=13, perturb_seed=0,
        )
        row = run_conformance_point(point)
        assert row["ok"], row["violations"]
        assert row["reproducible"] is True
        assert row["acquires"] > 0
