"""Tests for the Dragonfly topology model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.dragonfly import DragonflyTopology
from repro.topology.machine import Machine


@pytest.fixture
def dragonfly() -> DragonflyTopology:
    return DragonflyTopology(num_groups=3, routers_per_group=2, nodes_per_router=2)


class TestShape:
    def test_counts(self, dragonfly):
        assert dragonfly.num_routers == 6
        assert dragonfly.num_nodes == 12
        assert dragonfly.local_links_per_group == 1
        assert dragonfly.num_global_links == 3

    def test_single_group_has_no_global_links(self):
        topo = DragonflyTopology(num_groups=1, routers_per_group=4, nodes_per_router=2)
        assert topo.num_global_links == 0
        assert topo.local_links_per_group == 6

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError):
            DragonflyTopology(num_groups=0, routers_per_group=1, nodes_per_router=1)
        with pytest.raises(ValueError):
            DragonflyTopology(num_groups=1, routers_per_group=0, nodes_per_router=1)
        with pytest.raises(ValueError):
            DragonflyTopology(num_groups=1, routers_per_group=1, nodes_per_router=0)

    def test_router_of_packs_nodes_in_index_order(self, dragonfly):
        assert dragonfly.router_of(0) == (0, 0)
        assert dragonfly.router_of(1) == (0, 0)
        assert dragonfly.router_of(2) == (0, 1)
        assert dragonfly.router_of(4) == (1, 0)
        assert dragonfly.group_of(11) == 2

    def test_router_of_rejects_out_of_range(self, dragonfly):
        with pytest.raises(ValueError):
            dragonfly.router_of(12)

    def test_describe_mentions_counts(self, dragonfly):
        text = dragonfly.describe()
        assert "3 groups" in text and "12 nodes" in text


class TestForMachine:
    def test_covers_every_compute_node(self):
        machine = Machine.cluster(nodes=10, procs_per_node=4)
        topo = DragonflyTopology.for_machine(machine, nodes_per_router=2, routers_per_group=2)
        assert topo.num_nodes >= 10
        assert topo.num_groups == 3  # ceil(10 / 4)

    def test_single_node_machine_fits_one_group(self):
        machine = Machine.single_node(8)
        topo = DragonflyTopology.for_machine(machine)
        assert topo.num_groups == 1


class TestRouting:
    def test_same_router_route_uses_only_terminal_links(self, dragonfly):
        route = dragonfly.route(0, 1)
        assert all(link[0] == "terminal" for link in route)
        assert len(route) == 2

    def test_same_group_route_has_no_global_link(self, dragonfly):
        route = dragonfly.route(0, 2)
        kinds = [link[0] for link in route]
        assert "global" not in kinds
        assert kinds.count("local") == 1

    def test_inter_group_route_crosses_exactly_one_global_link(self, dragonfly):
        route = dragonfly.route(0, 11)
        kinds = [link[0] for link in route]
        assert kinds.count("global") == 1

    def test_global_link_is_shared_between_directions(self, dragonfly):
        forward = {l for l in dragonfly.route(0, 11) if l[0] == "global"}
        backward = {l for l in dragonfly.route(11, 0) if l[0] == "global"}
        assert forward == backward

    def test_hop_count_zero_for_self(self, dragonfly):
        assert dragonfly.hop_count(3, 3) == 0
        assert dragonfly.hop_count(0, 11) == len(dragonfly.route(0, 11))

    def test_gateway_requires_distinct_groups(self, dragonfly):
        with pytest.raises(ValueError):
            dragonfly.gateway_router(1, 1)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_route_properties_hold_for_random_pairs(self, data):
        topo = DragonflyTopology(
            num_groups=data.draw(st.integers(1, 4)),
            routers_per_group=data.draw(st.integers(1, 4)),
            nodes_per_router=data.draw(st.integers(1, 3)),
        )
        src = data.draw(st.integers(0, topo.num_nodes - 1))
        dst = data.draw(st.integers(0, topo.num_nodes - 1))
        route = topo.route(src, dst)
        kinds = [link[0] for link in route]
        # Minimal routing bounds: at most 2 terminal, 2 local and 1 global link.
        assert kinds.count("terminal") == 2
        assert kinds.count("local") <= 2
        assert kinds.count("global") <= 1
        if topo.group_of(src) == topo.group_of(dst):
            assert "global" not in kinds
        else:
            assert kinds.count("global") == 1
        assert len(route) <= 5
