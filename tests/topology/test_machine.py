"""Unit and property tests for the machine hierarchy model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.machine import Machine


class TestConstruction:
    def test_single_node(self):
        m = Machine.single_node(8)
        assert m.n_levels == 1
        assert m.num_processes == 8
        assert m.num_elements(1) == 1
        assert m.ranks_per_element(1) == 8

    def test_cluster(self):
        m = Machine.cluster(nodes=4, procs_per_node=16)
        assert m.n_levels == 2
        assert m.num_processes == 64
        assert m.num_elements(1) == 1
        assert m.num_elements(2) == 4
        assert m.ranks_per_element(2) == 16

    def test_multi_rack(self):
        m = Machine.multi_rack(racks=2, nodes_per_rack=2, procs_per_node=6)
        assert m.n_levels == 3
        assert m.num_processes == 24
        assert m.num_elements(2) == 2
        assert m.num_elements(3) == 4

    def test_from_level_sizes(self):
        m = Machine.from_level_sizes([3, 2], procs_per_leaf=4)
        assert m.n_levels == 3
        assert m.num_elements(3) == 6
        assert m.num_processes == 24

    def test_default_level_names(self):
        assert Machine.cluster(2, 2).level_names == ("machine", "node")
        assert Machine.multi_rack(2, 2, 2).level_names == ("machine", "rack", "node")
        assert Machine.single_node(4).level_names == ("machine",)

    def test_custom_level_names(self):
        m = Machine(fanouts=(2,), procs_per_leaf=4, level_names=("system", "blade"))
        assert m.level_names == ("system", "blade")

    def test_wrong_number_of_level_names_rejected(self):
        with pytest.raises(ValueError):
            Machine(fanouts=(2, 2), procs_per_leaf=4, level_names=("a", "b"))

    def test_invalid_procs_per_leaf(self):
        with pytest.raises(ValueError):
            Machine(fanouts=(2,), procs_per_leaf=0)

    def test_invalid_fanout(self):
        with pytest.raises(ValueError):
            Machine(fanouts=(0,), procs_per_leaf=2)

    def test_many_levels_generic_names(self):
        m = Machine(fanouts=(2, 2, 2, 2), procs_per_leaf=1)
        assert m.n_levels == 5
        assert m.level_names[0] == "level1"
        assert m.level_names[-1] == "level5"


class TestQueries:
    def test_levels_descriptions(self):
        m = Machine.multi_rack(2, 2, 6)
        levels = m.levels()
        assert [lvl.index for lvl in levels] == [1, 2, 3]
        assert [lvl.num_elements for lvl in levels] == [1, 2, 4]
        assert [lvl.ranks_per_element for lvl in levels] == [24, 12, 6]

    def test_element_of(self):
        m = Machine.cluster(nodes=4, procs_per_node=4)
        assert m.element_of(0, 2) == 0
        assert m.element_of(3, 2) == 0
        assert m.element_of(4, 2) == 1
        assert m.element_of(15, 2) == 3
        assert all(m.element_of(r, 1) == 0 for r in m.iter_ranks())

    def test_ranks_in_element(self):
        m = Machine.cluster(nodes=4, procs_per_node=4)
        assert list(m.ranks_in_element(2, 0)) == [0, 1, 2, 3]
        assert list(m.ranks_in_element(2, 3)) == [12, 13, 14, 15]
        assert list(m.ranks_in_element(1, 0)) == list(range(16))

    def test_first_rank_of_element(self):
        m = Machine.multi_rack(2, 2, 3)
        assert m.first_rank_of_element(3, 0) == 0
        assert m.first_rank_of_element(3, 2) == 6
        assert m.first_rank_of_element(2, 1) == 6
        assert m.first_rank_of_element(1, 0) == 0

    def test_node_of(self):
        m = Machine.cluster(nodes=3, procs_per_node=5)
        assert m.node_of(0) == 0
        assert m.node_of(4) == 0
        assert m.node_of(5) == 1
        assert m.node_of(14) == 2

    def test_common_level_same_rank(self):
        m = Machine.cluster(nodes=2, procs_per_node=4)
        assert m.common_level(3, 3) == m.n_levels + 1

    def test_common_level_same_node(self):
        m = Machine.cluster(nodes=2, procs_per_node=4)
        assert m.common_level(0, 3) == 2
        assert m.same_node(0, 3)

    def test_common_level_cross_node(self):
        m = Machine.cluster(nodes=2, procs_per_node=4)
        assert m.common_level(0, 4) == 1
        assert not m.same_node(0, 4)

    def test_common_level_three_levels(self):
        m = Machine.multi_rack(racks=2, nodes_per_rack=2, procs_per_node=3)
        # ranks 0-2 node0, 3-5 node1 (rack 0); 6-8 node2, 9-11 node3 (rack 1)
        assert m.common_level(0, 1) == 3
        assert m.common_level(0, 3) == 2
        assert m.common_level(0, 6) == 1

    def test_common_level_is_symmetric(self):
        m = Machine.multi_rack(2, 2, 3)
        for a in m.iter_ranks():
            for b in m.iter_ranks():
                assert m.common_level(a, b) == m.common_level(b, a)

    def test_describe_mentions_process_count(self):
        m = Machine.cluster(nodes=2, procs_per_node=8)
        text = m.describe()
        assert "P=16" in text
        assert "node" in text

    def test_iter_ranks(self):
        m = Machine.cluster(nodes=2, procs_per_node=3)
        assert list(m.iter_ranks()) == list(range(6))


class TestValidation:
    def test_level_out_of_range(self):
        m = Machine.cluster(2, 2)
        with pytest.raises(ValueError):
            m.num_elements(0)
        with pytest.raises(ValueError):
            m.num_elements(3)

    def test_rank_out_of_range(self):
        m = Machine.cluster(2, 2)
        with pytest.raises(ValueError):
            m.element_of(4, 1)
        with pytest.raises(ValueError):
            m.element_of(-1, 1)
        with pytest.raises(ValueError):
            m.common_level(0, 99)

    def test_element_out_of_range(self):
        m = Machine.cluster(2, 2)
        with pytest.raises(ValueError):
            m.ranks_in_element(2, 2)


@st.composite
def machines(draw):
    n_extra_levels = draw(st.integers(min_value=0, max_value=3))
    fanouts = tuple(draw(st.integers(min_value=1, max_value=4)) for _ in range(n_extra_levels))
    procs = draw(st.integers(min_value=1, max_value=6))
    return Machine(fanouts=fanouts, procs_per_leaf=procs)


class TestProperties:
    @given(machines())
    @settings(max_examples=60, deadline=None)
    def test_elements_partition_ranks(self, machine: Machine):
        """At every level the elements partition the ranks exactly."""
        for level in range(1, machine.n_levels + 1):
            seen = []
            for element in range(machine.num_elements(level)):
                seen.extend(machine.ranks_in_element(level, element))
            assert sorted(seen) == list(range(machine.num_processes))

    @given(machines())
    @settings(max_examples=60, deadline=None)
    def test_element_of_consistent_with_ranks_in_element(self, machine: Machine):
        for level in range(1, machine.n_levels + 1):
            for rank in machine.iter_ranks():
                element = machine.element_of(rank, level)
                assert rank in machine.ranks_in_element(level, element)

    @given(machines())
    @settings(max_examples=60, deadline=None)
    def test_level_sizes_multiply(self, machine: Machine):
        for level in range(1, machine.n_levels + 1):
            assert machine.num_elements(level) * machine.ranks_per_element(level) == machine.num_processes

    @given(machines(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_common_level_bounds(self, machine: Machine, data):
        a = data.draw(st.integers(min_value=0, max_value=machine.num_processes - 1))
        b = data.draw(st.integers(min_value=0, max_value=machine.num_processes - 1))
        level = machine.common_level(a, b)
        assert 1 <= level <= machine.n_levels + 1
        if a == b:
            assert level == machine.n_levels + 1
        else:
            assert machine.element_of(a, level if level <= machine.n_levels else machine.n_levels) == \
                machine.element_of(b, level if level <= machine.n_levels else machine.n_levels)

    @given(machines())
    @settings(max_examples=60, deadline=None)
    def test_first_rank_is_member_and_minimal(self, machine: Machine):
        for level in range(1, machine.n_levels + 1):
            for element in range(machine.num_elements(level)):
                ranks = machine.ranks_in_element(level, element)
                assert machine.first_rank_of_element(level, element) == min(ranks)
