"""Tests for the machine builders used by the benchmark sweeps."""

from __future__ import annotations

import pytest

from repro.topology.builder import (
    XC30_PROCS_PER_NODE,
    cached_machine,
    figure2_machine,
    machines_for_sweep,
    xc30_like,
)


class TestXC30Like:
    def test_sub_node_counts_collapse_to_single_node(self):
        for p in (1, 2, 8, 15):
            m = xc30_like(p)
            assert m.num_processes == p
            assert m.n_levels == 2
            assert m.num_elements(2) == 1

    def test_exact_node_boundary(self):
        m = xc30_like(16)
        assert m.num_elements(2) == 1
        assert m.ranks_per_element(2) == 16

    def test_multi_node(self):
        m = xc30_like(64)
        assert m.num_elements(2) == 4
        assert m.ranks_per_element(2) == XC30_PROCS_PER_NODE

    def test_custom_node_width(self):
        m = xc30_like(32, procs_per_node=8)
        assert m.num_elements(2) == 4
        assert m.ranks_per_element(2) == 8

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            xc30_like(40, procs_per_node=16)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            xc30_like(0)
        with pytest.raises(ValueError):
            xc30_like(8, procs_per_node=0)


class TestFigure2Machine:
    def test_shape(self):
        m = figure2_machine()
        assert m.n_levels == 3
        assert m.num_elements(2) == 2
        assert m.num_elements(3) == 4

    def test_custom_width(self):
        m = figure2_machine(procs_per_node=2)
        assert m.num_processes == 8


class TestCachedMachine:
    def test_returns_one_shared_instance_per_key(self):
        assert cached_machine(32, 8) is cached_machine(32, 8)
        assert cached_machine(32, 8) == xc30_like(32, procs_per_node=8)
        assert cached_machine(32, 8) is not cached_machine(32, 16)

    def test_topologies(self):
        assert cached_machine(24, 6, "figure2") == figure2_machine(procs_per_node=6)
        with pytest.raises(ValueError, match="unknown topology"):
            cached_machine(8, 8, "torus")

    def test_memo_is_lru_bounded(self):
        # Long multi-topology traffic sweeps must not grow the machine memo
        # without limit; the cache is a bounded LRU, and eviction only costs
        # a re-construction (identity may change, equality never does).
        info = cached_machine.cache_parameters()
        assert info["maxsize"] == 128
        before = cached_machine(32, 8)
        for nodes in range(1, 140):
            cached_machine(nodes * 4, 4)
        assert cached_machine.cache_info().currsize <= 128
        assert cached_machine(32, 8) == before

    def test_figure2_rejects_mismatched_process_count(self):
        # 2 racks x 2 nodes x 6 ranks = 24, so requesting 12 is a config error
        # (not a silent 24-process machine under a P=12 label).
        with pytest.raises(ValueError, match="not the requested"):
            cached_machine(12, 6, "figure2")


class TestSweep:
    def test_machines_for_sweep_yields_pairs(self):
        pairs = list(machines_for_sweep([4, 8, 32], procs_per_node=8))
        assert [p for p, _ in pairs] == [4, 8, 32]
        assert pairs[0][1].num_processes == 4
        assert pairs[2][1].num_elements(2) == 4
