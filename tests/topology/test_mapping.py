"""Tests for the counter and tail-rank placement mappings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.machine import Machine
from repro.topology.mapping import CounterPlacement, counter_rank, counter_ranks, tail_rank


class TestCounterRank:
    def test_stride_one_every_rank_owns_a_counter(self):
        assert [counter_rank(r, 1, 8) for r in range(8)] == list(range(8))

    def test_stride_groups(self):
        assert counter_rank(0, 4, 16) == 0
        assert counter_rank(3, 4, 16) == 0
        assert counter_rank(4, 4, 16) == 4
        assert counter_rank(15, 4, 16) == 12

    def test_stride_larger_than_p_single_counter(self):
        assert all(counter_rank(r, 100, 8) == 0 for r in range(8))

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            counter_rank(0, 0, 8)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            counter_rank(8, 2, 8)

    def test_counter_ranks_list(self):
        assert counter_ranks(4, 16) == [0, 4, 8, 12]
        assert counter_ranks(16, 16) == [0]
        assert counter_ranks(1, 3) == [0, 1, 2]

    def test_counter_ranks_invalid(self):
        with pytest.raises(ValueError):
            counter_ranks(0, 8)

    @given(st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=80, deadline=None)
    def test_owner_is_a_counter_rank(self, t_dc, p):
        owners = counter_ranks(t_dc, p)
        for rank in range(p):
            assert counter_rank(rank, t_dc, p) in owners


class TestCounterPlacement:
    def test_per_node_default(self):
        m = Machine.cluster(nodes=4, procs_per_node=8)
        placement = CounterPlacement.per_node(m)
        assert placement.t_dc == 8
        assert placement.owners() == [0, 8, 16, 24]
        assert placement.num_counters == 4
        assert placement.owner(13) == 8

    def test_per_every_second_node(self):
        m = Machine.cluster(nodes=4, procs_per_node=8)
        placement = CounterPlacement.per_node(m, every_kth_node=2)
        assert placement.t_dc == 16
        assert placement.owners() == [0, 16]

    def test_single_counter(self):
        m = Machine.cluster(nodes=4, procs_per_node=8)
        placement = CounterPlacement.single(m)
        assert placement.num_counters == 1
        assert placement.owner(31) == 0

    def test_per_node_caps_at_machine_size(self):
        m = Machine.single_node(4)
        placement = CounterPlacement.per_node(m, every_kth_node=3)
        assert placement.t_dc <= m.num_processes

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            CounterPlacement(t_dc=0, num_processes=4)
        with pytest.raises(ValueError):
            CounterPlacement(t_dc=2, num_processes=0)
        m = Machine.cluster(2, 2)
        with pytest.raises(ValueError):
            CounterPlacement.per_node(m, every_kth_node=0)


class TestTailRank:
    def test_tail_rank_is_first_rank_of_element(self):
        m = Machine.multi_rack(racks=2, nodes_per_rack=2, procs_per_node=3)
        assert tail_rank(m, 1, 0) == 0
        assert tail_rank(m, 2, 1) == 6
        assert tail_rank(m, 3, 3) == 9

    def test_tail_rank_rejects_bad_element(self):
        m = Machine.cluster(2, 4)
        with pytest.raises(ValueError):
            tail_rank(m, 2, 5)
