"""Tests for the runtime-agnostic pieces: RunResult and the spin convenience wrapper."""

from __future__ import annotations

import pytest

from repro.rma.runtime_base import RunResult
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine


class TestRunResult:
    def test_counts_and_totals(self):
        result = RunResult(
            returns=[1, 2, 3],
            finish_times_us=[5.0, 7.0, 6.0],
            total_time_us=7.0,
            op_counts={"put": 3, "get": 2},
            per_rank_op_counts=[{"put": 1}, {"put": 1, "get": 2}, {"put": 1}],
        )
        assert result.num_ranks == 3
        assert result.total_ops() == 5

    def test_empty_op_counts(self):
        result = RunResult(returns=[], finish_times_us=[], total_time_us=0.0)
        assert result.total_ops() == 0
        assert result.num_ranks == 0


class TestSpinWhileWrapper:
    def test_single_cell_wrapper_delegates_to_multi_cell(self):
        machine = Machine.single_node(2)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            if ctx.rank == 0:
                ctx.compute(5.0)
                ctx.put(3, 1, 2)
                ctx.flush(1)
                return None
            return ctx.spin_while(1, 2, lambda v: v < 3)

        result = rt.run(program)
        assert result.returns[1] == 3

    def test_spin_returns_immediately_when_condition_already_false(self):
        machine = Machine.single_node(2)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            start = ctx.now()
            value = ctx.spin_while(ctx.rank, 0, lambda v: v != 0)  # already 0
            return value, ctx.now() - start

        result = rt.run(program)
        for value, elapsed in result.returns:
            assert value == 0
            assert elapsed < 5.0  # one local get + flush, no parking
