"""Registry-wide runtime conformance: every deterministic backend is one core.

The golden-determinism suite pins the *named* schedulers; this suite pins the
**registry contract**: any runtime registered with ``@register_runtime``
(``deterministic=True``) — including one a third party registers at runtime —
must

1. reproduce the recorded golden fingerprints at P in {8, 32} bit-exactly,
2. round-trip through the ``Cluster``/``Session`` facade
   (``Cluster(runtime=<name>).session(lock).run(...)``) with results
   bit-identical to the horizon scheduler, and
3. (vector specifically) hold golden bit-exactness under explicit shard
   counts, so the sharded lookahead path is exercised by tier-1 and not just
   by whatever ``"auto"`` resolves to on the current host.

The third-party backend registered here wraps the vector core with a fixed
two-shard plan — exactly what an external package would ship — and is torn
down again so registration is side-effect free for the rest of the session.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import registry
from repro.api.registry import get_runtime, register_runtime, runtime_names
from repro.api.session import Cluster
from repro.bench.campaign import run_result_sha
from repro.bench.harness import build_lock_spec, make_lock_program

from golden_cases import GOLDEN_CASES, golden_config, result_fingerprint

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "seed_scheduler.json"

THIRD_PARTY_NAME = "acme-batched"


@pytest.fixture(scope="module")
def third_party_runtime():
    """Register an out-of-tree style backend; unregister on teardown."""
    from repro.rma.vector_runtime import VectorRuntime

    @register_runtime(
        THIRD_PARTY_NAME,
        help="test-only third-party backend (vector core pinned to 2 shards)",
    )
    def _make_acme(
        machine, *, window_words=64, seed=0, latency=None, fabric=None,
        tracer=None, perturbation=None, observer=None,
    ):
        return VectorRuntime(
            machine,
            window_words=window_words,
            seed=seed,
            latency=latency,
            fabric=fabric,
            tracer=tracer,
            perturbation=perturbation,
            observer=observer,
            shards=2,
        )

    try:
        yield THIRD_PARTY_NAME
    finally:
        registry.unregister("runtime", THIRD_PARTY_NAME)


@pytest.fixture(scope="module")
def recorded_goldens():
    return json.loads(GOLDEN_PATH.read_text())["cases"]


def _run_golden_case(name: str, runtime_name: str, **factory_kwargs):
    config = golden_config(name)
    spec, is_rw = build_lock_spec(config)
    runtime = get_runtime(runtime_name).factory(
        config.machine,
        window_words=spec.window_words + 2,
        seed=config.seed,
        **factory_kwargs,
    )
    program = make_lock_program(config, spec, is_rw, spec.window_words)
    return runtime.run(program, window_init=spec.init_window)


def _assert_matches_golden(name, runtime_name, recorded, **factory_kwargs):
    result = _run_golden_case(name, runtime_name, **factory_kwargs)
    fingerprint = result_fingerprint(result)
    reference = recorded[name]
    for field in reference:
        assert fingerprint[field] == reference[field], (
            f"{name}: {runtime_name}: {field} diverged from the recorded "
            f"golden fingerprint"
        )


def test_all_registered_runtimes_are_enumerable():
    names = runtime_names(deterministic=True)
    assert {"horizon", "baseline", "vector"} <= set(names)
    # Wall-clock backends must not leak into the deterministic set.
    assert "thread" not in names


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_every_registered_runtime_reproduces_goldens(name, recorded_goldens):
    """The registry's deterministic set reproduces P in {8, 32} goldens."""
    for runtime_name in runtime_names(deterministic=True):
        _assert_matches_golden(name, runtime_name, recorded_goldens)


@pytest.mark.parametrize("name", ["rma-mcs-ecsb-p8", "rma-rw-wcsb-p32"])
def test_third_party_runtime_reproduces_goldens(
    name, third_party_runtime, recorded_goldens
):
    """A backend registered at runtime is held to the exact same contract."""
    assert third_party_runtime in runtime_names(deterministic=True)
    _assert_matches_golden(name, third_party_runtime, recorded_goldens)


@pytest.mark.parametrize("shards", [2, 4])
@pytest.mark.parametrize("name", ["rma-mcs-ecsb-p8", "rma-rw-wcsb-p32"])
def test_vector_explicit_shards_reproduce_goldens(name, shards, recorded_goldens):
    """Sharded lookahead stays bit-exact regardless of the shard count."""
    _assert_matches_golden(name, "vector", recorded_goldens, shards=shards)


def _counter_program(lock, scratch_offset: int):
    def program(ctx):
        handle = lock.make(ctx)
        for _ in range(3):
            handle.acquire()
            ctx.accumulate(1, 0, scratch_offset)
            handle.release()
        return ctx.now()

    return program


def _session_sha(runtime_name: str) -> str:
    cluster = Cluster(procs=16, procs_per_node=4, runtime=runtime_name, seed=11)
    lock = cluster.lock("rma-mcs")
    session = cluster.session(lock, extra_words=2)
    result = session.run(_counter_program(lock, lock.window_words))
    # The shared counter lives on rank 0, one word past the lock's layout.
    assert session.window(0).read(lock.window_words) == 3 * cluster.num_processes
    return run_result_sha(result)


def test_session_round_trip_is_identical_across_runtimes(third_party_runtime):
    """Cluster(runtime=...).session(...) runs bit-identically everywhere."""
    reference = _session_sha("horizon")
    for runtime_name in runtime_names(deterministic=True):
        if runtime_name == "horizon":
            continue
        assert _session_sha(runtime_name) == reference, (
            f"Cluster.session round-trip on {runtime_name!r} diverged from horizon"
        )
