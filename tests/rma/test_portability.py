"""Tests for the Table-3 portability layer and the SHMEM/UPC facades."""

from __future__ import annotations

import pytest

from repro.rma.portability import (
    PORTABILITY_TABLE,
    ShmemFacade,
    UpcFacade,
    environments,
    operations,
    supports_all_required_ops,
)
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine

REQUIRED_OPS = {"put", "get", "accumulate", "fao_sum", "fao_replace", "cas"}


class TestTable3:
    def test_all_six_environments_present(self):
        assert environments() == [
            "upc", "berkeley-upc", "shmem", "fortran-2008", "rdma-ib", "iwarp",
        ]

    def test_every_environment_covers_every_operation(self):
        for env in environments():
            assert set(operations(env)) == REQUIRED_OPS

    def test_fortran_swap_caveat(self):
        fortran = operations("fortran-2008")
        assert not fortran["fao_replace"].supported
        assert "swap" in fortran["fao_replace"].note

    def test_all_other_environments_fully_supported(self):
        for env in environments():
            if env == "fortran-2008":
                assert not supports_all_required_ops(env)
            else:
                assert supports_all_required_ops(env)

    def test_unknown_environment(self):
        with pytest.raises(KeyError):
            operations("openmp")

    def test_table_rows_are_unique(self):
        keys = [(e.environment, e.operation) for e in PORTABILITY_TABLE]
        assert len(keys) == len(set(keys)) == 36


class TestFacades:
    def test_shmem_facade_round_trip(self):
        machine = Machine.cluster(nodes=1, procs_per_node=2)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            shmem = ShmemFacade(ctx)
            assert shmem.my_pe == ctx.rank
            assert shmem.n_pes == 2
            if shmem.my_pe == 0:
                shmem.shmem_put(41, 1, 0)
                shmem.shmem_quiet(1)
                old = shmem.shmem_fadd(1, 0, 1)
                shmem.shmem_quiet(1)
                assert old == 41
            shmem.shmem_barrier_all()
            return shmem.shmem_get(1, 0)

        result = rt.run(program)
        assert result.returns == [42, 42]

    def test_shmem_swap_and_cswap(self):
        machine = Machine.single_node(2)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            shmem = ShmemFacade(ctx)
            if ctx.rank == 0:
                first = shmem.shmem_swap(0, 1, 7)
                shmem.shmem_quiet(0)
                second = shmem.shmem_cswap(0, 1, cond=7, value=9)
                shmem.shmem_quiet(0)
                failed = shmem.shmem_cswap(0, 1, cond=7, value=11)
                shmem.shmem_quiet(0)
                return first, second, failed
            return None

        result = rt.run(program)
        assert result.returns[0] == (0, 7, 9)
        assert rt.window(0).read(1) == 9

    def test_upc_facade_counter(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            upc = UpcFacade(ctx)
            assert upc.threads == 4
            upc.upc_inc(0, 2, 1)
            upc.upc_fence(0)
            upc.upc_barrier()
            return upc.upc_get(0, 2)

        result = rt.run(program)
        assert result.returns == [4, 4, 4, 4]

    def test_upc_cswap_single_winner(self):
        machine = Machine.single_node(4)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            upc = UpcFacade(ctx)
            won = upc.upc_cswap(0, 3, compare=0, value=upc.mythread + 1) == 0
            upc.upc_fence(0)
            return won

        result = rt.run(program)
        assert sum(result.returns) == 1

    def test_mcs_lock_runs_on_top_of_shmem_style_calls(self):
        """The D-MCS protocol expressed through the SHMEM facade still works."""
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        rt = SimRuntime(machine, window_words=8)
        NEXT, WAIT, TAIL, COUNTER = 0, 1, 2, 3

        def window_init(rank):
            values = {NEXT: -1, WAIT: 0}
            if rank == 0:
                values[TAIL] = -1
            return values

        def program(ctx):
            shmem = ShmemFacade(ctx)
            me = shmem.my_pe
            shmem.shmem_barrier_all()
            for _ in range(3):
                # acquire (Listing 2, SHMEM spelling)
                shmem.shmem_put(-1, me, NEXT)
                shmem.shmem_put(1, me, WAIT)
                shmem.shmem_quiet(me)
                pred = shmem.shmem_swap(0, TAIL, me)
                shmem.shmem_quiet(0)
                if pred != -1:
                    shmem.shmem_put(me, pred, NEXT)
                    shmem.shmem_quiet(pred)
                    ctx.spin_while(me, WAIT, lambda v: v == 1)
                # critical section
                count = shmem.shmem_get(0, COUNTER)
                shmem.shmem_quiet(0)
                shmem.shmem_put(count + 1, 0, COUNTER)
                shmem.shmem_quiet(0)
                # release (Listing 3)
                succ = shmem.shmem_get(me, NEXT)
                shmem.shmem_quiet(me)
                if succ == -1:
                    if shmem.shmem_cswap(0, TAIL, cond=me, value=-1) == me:
                        continue
                    succ = ctx.spin_while(me, NEXT, lambda v: v == -1)
                shmem.shmem_put(0, succ, WAIT)
                shmem.shmem_quiet(succ)
            shmem.shmem_barrier_all()

        rt.run(program, window_init=window_init)
        assert rt.window(0).read(COUNTER) == machine.num_processes * 3
