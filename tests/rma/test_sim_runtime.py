"""Tests for the deterministic discrete-event RMA runtime."""

from __future__ import annotations

import threading

import pytest

from repro.rma.latency import LatencyModel
from repro.rma.ops import AtomicOp
from repro.rma.runtime_base import RuntimeError_, SimDeadlockError
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine


def make_runtime(machine=None, **kwargs) -> SimRuntime:
    machine = machine or Machine.cluster(nodes=2, procs_per_node=2)
    kwargs.setdefault("window_words", 8)
    return SimRuntime(machine, **kwargs)


class TestBasics:
    def test_put_and_get_across_ranks(self):
        rt = make_runtime()

        def program(ctx):
            if ctx.rank == 1:
                ctx.put(111, 0, 3)
                ctx.flush(0)
            ctx.barrier()
            value = ctx.get(0, 3)
            ctx.flush(0)
            return value

        result = rt.run(program)
        assert result.returns == [111, 111, 111, 111]

    def test_returns_in_rank_order(self):
        rt = make_runtime()
        result = rt.run(lambda ctx: ctx.rank * 10)
        assert result.returns == [0, 10, 20, 30]

    def test_window_init_applied(self):
        rt = make_runtime()

        def init(rank):
            return {0: rank + 100}

        def program(ctx):
            value = ctx.get(ctx.rank, 0)
            ctx.flush(ctx.rank)
            return value

        result = rt.run(program, window_init=init)
        assert result.returns == [100, 101, 102, 103]

    def test_program_args_passed_per_rank(self):
        rt = make_runtime()
        result = rt.run(lambda ctx, arg: arg * 2, program_args=[1, 2, 3, 4])
        assert result.returns == [2, 4, 6, 8]

    def test_program_args_length_checked(self):
        rt = make_runtime()
        with pytest.raises(ValueError):
            rt.run(lambda ctx, arg: arg, program_args=[1, 2])

    def test_fao_accumulates_atomically_across_ranks(self):
        rt = make_runtime()

        def program(ctx):
            total = 0
            for _ in range(10):
                ctx.fao(1, 0, 0, AtomicOp.SUM)
                ctx.flush(0)
            ctx.barrier()
            return total

        rt.run(program)
        assert rt.window(0).read(0) == 4 * 10

    def test_cas_only_one_winner(self):
        rt = make_runtime()

        def program(ctx):
            prev = ctx.cas(ctx.rank + 1, 0, 0, 1)
            ctx.flush(0)
            return prev == 0  # True for the single winner

        result = rt.run(program)
        assert sum(result.returns) == 1
        assert rt.window(0).read(1) in {1, 2, 3, 4}

    def test_accumulate_replace(self):
        rt = make_runtime()

        def program(ctx):
            if ctx.rank == 2:
                ctx.accumulate(77, 1, 5, AtomicOp.REPLACE)
                ctx.flush(1)

        rt.run(program)
        assert rt.window(1).read(5) == 77

    def test_invalid_target_raises(self):
        rt = make_runtime()
        with pytest.raises(ValueError):
            rt.run(lambda ctx: ctx.put(1, 99, 0))

    def test_window_words_validated(self):
        with pytest.raises(ValueError):
            make_runtime(window_words=0)


class TestVirtualTime:
    def test_clock_advances_with_operations(self):
        rt = make_runtime()

        def program(ctx):
            start = ctx.now()
            ctx.put(1, (ctx.rank + 1) % ctx.nranks, 0)
            ctx.flush((ctx.rank + 1) % ctx.nranks)
            return ctx.now() - start

        result = rt.run(program)
        assert all(delta > 0 for delta in result.returns)

    def test_remote_costs_more_than_local(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        rt = SimRuntime(machine, window_words=4)

        def program(ctx):
            start = ctx.now()
            ctx.get(ctx.rank, 0)          # local
            local = ctx.now() - start
            start = ctx.now()
            ctx.get((ctx.rank + 2) % 4, 0)  # other node
            remote = ctx.now() - start
            return local, remote

        result = rt.run(program)
        for local, remote in result.returns:
            assert remote > local

    def test_compute_advances_clock(self):
        rt = make_runtime()

        def program(ctx):
            start = ctx.now()
            ctx.compute(12.5)
            return ctx.now() - start

        result = rt.run(program)
        assert all(abs(delta - 12.5) < 1e-9 for delta in result.returns)

    def test_compute_rejects_negative(self):
        rt = make_runtime()
        with pytest.raises(ValueError):
            rt.run(lambda ctx: ctx.compute(-1))

    def test_barrier_synchronizes_clocks(self):
        rt = make_runtime()

        def program(ctx):
            ctx.compute(float(ctx.rank) * 10.0)
            ctx.barrier()
            return ctx.now()

        result = rt.run(program)
        assert len(set(result.returns)) == 1
        assert result.returns[0] >= 30.0

    def test_total_time_is_max_finish_time(self):
        rt = make_runtime()

        def program(ctx):
            ctx.compute(5.0 * (ctx.rank + 1))

        result = rt.run(program)
        assert result.total_time_us == pytest.approx(max(result.finish_times_us))
        assert result.total_time_us == pytest.approx(20.0)

    def test_hot_target_serializes(self):
        """Concurrent atomics on one rank take longer than on distinct ranks."""
        machine = Machine.cluster(nodes=2, procs_per_node=4)

        def hammer_shared(ctx):
            for _ in range(20):
                ctx.fao(1, 0, 0, AtomicOp.SUM)
                ctx.flush(0)

        def hammer_private(ctx):
            for _ in range(20):
                ctx.fao(1, ctx.rank, 0, AtomicOp.SUM)
                ctx.flush(ctx.rank)

        hot = SimRuntime(machine, window_words=4).run(hammer_shared).total_time_us
        spread = SimRuntime(machine, window_words=4).run(hammer_private).total_time_us
        assert hot > spread


class TestDeterminism:
    def test_identical_runs_produce_identical_results(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)

        def program(ctx):
            for i in range(5):
                ctx.fao(int(ctx.rng.integers(1, 10)), 0, 0, AtomicOp.SUM)
                ctx.flush(0)
            return ctx.now()

        r1 = SimRuntime(machine, window_words=4, seed=9).run(program)
        r2 = SimRuntime(machine, window_words=4, seed=9).run(program)
        assert r1.returns == r2.returns
        assert r1.total_time_us == r2.total_time_us
        assert r1.op_counts == r2.op_counts

    def test_different_seed_changes_rng_draws(self):
        machine = Machine.cluster(nodes=1, procs_per_node=2)

        def program(ctx):
            return int(ctx.rng.integers(0, 1_000_000))

        r1 = SimRuntime(machine, window_words=2, seed=1).run(program)
        r2 = SimRuntime(machine, window_words=2, seed=2).run(program)
        assert r1.returns != r2.returns


class TestSpinAndWakeup:
    def test_spin_while_sees_remote_update(self):
        rt = make_runtime()

        def program(ctx):
            if ctx.rank == 0:
                ctx.compute(50.0)
                ctx.put(1, 1, 0)
                ctx.flush(1)
                return None
            if ctx.rank == 1:
                value = ctx.spin_while(1, 0, lambda v: v == 0)
                return value
            return None

        result = rt.run(program)
        assert result.returns[1] == 1

    def test_spin_on_multiple_cells(self):
        rt = make_runtime()

        def program(ctx):
            if ctx.rank == 0:
                ctx.compute(10.0)
                ctx.put(5, 0, 2)
                ctx.flush(0)
                ctx.compute(10.0)
                ctx.put(7, 0, 3)
                ctx.flush(0)
                return None
            if ctx.rank == 3:
                values = ctx.spin_on_cells([(0, 2), (0, 3)], lambda vs: vs[0] + vs[1] < 12)
                return tuple(values)
            return None

        result = rt.run(program)
        assert result.returns[3] == (5, 7)

    def test_woken_spinner_time_is_after_writer(self):
        rt = make_runtime()

        def program(ctx):
            if ctx.rank == 0:
                ctx.compute(100.0)
                ctx.put(1, 1, 0)
                ctx.flush(1)
                return ctx.now()
            if ctx.rank == 1:
                ctx.spin_while(1, 0, lambda v: v == 0)
                return ctx.now()
            return 0.0

        result = rt.run(program)
        assert result.returns[1] >= 100.0


class TestFailureModes:
    def test_deadlock_detected_when_everyone_spins(self):
        rt = make_runtime()

        def program(ctx):
            ctx.spin_while(ctx.rank, 0, lambda v: v == 0)  # nobody will ever write

        with pytest.raises(SimDeadlockError):
            rt.run(program)

    def test_deadlock_detected_when_barrier_is_missed(self):
        rt = make_runtime()

        def program(ctx):
            if ctx.rank != 0:
                ctx.barrier()

        with pytest.raises(SimDeadlockError):
            rt.run(program)

    def test_deadlock_message_mentions_blocked_ranks(self):
        rt = make_runtime()

        def program(ctx):
            if ctx.rank == 2:
                ctx.spin_while(2, 0, lambda v: v == 0)

        with pytest.raises(SimDeadlockError, match="rank 2"):
            rt.run(program)

    def test_exception_in_program_propagates(self):
        rt = make_runtime()

        def program(ctx):
            if ctx.rank == 1:
                raise ValueError("boom from rank 1")
            ctx.barrier()

        with pytest.raises(ValueError, match="boom from rank 1"):
            rt.run(program)

    def test_spin_predicate_error_surfaces_and_never_leaks_across_ranks(self):
        """A raising spin predicate fails the run with its own exception.

        The poll round that re-evaluates the predicate after a wake runs on
        whichever thread drives the scheduler (threadless waiters), so the
        error must be routed through the abort machinery instead of unwinding
        through another rank's program frames.
        """
        rt = make_runtime()

        def flaky_predicate(v):
            if v != 0:
                raise ValueError("predicate exploded")
            return True  # keep spinning while the cell is 0

        def program(ctx):
            if ctx.rank == 1:
                ctx.spin_while(1, 0, flaky_predicate)
                return None
            if ctx.rank == 0:
                caught = False
                try:
                    ctx.compute(50.0)
                    ctx.put(1, 1, 0)  # wakes rank 1, whose re-poll raises
                    ctx.flush(1)
                    ctx.compute(50.0)
                except ValueError:
                    caught = True  # must never see rank 1's error
                assert not caught, "rank 1's predicate error leaked into rank 0"
            return None

        with pytest.raises(ValueError, match="predicate exploded"):
            rt.run(program)

    def test_spin_error_on_first_poll_propagates_like_any_program_error(self):
        rt = make_runtime()

        def program(ctx):
            if ctx.rank == 2:
                ctx.spin_while(0, 0, lambda v: 1 / 0 > 0)
            ctx.barrier()

        with pytest.raises(ZeroDivisionError):
            rt.run(program)

    def test_max_ops_guards_against_livelock(self):
        rt = make_runtime(max_ops=50)

        def program(ctx):
            for _ in range(1000):
                ctx.get(0, 0)
                ctx.flush(0)

        with pytest.raises(RuntimeError_, match="max_ops"):
            rt.run(program)


class TestRunLifecycle:
    def test_concurrent_run_on_same_instance_rejected(self):
        rt = make_runtime()
        started = threading.Event()
        release = threading.Event()

        def slow_program(ctx):
            if ctx.rank == 0:
                started.set()
                release.wait(timeout=30)
            return ctx.rank

        results = {}

        def driver():
            results["first"] = rt.run(slow_program)

        t = threading.Thread(target=driver, daemon=True)
        t.start()
        assert started.wait(timeout=30)
        with pytest.raises(RuntimeError_, match="not reentrant"):
            rt.run(lambda ctx: ctx.rank)
        release.set()
        t.join(timeout=30)
        assert not t.is_alive()
        assert results["first"].returns == [0, 1, 2, 3]
        # The guard is released once the first run completes.
        assert rt.run(lambda ctx: ctx.rank).returns == [0, 1, 2, 3]

    def test_failed_run_does_not_leak_into_next_run(self):
        rt = make_runtime()

        def failing(ctx):
            ctx.put(7, 0, 0)
            ctx.flush(0)
            if ctx.rank == 2:
                raise ValueError("injected failure")
            ctx.barrier()

        with pytest.raises(ValueError, match="injected failure"):
            rt.run(failing)

        # A fresh run starts from clean windows, counters and scheduler state.
        result = rt.run(lambda ctx: ctx.get(0, 0))
        assert result.returns == [0, 0, 0, 0]
        assert result.op_counts == {"get": 4}
        assert all(t >= 0.0 for t in result.finish_times_us)

    def test_window_init_failure_keeps_runtime_usable(self):
        rt = make_runtime()

        def bad_init(rank):
            raise KeyError("bad init")

        with pytest.raises(KeyError, match="bad init"):
            rt.run(lambda ctx: None, window_init=bad_init)

        result = rt.run(lambda ctx: ctx.rank * 2)
        assert result.returns == [0, 2, 4, 6]

    def test_observer_reset_on_every_run_including_after_failure(self):
        """on_run_start fires per run() so observer state never leaks across
        re-entry — including out of a run that aborted mid-flight."""

        class RecordingObserver:
            def __init__(self):
                self.starts = []
                self.ends = 0
                self.rmws = 0

            def on_run_start(self, nranks):
                self.starts.append(nranks)
                self.rmws = 0

            def on_run_end(self):
                self.ends += 1

            def on_rmw(self, rank, call):
                self.rmws += 1

        obs = RecordingObserver()
        rt = make_runtime(observer=obs)

        def failing(ctx):
            from repro.rma.ops import AtomicOp

            ctx.fao(1, 0, 0, AtomicOp.SUM)
            ctx.flush(0)
            if ctx.rank == 1:
                raise ValueError("injected failure")
            ctx.barrier()

        with pytest.raises(ValueError, match="injected failure"):
            rt.run(failing)
        assert obs.starts == [4]
        assert obs.ends == 0  # aborted runs never report a clean end
        failed_rmws = obs.rmws
        assert failed_rmws >= 1

        def clean(ctx):
            from repro.rma.ops import AtomicOp

            ctx.fao(1, 0, 0, AtomicOp.SUM)
            ctx.flush(0)
            return ctx.rank

        result = rt.run(clean)
        assert result.returns == [0, 1, 2, 3]
        assert obs.starts == [4, 4]  # reset ran again for the second run
        assert obs.ends == 1
        assert obs.rmws == 4  # counts from this run only, not the failed one

    def test_lock_oracle_observer_state_resets_across_reentry(self):
        """A run that dies while a rank holds the lock must not poison the
        next run's oracle verdict (the PR 1 re-entry guard, for observers)."""
        from repro.verification.oracles import LockOracleObserver, MODE_WRITE

        obs = LockOracleObserver()
        rt = make_runtime(observer=obs)

        def dies_while_holding(ctx):
            if ctx.rank == 0:
                obs.wait_start(ctx.rank, MODE_WRITE, ctx.now())
                obs.acquired(ctx.rank, MODE_WRITE, ctx.now())
                raise ValueError("holder crashed")
            ctx.barrier()

        with pytest.raises(ValueError, match="holder crashed"):
            rt.run(dies_while_holding)

        def balanced(ctx):
            obs.wait_start(ctx.rank, MODE_WRITE, ctx.now())
            obs.acquired(ctx.rank, MODE_WRITE, ctx.now())
            obs.released(ctx.rank, MODE_WRITE, ctx.now())
            obs.wait_start(ctx.rank, MODE_WRITE, ctx.now())
            obs.acquired(ctx.rank, MODE_WRITE, ctx.now())
            obs.released(ctx.rank, MODE_WRITE, ctx.now())

        rt.run(balanced)
        report = obs.report()
        assert report.ok, [str(v) for v in report.violations]
        assert report.acquires == 8
        assert report.runs_observed == 3  # constructor + two runs


class TestStatistics:
    def test_op_counts_accumulate(self):
        rt = make_runtime()

        def program(ctx):
            ctx.put(1, 0, 0)
            ctx.get(0, 0)
            ctx.flush(0)
            ctx.accumulate(1, 0, 1)
            ctx.fao(1, 0, 2, AtomicOp.SUM)
            ctx.cas(1, 0, 0, 3)

        result = rt.run(program)
        assert result.op_counts["put"] == 4
        assert result.op_counts["get"] == 4
        assert result.op_counts["flush"] == 4
        assert result.op_counts["accumulate"] == 4
        assert result.op_counts["fao"] == 4
        assert result.op_counts["cas"] == 4
        assert result.total_ops() == 24
        assert len(result.per_rank_op_counts) == 4
        assert result.per_rank_op_counts[0]["put"] == 1

    def test_runtime_reusable_across_runs(self):
        rt = make_runtime()
        first = rt.run(lambda ctx: ctx.put(1, 0, 0))
        second = rt.run(lambda ctx: ctx.put(1, 0, 0))
        assert first.op_counts == second.op_counts
        assert rt.window(0).read(0) == 1

    def test_num_ranks_property(self):
        machine = Machine.cluster(nodes=3, procs_per_node=5)
        assert SimRuntime(machine, window_words=2).num_ranks == 15

    def test_wall_time_and_ops_rate_recorded(self):
        rt = make_runtime()

        def program(ctx):
            ctx.put(1, 0, 0)
            ctx.flush(0)

        result = rt.run(program)
        assert result.wall_time_s > 0.0
        assert result.ops_per_sec() > 0.0

    def test_custom_latency_model_respected(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        slow = LatencyModel.scaled(10.0)

        def program(ctx):
            ctx.get(3 - ctx.rank, 0)
            ctx.flush(3 - ctx.rank)

        fast_time = SimRuntime(machine, window_words=2).run(program).total_time_us
        slow_time = SimRuntime(machine, window_words=2, latency=slow).run(program).total_time_us
        assert slow_time > fast_time
