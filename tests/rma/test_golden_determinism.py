"""Golden determinism tests for the deterministic schedulers.

Three layers of protection:

1. **Recorded goldens** — ``golden/seed_scheduler.json`` holds bit-exact
   fingerprints (hex floats + SHA-256 of the canonicalized returns) recorded
   from the original PR-0 baton-passing scheduler.  Every registered
   deterministic runtime (the horizon scheduler, the preserved ``baseline``
   seed scheduler *and* the batched ``vector`` core) must reproduce them
   exactly for rma-mcs and rma-rw at P in {8, 32} — the CI
   golden-fingerprint jobs select one scheduler each with ``-k horizon`` /
   ``-k baseline`` / ``-k vector``.
2. **Live cross-check** — the same workloads run on both schedulers in one
   process must match bit-for-bit (guards against the recorded file and both
   schedulers drifting together).
3. **Same-seed stability** — two runs of one configuration must be
   bit-identical (the basic determinism contract).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.registry import get_runtime
from repro.bench.harness import build_lock_spec, make_lock_program

from golden_cases import GOLDEN_CASES, golden_config, result_fingerprint

GOLDEN_PATH = Path(__file__).resolve().parent / "golden" / "seed_scheduler.json"

#: Every scheduler held to the recorded goldens.  The campaign result cache
#: keys on the golden file's hash, so whatever passes here also defines the
#: cache epoch of `repro campaign` / `repro regress`.
SCHEDULERS = ("horizon", "baseline", "vector")


def _run_case(name: str, scheduler: str):
    config = golden_config(name)
    spec, is_rw = build_lock_spec(config)
    runtime = get_runtime(scheduler).factory(
        config.machine, window_words=spec.window_words + 2, seed=config.seed
    )
    program = make_lock_program(config, spec, is_rw, spec.window_words)
    return runtime.run(program, window_init=spec.init_window)


@pytest.fixture(scope="module")
def recorded_goldens():
    return json.loads(GOLDEN_PATH.read_text())["cases"]


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_matches_recorded_seed_scheduler(name, scheduler, recorded_goldens):
    """Bit-identical RunResult vs the recorded seed-scheduler outputs."""
    result = _run_case(name, scheduler)
    fingerprint = result_fingerprint(result)
    reference = recorded_goldens[name]
    # Compare field by field for actionable failure messages.
    for field in reference:
        assert fingerprint[field] == reference[field], (
            f"{name}: {scheduler}: {field} diverged from the recorded seed "
            f"scheduler output"
        )


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_matches_live_baseline_scheduler(name):
    """Bit-identical RunResult vs the preserved seed scheduler, run live."""
    horizon = result_fingerprint(_run_case(name, "horizon"))
    baseline = result_fingerprint(_run_case(name, "baseline"))
    assert horizon == baseline


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("name", ["rma-mcs-ecsb-p8", "rma-rw-ecsb-p8"])
def test_same_seed_runs_are_bit_identical(name, scheduler):
    """finish_times_us, op_counts and per-rank returns repeat exactly."""
    first = result_fingerprint(_run_case(name, scheduler))
    second = result_fingerprint(_run_case(name, scheduler))
    assert first == second
