"""Tests for the real-thread RMA runtime."""

from __future__ import annotations

import pytest

from repro.rma.ops import AtomicOp
from repro.rma.thread_runtime import ThreadRuntime
from repro.topology.machine import Machine


def make_runtime(**kwargs) -> ThreadRuntime:
    machine = kwargs.pop("machine", Machine.cluster(nodes=2, procs_per_node=2))
    kwargs.setdefault("window_words", 8)
    return ThreadRuntime(machine, **kwargs)


class TestBasics:
    def test_put_get_round_trip(self):
        rt = make_runtime()

        def program(ctx):
            ctx.put(ctx.rank + 50, ctx.rank, 0)
            ctx.flush(ctx.rank)
            ctx.barrier()
            value = ctx.get((ctx.rank + 1) % ctx.nranks, 0)
            ctx.flush((ctx.rank + 1) % ctx.nranks)
            return value

        result = rt.run(program)
        assert sorted(result.returns) == [50, 51, 52, 53]

    def test_concurrent_fao_never_loses_updates(self):
        rt = make_runtime()
        increments = 200

        def program(ctx):
            for _ in range(increments):
                ctx.fao(1, 0, 0, AtomicOp.SUM)
            ctx.flush(0)

        rt.run(program)
        assert rt.window(0).read(0) == increments * rt.num_ranks

    def test_concurrent_cas_single_winner_per_round(self):
        rt = make_runtime()

        def program(ctx):
            wins = 0
            for round_no in range(50):
                prev = ctx.cas(ctx.rank + 1, 0, 0, 1)
                if prev == 0:
                    wins += 1
                    ctx.put(0, 0, 1)  # release the slot for the next round
                ctx.flush(0)
            return wins

        result = rt.run(program)
        assert sum(result.returns) >= 1  # at least somebody won

    def test_window_init_applied(self):
        rt = make_runtime()
        result = rt.run(
            lambda ctx: ctx.get(ctx.rank, 2),
            window_init=lambda rank: {2: rank * 7},
        )
        assert result.returns == [0, 7, 14, 21]

    def test_program_args(self):
        rt = make_runtime()
        result = rt.run(lambda ctx, arg: arg + ctx.rank, program_args=[10, 10, 10, 10])
        assert result.returns == [10, 11, 12, 13]

    def test_invalid_target_raises(self):
        rt = make_runtime()
        with pytest.raises(ValueError):
            rt.run(lambda ctx: ctx.get(42, 0))

    def test_exception_propagates(self):
        rt = make_runtime()

        def program(ctx):
            if ctx.rank == 0:
                raise RuntimeError("rank 0 exploded")
            ctx.barrier()

        with pytest.raises(RuntimeError, match="rank 0 exploded"):
            rt.run(program)


class TestSpinning:
    def test_spin_while_wakes_on_remote_write(self):
        rt = make_runtime()

        def program(ctx):
            if ctx.rank == 0:
                ctx.compute(2000.0)  # 2 ms
                ctx.put(9, 1, 4)
                ctx.flush(1)
                return None
            if ctx.rank == 1:
                return ctx.spin_while(1, 4, lambda v: v == 0)
            return None

        result = rt.run(program)
        assert result.returns[1] == 9

    def test_spin_timeout_raises(self):
        rt = make_runtime(spin_timeout_s=0.2)

        def program(ctx):
            if ctx.rank == 0:
                ctx.spin_while(0, 0, lambda v: v == 0)

        with pytest.raises(TimeoutError):
            rt.run(program)


class TestAccounting:
    def test_op_counts(self):
        rt = make_runtime()

        def program(ctx):
            ctx.put(1, 0, 0)
            ctx.get(0, 0)
            ctx.flush(0)

        result = rt.run(program)
        assert result.op_counts["put"] == 4
        assert result.op_counts["get"] == 4
        assert result.op_counts["flush"] == 4

    def test_now_progresses(self):
        rt = make_runtime()

        def program(ctx):
            start = ctx.now()
            ctx.compute(500.0)
            return ctx.now() - start

        result = rt.run(program)
        assert all(delta > 0 for delta in result.returns)

    def test_injected_delay_slows_operations(self):
        machine = Machine.cluster(nodes=1, procs_per_node=2)
        fast = ThreadRuntime(machine, window_words=4)
        slow = ThreadRuntime(machine, window_words=4, injected_delay_us=300.0)

        def program(ctx):
            start = ctx.now()
            for _ in range(10):
                ctx.get(0, 0)
            return ctx.now() - start

        fast_avg = sum(fast.run(program).returns) / 2
        slow_avg = sum(slow.run(program).returns) / 2
        assert slow_avg > fast_avg

    def test_window_words_validated(self):
        with pytest.raises(ValueError):
            make_runtime(window_words=0)
