"""Tests for the RMA window data container."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rma.ops import AtomicOp
from repro.rma.window import Window

INT64_MAX = 2**63 - 1
INT64_MIN = -(2**63)


class TestBasics:
    def test_initial_fill(self):
        w = Window(4)
        assert [w.read(i) for i in range(4)] == [0, 0, 0, 0]
        w2 = Window(3, fill=-1)
        assert [w2.read(i) for i in range(3)] == [-1, -1, -1]

    def test_len(self):
        assert len(Window(7)) == 7

    def test_write_read_round_trip(self):
        w = Window(4)
        w.write(2, 12345)
        assert w.read(2) == 12345
        w.write(2, -99)
        assert w.read(2) == -99

    def test_min_size_enforced(self):
        with pytest.raises(ValueError):
            Window(0)

    def test_offset_bounds(self):
        w = Window(2)
        with pytest.raises(IndexError):
            w.read(2)
        with pytest.raises(IndexError):
            w.write(-1, 5)

    def test_int64_bounds(self):
        w = Window(1)
        w.write(0, INT64_MAX)
        assert w.read(0) == INT64_MAX
        w.write(0, INT64_MIN)
        assert w.read(0) == INT64_MIN
        with pytest.raises(OverflowError):
            w.write(0, INT64_MAX + 1)


class TestAtomics:
    def test_fetch_and_op_sum(self):
        w = Window(2)
        w.write(0, 10)
        assert w.fetch_and_op(0, 5, AtomicOp.SUM) == 10
        assert w.read(0) == 15

    def test_fetch_and_op_negative_sum(self):
        w = Window(1)
        w.write(0, 3)
        assert w.fetch_and_op(0, -5, AtomicOp.SUM) == 3
        assert w.read(0) == -2

    def test_fetch_and_op_replace(self):
        w = Window(1)
        w.write(0, 42)
        assert w.fetch_and_op(0, 7, AtomicOp.REPLACE) == 42
        assert w.read(0) == 7

    def test_apply_is_fao_without_return(self):
        w = Window(1)
        w.apply(0, 4, AtomicOp.SUM)
        w.apply(0, 4, AtomicOp.SUM)
        assert w.read(0) == 8

    def test_cas_success(self):
        w = Window(1)
        w.write(0, 5)
        assert w.compare_and_swap(0, compare=5, value=9) == 5
        assert w.read(0) == 9

    def test_cas_failure_leaves_value(self):
        w = Window(1)
        w.write(0, 5)
        assert w.compare_and_swap(0, compare=4, value=9) == 5
        assert w.read(0) == 5

    def test_sum_overflow_detected(self):
        w = Window(1)
        w.write(0, INT64_MAX)
        with pytest.raises(OverflowError):
            w.fetch_and_op(0, 1, AtomicOp.SUM)


class TestBulk:
    def test_load_and_snapshot(self):
        w = Window(5)
        w.load({0: 1, 3: -7})
        assert w.snapshot() == {0: 1, 1: 0, 2: 0, 3: -7, 4: 0}
        assert w.snapshot([3, 0]) == {3: -7, 0: 1}

    def test_load_rejects_bad_offset(self):
        w = Window(2)
        with pytest.raises(IndexError):
            w.load({5: 1})


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["write", "sum", "replace", "cas"]),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=-(2**30), max_value=2**30),
                st.integers(min_value=-(2**30), max_value=2**30),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_reference_model(self, operations):
        """The window behaves exactly like a plain Python list of ints."""
        w = Window(4)
        model = [0, 0, 0, 0]
        for op, offset, a, b in operations:
            if op == "write":
                w.write(offset, a)
                model[offset] = a
            elif op == "sum":
                assert w.fetch_and_op(offset, a, AtomicOp.SUM) == model[offset]
                model[offset] += a
            elif op == "replace":
                assert w.fetch_and_op(offset, a, AtomicOp.REPLACE) == model[offset]
                model[offset] = a
            elif op == "cas":
                assert w.compare_and_swap(offset, compare=a, value=b) == model[offset]
                if model[offset] == a:
                    model[offset] = b
        assert [w.read(i) for i in range(4)] == model
