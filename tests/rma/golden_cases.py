"""Golden determinism cases shared by the recording tool and the golden tests.

The cases pin down the observable behaviour of the discrete-event scheduler:
any scheduler change must reproduce these results *bit-identically* (exact
floats, exact op counts, exact per-rank returns).  The reference outputs in
``golden/seed_scheduler.json`` were recorded from the original baton-passing
seed scheduler (PR 0) via ``tools/record_golden.py``; the horizon scheduler
is required to match them exactly.

Floats are serialized with ``float.hex`` so the comparison is bit-exact and
immune to repr/rounding differences.  Rank-program returns (which contain
long per-iteration latency lists) are folded into a SHA-256 digest of a
canonical serialization.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List

from repro.bench.workloads import LockBenchConfig
from repro.topology.builder import xc30_like

__all__ = ["GOLDEN_CASES", "golden_config", "result_fingerprint"]

#: name -> LockBenchConfig keyword arguments (machine built from P / ppn).
GOLDEN_CASES: Dict[str, Dict[str, Any]] = {
    "rma-mcs-ecsb-p8": {
        "P": 8,
        "procs_per_node": 4,
        "scheme": "rma-mcs",
        "benchmark": "ecsb",
        "iterations": 6,
        "seed": 3,
    },
    "rma-mcs-wcsb-p32": {
        "P": 32,
        "procs_per_node": 8,
        "scheme": "rma-mcs",
        "benchmark": "wcsb",
        "iterations": 5,
        "seed": 3,
    },
    "rma-rw-ecsb-p8": {
        "P": 8,
        "procs_per_node": 4,
        "scheme": "rma-rw",
        "benchmark": "ecsb",
        "iterations": 6,
        "fw": 0.2,
        "seed": 7,
    },
    "rma-rw-wcsb-p32": {
        "P": 32,
        "procs_per_node": 8,
        "scheme": "rma-rw",
        "benchmark": "wcsb",
        "iterations": 5,
        "fw": 0.2,
        "seed": 7,
    },
    # The competing lock families ported in PR 9 (recorded with the preserved
    # baseline copy of the seed scheduler; horizon and vector must match).
    "alock-ecsb-p8": {
        "P": 8,
        "procs_per_node": 4,
        "scheme": "alock",
        "benchmark": "ecsb",
        "iterations": 6,
        "seed": 3,
    },
    "alock-wcsb-p32": {
        "P": 32,
        "procs_per_node": 8,
        "scheme": "alock",
        "benchmark": "wcsb",
        "iterations": 5,
        "seed": 3,
    },
    "lock-server-ecsb-p8": {
        "P": 8,
        "procs_per_node": 4,
        "scheme": "lock-server",
        "benchmark": "ecsb",
        "iterations": 6,
        "seed": 3,
    },
    "lock-server-wcsb-p32": {
        "P": 32,
        "procs_per_node": 8,
        "scheme": "lock-server",
        "benchmark": "wcsb",
        "iterations": 5,
        "seed": 3,
    },
}


def golden_config(name: str) -> LockBenchConfig:
    """Build the :class:`LockBenchConfig` for one golden case."""
    spec = dict(GOLDEN_CASES[name])
    machine = xc30_like(spec.pop("P"), procs_per_node=spec.pop("procs_per_node"))
    return LockBenchConfig(machine=machine, **spec)


def _canonical(value: Any) -> Any:
    """Recursively convert a value to a canonical, bit-exact JSON form."""
    if isinstance(value, float):
        return value.hex()
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    return value


def result_fingerprint(result: Any) -> Dict[str, Any]:
    """Bit-exact fingerprint of a :class:`~repro.rma.runtime_base.RunResult`.

    ``finish_times_us`` and ``op_counts`` are stored in full (they are the
    quantities the figures derive from); the bulky per-rank returns are
    hashed.  Two runs match iff their fingerprints are equal.
    """
    finish_hex: List[str] = [float(t).hex() for t in result.finish_times_us]
    returns_blob = json.dumps(_canonical(result.returns), sort_keys=True)
    return {
        "finish_times_us_hex": finish_hex,
        "total_time_us_hex": float(result.total_time_us).hex(),
        "op_counts": {k: int(v) for k, v in sorted(result.op_counts.items())},
        "per_rank_op_counts": [
            {k: int(v) for k, v in sorted(c.items())} for c in result.per_rank_op_counts
        ],
        "returns_sha256": hashlib.sha256(returns_blob.encode()).hexdigest(),
    }
