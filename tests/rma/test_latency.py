"""Tests for the latency/contention model."""

from __future__ import annotations

import pytest

from repro.rma.latency import LatencyModel
from repro.rma.ops import RMACall
from repro.topology.machine import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine.multi_rack(racks=2, nodes_per_rack=2, procs_per_node=4)


class TestTiers:
    def test_distance_ordering(self, machine):
        model = LatencyModel.cray_xc30()
        self_cost = model.base_cost(machine, 0, 0)
        node_cost = model.base_cost(machine, 0, 1)          # same node
        rack_cost = model.base_cost(machine, 0, 4)          # same rack, other node
        global_cost = model.base_cost(machine, 0, 12)       # other rack
        assert self_cost < node_cost < rack_cost < global_cost

    def test_two_level_machine_has_no_group_tier(self):
        machine = Machine.cluster(nodes=2, procs_per_node=4)
        model = LatencyModel.cray_xc30()
        # cross-node on a 2-level machine lands on the same_group tier
        assert model.base_cost(machine, 0, 4) == model.same_group_us

    def test_single_level_machine(self):
        machine = Machine.single_node(4)
        model = LatencyModel.cray_xc30()
        assert model.base_cost(machine, 0, 1) == model.same_node_us
        assert model.base_cost(machine, 2, 2) == model.self_us


class TestCallCosts:
    def test_atomic_overhead_added(self, machine):
        model = LatencyModel.cray_xc30()
        put = model.cost(RMACall.PUT, machine, 0, 4)
        fao = model.cost(RMACall.FAO, machine, 0, 4)
        cas = model.cost(RMACall.CAS, machine, 0, 4)
        acc = model.cost(RMACall.ACCUMULATE, machine, 0, 4)
        assert fao == pytest.approx(put + model.atomic_overhead_us)
        assert cas == pytest.approx(put + model.atomic_overhead_us)
        assert acc == pytest.approx(put + model.atomic_overhead_us)

    def test_flush_is_cheaper_than_data(self, machine):
        model = LatencyModel.cray_xc30()
        assert model.cost(RMACall.FLUSH, machine, 0, 4) < model.cost(RMACall.GET, machine, 0, 4)

    def test_get_equals_put(self, machine):
        model = LatencyModel.cray_xc30()
        assert model.cost(RMACall.GET, machine, 0, 4) == model.cost(RMACall.PUT, machine, 0, 4)


class TestOccupancy:
    def test_local_access_occupies_nothing(self, machine):
        model = LatencyModel.cray_xc30()
        assert model.occupancy(RMACall.FAO, 3, 3) == 0.0

    def test_flush_occupies_nothing(self, machine):
        model = LatencyModel.cray_xc30()
        assert model.occupancy(RMACall.FLUSH, 0, 4) == 0.0

    def test_atomics_occupy_longer_than_data(self, machine):
        model = LatencyModel.cray_xc30()
        assert model.occupancy(RMACall.FAO, 0, 4) > model.occupancy(RMACall.PUT, 0, 4) > 0


class TestPresets:
    def test_flat_fabric_has_uniform_remote_cost(self):
        machine = Machine.multi_rack(2, 2, 4)
        model = LatencyModel.flat(1.5)
        assert model.base_cost(machine, 0, 1) == model.base_cost(machine, 0, 12) == 1.5
        assert model.base_cost(machine, 0, 0) < 1.5

    def test_scaled_preserves_ordering(self):
        machine = Machine.multi_rack(2, 2, 4)
        model = LatencyModel.scaled(3.0)
        base = LatencyModel.cray_xc30()
        assert model.global_us == pytest.approx(base.global_us * 3.0)
        assert model.base_cost(machine, 0, 1) < model.base_cost(machine, 0, 12)

    def test_tier_table_keys(self):
        machine = Machine.cluster(2, 4)
        table = LatencyModel.cray_xc30().tier_table(machine)
        assert set(table) == {"self", "same_node", "same_group", "global"}


class TestValidation:
    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(self_us=-1)
        with pytest.raises(ValueError):
            LatencyModel(global_us=-0.1)

    def test_bad_flush_fraction(self):
        with pytest.raises(ValueError):
            LatencyModel(flush_fraction=1.5)

    def test_negative_occupancy_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(atomic_occupancy_us=-0.1)

    def test_negative_atomic_overhead_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(atomic_overhead_us=-0.1)
