"""Tests for the Dragonfly link-contention model and its runtime integration."""

from __future__ import annotations

import pytest

from repro.rma.fabric import FabricContentionModel
from repro.rma.sim_runtime import SimRuntime
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.machine import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine.cluster(nodes=4, procs_per_node=2)


@pytest.fixture
def fabric(machine) -> FabricContentionModel:
    return FabricContentionModel.for_machine(machine, nodes_per_router=1, routers_per_group=2)


class TestFabricModel:
    def test_for_machine_hosts_all_nodes(self, machine, fabric):
        assert fabric.topology.num_nodes >= 4
        fabric.validate_machine(machine)  # must not raise

    def test_validate_rejects_too_small_topology(self):
        tiny = FabricContentionModel(
            topology=DragonflyTopology(num_groups=1, routers_per_group=1, nodes_per_router=1)
        )
        big_machine = Machine.cluster(nodes=4, procs_per_node=2)
        with pytest.raises(ValueError):
            tiny.validate_machine(big_machine)

    def test_rejects_negative_costs(self):
        topo = DragonflyTopology(num_groups=1, routers_per_group=1, nodes_per_router=2)
        with pytest.raises(ValueError):
            FabricContentionModel(topology=topo, hop_latency_us=-1.0)

    def test_link_occupancy_by_class(self, fabric):
        assert fabric.link_occupancy(("terminal", 0, 0)) == fabric.terminal_occupancy_us
        assert fabric.link_occupancy(("local", 0, 0, 1)) == fabric.local_occupancy_us
        assert fabric.link_occupancy(("global", 0, 1)) == fabric.global_occupancy_us
        with pytest.raises(ValueError):
            fabric.link_occupancy(("warp", 0, 1))

    def test_traverse_self_is_free(self, fabric):
        state = fabric.new_state()
        assert fabric.traverse(state, 2, 2, 5.0) == 5.0
        assert state == {}

    def test_traverse_charges_hop_latency(self, fabric):
        state = fabric.new_state()
        arrival = fabric.traverse(state, 0, 1, 0.0)
        assert arrival == pytest.approx(fabric.path_latency(0, 1))
        assert arrival > 0

    def test_back_to_back_transfers_serialize_on_shared_links(self, fabric):
        state = fabric.new_state()
        first = fabric.traverse(state, 0, 3, 0.0)
        second = fabric.traverse(state, 0, 3, 0.0)
        # The second transfer starts at the same instant but must queue behind
        # the first on every shared link, so it arrives strictly later.
        assert second > first

    def test_disjoint_paths_do_not_interfere(self):
        topo = DragonflyTopology(num_groups=2, routers_per_group=2, nodes_per_router=2)
        model = FabricContentionModel(topology=topo)
        state = model.new_state()
        a = model.traverse(state, 0, 1, 0.0)   # node -> router-mate (terminal links only)
        b = model.traverse(state, 6, 7, 0.0)   # disjoint pair in the other group
        assert a == pytest.approx(b)

    def test_describe_mentions_topology(self, fabric):
        assert "dragonfly" in fabric.describe()


class TestSimRuntimeIntegration:
    def _ping_program(self, shared_offset: int):
        def program(ctx):
            ctx.barrier()
            start = ctx.now()
            if ctx.rank == 0:
                for _ in range(5):
                    ctx.put(1, ctx.nranks - 1, shared_offset)
                    ctx.flush(ctx.nranks - 1)
            ctx.barrier()
            return ctx.now() - start

        return program

    def test_fabric_adds_latency_to_inter_node_traffic(self, machine, fabric):
        base = SimRuntime(machine, window_words=4, seed=1)
        with_fabric = SimRuntime(machine, window_words=4, fabric=fabric, seed=1)
        t_base = base.run(self._ping_program(0)).total_time_us
        t_fabric = with_fabric.run(self._ping_program(0)).total_time_us
        assert t_fabric > t_base

    def test_fabric_keeps_intra_node_traffic_unchanged(self, fabric):
        machine = Machine.cluster(nodes=4, procs_per_node=2)

        def program(ctx):
            ctx.barrier()
            start = ctx.now()
            if ctx.rank == 0:
                for _ in range(5):
                    ctx.put(1, 1, 0)   # rank 1 is on the same node as rank 0
                    ctx.flush(1)
            ctx.barrier()
            return ctx.now() - start

        base = SimRuntime(machine, window_words=4, seed=1)
        with_fabric = SimRuntime(machine, window_words=4, fabric=fabric, seed=1)
        assert base.run(program).total_time_us == pytest.approx(
            with_fabric.run(program).total_time_us
        )

    def test_runs_are_deterministic_with_fabric(self, machine, fabric):
        first = SimRuntime(machine, window_words=4, fabric=fabric, seed=2).run(
            self._ping_program(1)
        )
        second = SimRuntime(machine, window_words=4, fabric=fabric, seed=2).run(
            self._ping_program(1)
        )
        assert first.total_time_us == second.total_time_us
        assert first.finish_times_us == second.finish_times_us

    def test_runtime_rejects_undersized_fabric(self):
        machine = Machine.cluster(nodes=8, procs_per_node=2)
        small = FabricContentionModel(
            topology=DragonflyTopology(num_groups=1, routers_per_group=2, nodes_per_router=2)
        )
        with pytest.raises(ValueError):
            SimRuntime(machine, window_words=4, fabric=small)

    def test_lock_protocol_still_correct_with_fabric(self, machine, fabric):
        from repro.core.rma_mcs import RMAMCSLockSpec
        from tests.support import run_mutex_check

        spec = RMAMCSLockSpec(machine, t_l=(2, 2))
        # run_mutex_check builds its own runtime, so run the check manually here.
        runtime = SimRuntime(machine, window_words=spec.window_words + 1, fabric=fabric, seed=3)
        shared = spec.window_words

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            for _ in range(3):
                with lock.held():
                    value = ctx.get(0, shared)
                    ctx.flush(0)
                    ctx.put(value + 1, 0, shared)
                    ctx.flush(0)
            ctx.barrier()

        runtime.run(program, window_init=spec.init_window)
        assert runtime.window(0).read(shared) == machine.num_processes * 3
        assert run_mutex_check(spec, machine, iterations=2).ok
