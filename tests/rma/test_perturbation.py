"""Tests for seeded schedule perturbation (repro.rma.perturbation)."""

from __future__ import annotations

import pytest

from repro.bench.harness import build_lock_spec, make_lock_program
from repro.rma.baseline_runtime import BaselineSimRuntime
from repro.rma.latency import LatencyModel, cost_table
from repro.rma.perturbation import PerturbationModel, perturbation_rng
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine
from repro.util.rng import rank_rng

from golden_cases import golden_config, result_fingerprint

CHAOS = dict(latency_jitter=0.3, rank_slowdown=1.0, pause_rate=0.05)


def _run_case(name: str, runtime_cls, perturbation=None, observer=None):
    config = golden_config(name)
    spec, is_rw = build_lock_spec(config)
    runtime = runtime_cls(
        config.machine,
        window_words=spec.window_words + 2,
        seed=config.seed,
        perturbation=perturbation,
        observer=observer,
    )
    program = make_lock_program(config, spec, is_rw, spec.window_words)
    return runtime.run(program, window_init=spec.init_window)


class TestModelValidation:
    def test_rejects_negative_magnitudes(self):
        with pytest.raises(ValueError):
            PerturbationModel(latency_jitter=-0.1)
        with pytest.raises(ValueError):
            PerturbationModel(rank_slowdown=-1)
        with pytest.raises(ValueError):
            PerturbationModel(pause_rate=1.5)
        with pytest.raises(ValueError):
            PerturbationModel(pause_us=(5.0, 1.0))

    def test_null_model_detection(self):
        assert PerturbationModel().is_null
        assert not PerturbationModel(latency_jitter=0.1).is_null

    def test_rank_multipliers_all_one_without_slowdown(self):
        assert PerturbationModel(seed=4).rank_multipliers(8) == (1.0,) * 8

    def test_rank_multipliers_deterministic_and_prefix_stable(self):
        model = PerturbationModel(seed=4, rank_slowdown=1.0)
        first = model.rank_multipliers(8)
        assert first == model.rank_multipliers(8)
        # Multipliers are per-rank streams: a bigger run extends, not reshuffles.
        assert model.rank_multipliers(16)[:8] == first
        assert all(1.0 <= m <= 2.0 for m in first)

    def test_rank_states_none_without_per_op_effects(self):
        assert PerturbationModel(rank_slowdown=2.0).rank_states(4) is None
        assert PerturbationModel(latency_jitter=0.1).rank_states(4) is not None

    def test_perturbation_stream_disjoint_from_workload_stream(self):
        seed = 11
        a = perturbation_rng(seed, 3).random(4).tolist()
        b = rank_rng(seed, 3).random(4).tolist()
        assert a != b

    def test_describe_round_trips_to_json_primitives(self):
        import json

        model = PerturbationModel(seed=2, latency_jitter=0.25, pause_rate=0.01)
        assert json.loads(json.dumps(model.describe())) == model.describe()


class TestCostTableScaling:
    def test_scaled_by_origin_matches_inline_multiply(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        model = LatencyModel.cray_xc30()
        table = cost_table(model, machine)
        mults = (1.0, 1.5, 2.0, 1.25)
        scaled = table.scaled_by_origin(mults)
        p = machine.num_processes
        for ci, row in enumerate(table.cost):
            for i, value in enumerate(row):
                assert scaled.cost[ci][i] == value * mults[i // p]
        # Occupancy is target-side service time: unscaled, same object.
        assert scaled.occupancy is table.occupancy

    def test_all_ones_returns_same_table(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        table = cost_table(LatencyModel.cray_xc30(), machine)
        assert table.scaled_by_origin((1.0,) * 4) is table

    def test_wrong_length_rejected(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        table = cost_table(LatencyModel.cray_xc30(), machine)
        with pytest.raises(ValueError):
            table.scaled_by_origin((1.0, 2.0))


class TestPerturbedRuns:
    def test_same_seed_is_bit_identical(self):
        model = PerturbationModel(seed=7, **CHAOS)
        a = result_fingerprint(_run_case("rma-rw-ecsb-p8", SimRuntime, model))
        b = result_fingerprint(_run_case("rma-rw-ecsb-p8", SimRuntime, model))
        assert a == b

    def test_same_runtime_instance_replays_identically(self):
        """Perturbation streams rebuild per run: re-entry resets them."""
        config = golden_config("rma-mcs-ecsb-p8")
        spec, is_rw = build_lock_spec(config)
        runtime = SimRuntime(
            config.machine,
            window_words=spec.window_words + 2,
            seed=config.seed,
            perturbation=PerturbationModel(seed=9, **CHAOS),
        )
        program = make_lock_program(config, spec, is_rw, spec.window_words)
        first = result_fingerprint(runtime.run(program, window_init=spec.init_window))
        second = result_fingerprint(runtime.run(program, window_init=spec.init_window))
        assert first == second

    def test_different_seeds_explore_different_schedules(self):
        a = result_fingerprint(
            _run_case("rma-rw-ecsb-p8", SimRuntime, PerturbationModel(seed=1, **CHAOS))
        )
        b = result_fingerprint(
            _run_case("rma-rw-ecsb-p8", SimRuntime, PerturbationModel(seed=2, **CHAOS))
        )
        assert a != b

    def test_perturbed_run_differs_from_unperturbed(self):
        base = result_fingerprint(_run_case("rma-rw-ecsb-p8", SimRuntime))
        chaos = result_fingerprint(
            _run_case("rma-rw-ecsb-p8", SimRuntime, PerturbationModel(seed=1, **CHAOS))
        )
        assert base != chaos

    @pytest.mark.parametrize("name", ["rma-mcs-ecsb-p8", "rma-rw-ecsb-p8"])
    def test_both_schedulers_agree_on_perturbed_schedules(self, name):
        """The perturbation contract spans schedulers, exactly like the goldens."""
        model = PerturbationModel(seed=13, **CHAOS)
        horizon = result_fingerprint(_run_case(name, SimRuntime, model))
        baseline = result_fingerprint(_run_case(name, BaselineSimRuntime, model))
        assert horizon == baseline

    def test_null_model_is_bit_identical_to_no_model(self):
        """An all-zero model must not shift the golden fingerprint path."""
        base = result_fingerprint(_run_case("rma-rw-ecsb-p8", SimRuntime))
        null = result_fingerprint(
            _run_case("rma-rw-ecsb-p8", SimRuntime, PerturbationModel(seed=99))
        )
        assert base == null

    def test_jitter_only_inflates_costs(self):
        """Jitter draws from [0, j]: virtual time never shrinks."""
        machine = Machine.cluster(nodes=2, procs_per_node=2)

        def program(ctx):
            for _ in range(5):
                ctx.get((ctx.rank + 1) % ctx.nranks, 0)
                ctx.flush((ctx.rank + 1) % ctx.nranks)

        base = SimRuntime(machine, window_words=2).run(program).total_time_us
        jittered = SimRuntime(
            machine,
            window_words=2,
            perturbation=PerturbationModel(seed=3, latency_jitter=0.5),
        ).run(program).total_time_us
        assert jittered >= base
