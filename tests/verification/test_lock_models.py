"""Model-checking the reduced lock models (the Section 4.4 analogue)."""

from __future__ import annotations

import pytest

from repro.verification.interleaving import InvariantViolation, ModelDeadlock
from repro.verification.lock_models import (
    broken_test_and_set_model,
    build_checker,
    dining_deadlock_model,
    mcs_model,
    rw_counter_model,
)


class TestMCSModel:
    def test_two_processes_single_round(self):
        result = build_checker(mcs_model(2, rounds=1)).assert_ok()
        assert result.complete

    def test_three_processes_single_round(self):
        result = build_checker(mcs_model(3, rounds=1), max_states=400_000).assert_ok()
        assert result.complete

    def test_two_processes_two_rounds(self):
        result = build_checker(mcs_model(2, rounds=2), max_states=400_000).assert_ok()
        assert result.complete

    def test_model_metadata(self):
        model = mcs_model(2, rounds=1)
        assert model.num_processes == 2
        assert "mcs" in model.name
        assert model.invariant(model.initial_state)


class TestRWCounterModel:
    def test_readers_only(self):
        result = build_checker(rw_counter_model(num_readers=2, num_writers=0, t_r=3)).assert_ok()
        assert result.complete

    def test_one_reader_one_writer(self):
        result = build_checker(rw_counter_model(num_readers=1, num_writers=1, t_r=2)).assert_ok()
        assert result.complete

    def test_two_readers_one_writer(self):
        result = build_checker(
            rw_counter_model(num_readers=2, num_writers=1, t_r=2), max_states=400_000
        ).assert_ok()
        assert result.complete

    def test_two_writers(self):
        result = build_checker(rw_counter_model(num_readers=0, num_writers=2, t_r=2)).assert_ok()
        assert result.complete

    def test_reader_threshold_saturation_still_safe(self):
        # T_R = 1 saturates immediately and exercises the reset path.
        result = build_checker(
            rw_counter_model(num_readers=2, num_writers=1, t_r=1), max_states=400_000
        ).assert_ok()
        assert result.complete

    def test_paper_spin_predicate_has_a_reachable_deadlock(self):
        """The literal Listing-9 spin condition can strand readers at exactly T_R.

        This is the liveness gap that motivated the implementation's stricter
        spin predicate; the checker exhibits it on a tiny configuration.
        """
        checker = build_checker(
            rw_counter_model(num_readers=2, num_writers=1, t_r=1, paper_spin_predicate=True),
            max_states=400_000,
        )
        result = checker.check()
        assert not result.ok
        assert result.violation.startswith("deadlock")

    def test_impl_spin_predicate_fixes_the_deadlock(self):
        result = build_checker(
            rw_counter_model(num_readers=2, num_writers=1, t_r=1, paper_spin_predicate=False),
            max_states=400_000,
        ).check()
        assert result.ok


class TestNegativeControls:
    def test_broken_lock_violation_is_detected(self):
        checker = build_checker(broken_test_and_set_model(2))
        result = checker.check()
        assert not result.ok
        assert "mutual exclusion" in result.violation
        with pytest.raises(InvariantViolation):
            checker.assert_ok()

    def test_dining_philosophers_deadlock_is_detected(self):
        checker = build_checker(dining_deadlock_model())
        result = checker.check()
        assert not result.ok
        assert result.violation.startswith("deadlock")
        with pytest.raises(ModelDeadlock):
            checker.assert_ok()
