"""Exhaustive checking of the implementation-derived RMA-RW model.

This is the repository's version of the paper's Section 4.4 SPIN experiment,
run against our own state machine: the model in
:mod:`repro.verification.impl_model` mirrors ``RMARWLockHandle``'s writer and
reader paths RMA-call-by-RMA-call, and the checker explores *every*
interleaving at P = 2-3.

Historical note, pinned by the mutant tests below: the ``racy-reset``
variant replays the seed port's original counter reset (stale-read
accumulates, flag cleared by any caller).  This model found that reset
unsafe — a reader's saturation reset racing a writer's mode switch violates
reader/writer exclusion, and the live chaos sweep independently reproduced a
companion deadlock — which is why
``DistributedCounterHandle.reset_counter`` now CAS-claims the depart fold
and only writers clear the WRITE flag.
"""

from __future__ import annotations

import pytest

from repro.verification.impl_model import rma_rw_impl_model
from repro.verification.interleaving import InvariantViolation
from repro.verification.lock_models import build_checker

MAX_STATES = 3_000_000


@pytest.fixture(scope="module")
def racy_reset_result():
    """One exploration of the racy-reset mutant, shared by its assertions."""
    model = rma_rw_impl_model(2, 1, mutant="racy-reset")
    return model, build_checker(model, max_states=MAX_STATES).check()


class TestFixedProtocolIsSafeAndLive:
    @pytest.mark.parametrize(
        "readers,writers",
        [(1, 1), (2, 1), (1, 2)],
        ids=["1r1w", "2r1w", "1r2w"],
    )
    def test_exclusion_and_deadlock_freedom(self, readers, writers):
        model = rma_rw_impl_model(readers, writers)
        result = build_checker(model, max_states=MAX_STATES).check()
        assert result.ok, f"{model.name}: {result.violation}"
        assert result.complete
        assert result.states_explored > 100  # the exploration was real

    def test_writers_only_round_trip(self):
        model = rma_rw_impl_model(0, 2, writer_rounds=2)
        result = build_checker(model, max_states=MAX_STATES).check()
        assert result.ok, result.violation

    def test_readers_only_round_trip(self):
        model = rma_rw_impl_model(2, 0, reader_rounds=2)
        result = build_checker(model, max_states=MAX_STATES).check()
        assert result.ok, result.violation

    def test_thresholds_default_from_the_real_spec(self):
        model = rma_rw_impl_model(1, 1, t_r=None, t_w=None)
        # The registry-built RMARWLockSpec defaults: T_R=64 and T_W=prod(T_L).
        assert "T_R=64" in model.name

    def test_model_constants_are_the_implementations(self):
        from repro.core import constants

        model = rma_rw_impl_model(1, 1)
        state = model.initial_state
        assert state["tail"] == constants.NULL_RANK
        # The writer's first two steps publish the implementation's sentinels.
        model.step(state, 1)
        model.step(state, 1)
        assert state["status"][1] == constants.STATUS_WAIT


class TestMutantsAreCaught:
    """The checker must find real bugs in this model, not vacuously pass."""

    def test_skipping_the_drain_wait_violates_exclusion(self):
        model = rma_rw_impl_model(2, 1, mutant="skip-drain")
        result = build_checker(model, max_states=MAX_STATES).check()
        assert not result.ok
        assert "exclusion" in result.violation
        assert result.trace  # a witness interleaving is reported

    def test_seed_ports_racy_reset_violates_exclusion(self, racy_reset_result):
        """The bug this model found in the original port (see module docstring)."""
        _, result = racy_reset_result
        assert not result.ok
        assert "exclusion" in result.violation

    def test_assert_ok_raises_on_the_mutant(self):
        model = rma_rw_impl_model(2, 1, mutant="skip-drain")
        with pytest.raises(InvariantViolation):
            build_checker(model, max_states=MAX_STATES).assert_ok()

    def test_unknown_mutant_rejected(self):
        with pytest.raises(ValueError):
            rma_rw_impl_model(1, 1, mutant="nonsense")


class TestWitnessReplay:
    def test_mutant_witness_trace_replays_to_the_violation(self, racy_reset_result):
        """The reported trace is a genuine schedule, not just a label."""
        import copy

        model, result = racy_reset_result
        state = copy.deepcopy(model.initial_state)
        for pid, _ in result.trace:
            assert model.step(state, pid)
        assert not model.invariant(state)
        assert state["writers_in"] >= 1 and state["readers_in"] >= 1
