"""Exhaustive checking of the competing-lock-family impl models at P=2-3.

These are the gauntlet entries for the `alock` and `lock-server` schemes:
each model mirrors its implementation's RMA issue order (see
:mod:`repro.verification.impl_model`), and the checker explores every
interleaving.  The mutants replay the tempting wrong designs each paper
warns against, so the exploration is known to be non-vacuous.
"""

from __future__ import annotations

import pytest

from repro.verification.impl_model import alock_impl_model, lock_server_impl_model
from repro.verification.lock_models import build_checker

MAX_STATES = 2_000_000


def _check(model):
    return build_checker(model, max_states=MAX_STATES).check()


class TestALockModel:
    @pytest.mark.parametrize(
        "local,remote",
        [(1, 1), (2, 1), (1, 2)],
        ids=["1l1r", "2l1r", "1l2r"],
    )
    def test_exclusion_and_deadlock_freedom(self, local, remote):
        result = _check(alock_impl_model(local, remote))
        assert result.ok, result.violation
        assert result.complete

    def test_repeated_rounds_stay_safe(self):
        result = _check(alock_impl_model(1, 1, rounds=2))
        assert result.ok, result.violation

    def test_remote_only_queue_is_plain_mcs(self):
        result = _check(alock_impl_model(0, 3))
        assert result.ok, result.violation

    def test_skipping_the_owner_cas_is_caught(self):
        # A granted remote head that trusts the queue hand-off and skips the
        # owner-word CAS races a barging local straight into a double grant.
        result = _check(alock_impl_model(1, 2, mutant="skip-owner-cas"))
        assert not result.ok
        assert "mutual exclusion" in result.violation
        assert result.trace

    def test_unknown_mutant_rejected(self):
        with pytest.raises(ValueError):
            alock_impl_model(1, 1, mutant="nonsense")


class TestLockServerModel:
    @pytest.mark.parametrize("threshold", [0, 1, 3])
    def test_exclusion_across_the_policy_axis(self, threshold):
        result = _check(lock_server_impl_model(3, queue_threshold=threshold))
        assert result.ok, result.violation
        assert result.complete

    def test_repeated_rounds_stay_safe(self):
        result = _check(lock_server_impl_model(2, queue_threshold=1, rounds=2))
        assert result.ok, result.violation

    def test_blind_fast_path_is_caught(self):
        # Entering on an observed-empty queue without the claim RMW lets two
        # clients share the observation — the paper's retry-mode hazard.
        result = _check(lock_server_impl_model(2, queue_threshold=1, mutant="blind-fast-path"))
        assert not result.ok
        assert "mutual exclusion" in result.violation
        assert result.trace

    def test_unknown_mutant_rejected(self):
        with pytest.raises(ValueError):
            lock_server_impl_model(2, mutant="nonsense")
