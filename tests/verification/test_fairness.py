"""Tests for the bounded-bypass (starvation) analysis."""

from __future__ import annotations

import pytest

from repro.verification.fairness import (
    BypassAnalyzer,
    mcs_fairness,
    tas_fairness,
    ticket_fairness,
)
from repro.verification.interleaving import StateExplosionError
from repro.verification.lock_models import build_checker


class TestAnalyzerBasics:
    def test_rejects_negative_bound(self):
        with pytest.raises(ValueError):
            BypassAnalyzer(ticket_fairness(2, 1), bound=-1)

    def test_rejects_zero_state_budget(self):
        with pytest.raises(ValueError):
            BypassAnalyzer(ticket_fairness(2, 1), bound=1, max_states=0)

    def test_state_budget_is_enforced(self):
        with pytest.raises(StateExplosionError):
            BypassAnalyzer(ticket_fairness(3, 2), bound=10, max_states=5).check()

    def test_single_process_never_bypassed(self):
        result = BypassAnalyzer(ticket_fairness(1, 3), bound=0).check()
        assert result.ok
        assert result.max_bypass_observed == 0


class TestTicketLockFairness:
    @pytest.mark.parametrize("nprocs", [2, 3])
    def test_fifo_bypass_bound_is_p_minus_one(self, nprocs):
        result = BypassAnalyzer(ticket_fairness(nprocs, rounds=2), bound=nprocs - 1).check()
        assert result.ok, result.violation
        assert result.complete
        assert result.max_bypass_observed <= nprocs - 1

    def test_bound_below_p_minus_one_is_violated(self):
        result = BypassAnalyzer(ticket_fairness(3, rounds=1), bound=1).check()
        assert not result.ok
        assert "bypassed" in result.violation
        assert result.trace  # a witness interleaving is reported

    def test_model_is_also_safe_and_deadlock_free(self):
        build_checker(ticket_fairness(3, rounds=1).model).assert_ok()


class TestMCSFairness:
    def test_queue_lock_respects_fifo_bound(self):
        result = BypassAnalyzer(mcs_fairness(3, rounds=1), bound=2).check()
        assert result.ok, result.violation
        assert result.max_bypass_observed <= 2

    def test_two_processes_two_rounds(self):
        result = BypassAnalyzer(mcs_fairness(2, rounds=2), bound=1).check()
        assert result.ok, result.violation


class TestTestAndSetUnfairness:
    def test_bypass_exceeds_fifo_bound(self):
        """A TAS lock lets the same competitor win repeatedly (no FIFO order)."""
        spec = tas_fairness(num_processes=3, rounds=2)
        fifo = BypassAnalyzer(spec, bound=2).check()
        assert not fifo.ok
        assert "bypassed" in fifo.violation

    def test_large_enough_bound_passes_for_finite_rounds(self):
        """With finite rounds the worst case is (P-1) * rounds foreign entries."""
        spec = tas_fairness(num_processes=2, rounds=2)
        result = BypassAnalyzer(spec, bound=2).check()
        assert result.ok
        assert result.max_bypass_observed == 2

    def test_mutual_exclusion_still_holds(self):
        build_checker(tas_fairness(2, rounds=1).model, check_deadlock=False).assert_ok()
