"""Tests for the bounded-bypass (starvation) analysis."""

from __future__ import annotations

import pytest

from repro.verification.fairness import (
    BypassAnalyzer,
    mcs_fairness,
    tas_fairness,
    ticket_fairness,
)
from repro.verification.interleaving import StateExplosionError
from repro.verification.lock_models import build_checker


class TestAnalyzerBasics:
    def test_rejects_negative_bound(self):
        with pytest.raises(ValueError):
            BypassAnalyzer(ticket_fairness(2, 1), bound=-1)

    def test_rejects_zero_state_budget(self):
        with pytest.raises(ValueError):
            BypassAnalyzer(ticket_fairness(2, 1), bound=1, max_states=0)

    def test_state_budget_is_enforced(self):
        with pytest.raises(StateExplosionError):
            BypassAnalyzer(ticket_fairness(3, 2), bound=10, max_states=5).check()

    def test_single_process_never_bypassed(self):
        result = BypassAnalyzer(ticket_fairness(1, 3), bound=0).check()
        assert result.ok
        assert result.max_bypass_observed == 0


class TestTicketLockFairness:
    @pytest.mark.parametrize("nprocs", [2, 3])
    def test_fifo_bypass_bound_is_p_minus_one(self, nprocs):
        result = BypassAnalyzer(ticket_fairness(nprocs, rounds=2), bound=nprocs - 1).check()
        assert result.ok, result.violation
        assert result.complete
        assert result.max_bypass_observed <= nprocs - 1

    def test_bound_below_p_minus_one_is_violated(self):
        result = BypassAnalyzer(ticket_fairness(3, rounds=1), bound=1).check()
        assert not result.ok
        assert "bypassed" in result.violation
        assert result.trace  # a witness interleaving is reported

    def test_model_is_also_safe_and_deadlock_free(self):
        build_checker(ticket_fairness(3, rounds=1).model).assert_ok()


class TestMCSFairness:
    def test_queue_lock_respects_fifo_bound(self):
        result = BypassAnalyzer(mcs_fairness(3, rounds=1), bound=2).check()
        assert result.ok, result.violation
        assert result.max_bypass_observed <= 2

    def test_two_processes_two_rounds(self):
        result = BypassAnalyzer(mcs_fairness(2, rounds=2), bound=1).check()
        assert result.ok, result.violation


class TestBoundEdgeCases:
    """Direct coverage of the bound arithmetic (ISSUE 4 satellite)."""

    def test_bound_zero_accepted_and_satisfiable_without_contention(self):
        """bound=0 is a legal bound and holds when nobody ever overtakes."""
        result = BypassAnalyzer(ticket_fairness(1, rounds=2), bound=0).check()
        assert result.ok
        assert result.complete
        assert result.max_bypass_observed == 0

    def test_bound_zero_violated_at_first_overtake(self):
        result = BypassAnalyzer(ticket_fairness(2, rounds=1), bound=0).check()
        assert not result.ok
        assert "bound is 0" in result.violation

    def test_bound_exactly_at_worst_case_is_tight(self):
        """P-1 passes while P-2 fails: the FIFO bound is exact, not loose."""
        at_bound = BypassAnalyzer(ticket_fairness(3, rounds=2), bound=2).check()
        below_bound = BypassAnalyzer(ticket_fairness(3, rounds=2), bound=1).check()
        assert at_bound.ok
        assert at_bound.max_bypass_observed == 2
        assert not below_bound.ok

    def test_max_bypass_reported_even_when_ok(self):
        result = BypassAnalyzer(ticket_fairness(3, rounds=1), bound=10).check()
        assert result.ok
        assert result.max_bypass_observed == 2  # worst case still observed

    def test_violation_trace_replays_to_the_reported_bypass(self):
        """The witness schedule is executable on the model step function."""
        import copy

        spec = ticket_fairness(3, rounds=1)
        result = BypassAnalyzer(spec, bound=1).check()
        assert not result.ok and result.trace
        state = copy.deepcopy(spec.model.initial_state)
        for pid, _ in result.trace:
            assert spec.model.step(state, pid)

    def test_counter_resets_when_process_stops_waiting(self):
        """Bypass counts are per waiting episode, not cumulative across CSs."""
        # Two rounds: each wait episode is bounded by P-1 even though the
        # total foreign entries over the run is (P-1) * rounds.
        result = BypassAnalyzer(ticket_fairness(2, rounds=3), bound=1).check()
        assert result.ok
        assert result.max_bypass_observed == 1

    def test_huge_bound_never_fires_but_explores_fully(self):
        result = BypassAnalyzer(tas_fairness(2, rounds=2), bound=1000).check()
        assert result.ok
        assert result.complete
        assert 0 < result.max_bypass_observed <= 1000


class TestTestAndSetUnfairness:
    def test_bypass_exceeds_fifo_bound(self):
        """A TAS lock lets the same competitor win repeatedly (no FIFO order)."""
        spec = tas_fairness(num_processes=3, rounds=2)
        fifo = BypassAnalyzer(spec, bound=2).check()
        assert not fifo.ok
        assert "bypassed" in fifo.violation

    def test_large_enough_bound_passes_for_finite_rounds(self):
        """With finite rounds the worst case is (P-1) * rounds foreign entries."""
        spec = tas_fairness(num_processes=2, rounds=2)
        result = BypassAnalyzer(spec, bound=2).check()
        assert result.ok
        assert result.max_bypass_observed == 2

    def test_mutual_exclusion_still_holds(self):
        build_checker(tas_fairness(2, rounds=1).model, check_deadlock=False).assert_ok()
