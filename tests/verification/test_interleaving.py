"""Tests for the explicit-state interleaving model checker."""

from __future__ import annotations

import pytest

from repro.verification.interleaving import (
    InvariantViolation,
    ModelChecker,
    ModelDeadlock,
    StateExplosionError,
)


def simple_counter_model(num_processes: int, rounds: int = 1):
    """Each process increments a shared counter `rounds` times (race-free by atomic step)."""
    initial = {"counter": 0, "procs": [{"pc": 0} for _ in range(num_processes)]}

    def step(state, pid):
        me = state["procs"][pid]
        if me["pc"] >= rounds:
            return False
        state["counter"] += 1
        me["pc"] += 1
        return True

    def is_done(state, pid):
        return state["procs"][pid]["pc"] >= rounds

    return initial, step, is_done


class TestBasicExploration:
    def test_terminates_and_reports_states(self):
        initial, step, is_done = simple_counter_model(2, rounds=2)
        checker = ModelChecker(
            num_processes=2, step=step, initial_state=initial, is_done=is_done,
            invariant=lambda s: s["counter"] <= 4,
        )
        result = checker.check()
        assert result.ok
        assert result.complete
        assert result.states_explored > 1
        assert result.transitions >= result.states_explored - 1

    def test_single_process(self):
        initial, step, is_done = simple_counter_model(1, rounds=3)
        result = ModelChecker(
            num_processes=1, step=step, initial_state=initial, is_done=is_done
        ).check()
        assert result.ok

    def test_invariant_violation_found(self):
        initial, step, is_done = simple_counter_model(2, rounds=2)
        checker = ModelChecker(
            num_processes=2, step=step, initial_state=initial, is_done=is_done,
            invariant=lambda s: s["counter"] <= 2,
            invariant_name="counter bound",
        )
        result = checker.check()
        assert not result.ok
        assert "counter bound" in result.violation
        assert result.witness is not None
        with pytest.raises(InvariantViolation):
            checker.assert_ok()

    def test_deadlock_detection(self):
        # one process that blocks forever on a condition nobody establishes
        initial = {"flag": 0, "procs": [{"pc": 0}]}

        def step(state, pid):
            if state["flag"] == 0:
                return False
            state["procs"][pid]["pc"] = 1
            return True

        checker = ModelChecker(
            num_processes=1, step=step, initial_state=initial,
            is_done=lambda s, p: s["procs"][p]["pc"] == 1,
        )
        result = checker.check()
        assert not result.ok
        assert "deadlock" in result.violation
        with pytest.raises(ModelDeadlock):
            checker.assert_ok()

    def test_deadlock_check_can_be_disabled(self):
        initial = {"flag": 0, "procs": [{"pc": 0}]}

        def step(state, pid):
            return False

        result = ModelChecker(
            num_processes=1, step=step, initial_state=initial,
            is_done=lambda s, p: False, check_deadlock=False,
        ).check()
        assert result.ok

    def test_state_budget_enforced(self):
        initial, step, is_done = simple_counter_model(3, rounds=4)
        checker = ModelChecker(
            num_processes=3, step=step, initial_state=initial, is_done=is_done, max_states=5
        )
        with pytest.raises(StateExplosionError):
            checker.check()

    def test_initial_state_not_mutated(self):
        initial, step, is_done = simple_counter_model(2, rounds=1)
        ModelChecker(num_processes=2, step=step, initial_state=initial, is_done=is_done).check()
        assert initial["counter"] == 0
        assert all(p["pc"] == 0 for p in initial["procs"])

    def test_invalid_process_count(self):
        with pytest.raises(ValueError):
            ModelChecker(num_processes=0, step=lambda s, p: True, initial_state={}, is_done=lambda s, p: True)

    def test_explores_all_interleavings(self):
        """Two processes choosing distinct slots: all orderings must be visited."""
        initial = {"orders": [], "procs": [{"pc": 0} for _ in range(2)]}
        seen_orders = set()

        def step(state, pid):
            if state["procs"][pid]["pc"] == 1:
                return False
            state["orders"] = state["orders"] + [pid]
            state["procs"][pid]["pc"] = 1
            if len(state["orders"]) == 2:
                seen_orders.add(tuple(state["orders"]))
            return True

        ModelChecker(
            num_processes=2, step=step, initial_state=initial,
            is_done=lambda s, p: s["procs"][p]["pc"] == 1,
        ).check()
        assert seen_orders == {(0, 1), (1, 0)}
