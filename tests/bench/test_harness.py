"""Tests for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.bench.harness import build_lock_spec, run_lock_benchmark
from repro.bench.workloads import SCHEMES, LockBenchConfig
from repro.core.baselines import FompiRWLockSpec, FompiSpinLockSpec
from repro.core.dmcs import DMCSLockSpec
from repro.core.rma_mcs import RMAMCSLockSpec
from repro.core.rma_rw import RMARWLockSpec
from repro.rma.latency import LatencyModel
from repro.topology.machine import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine.cluster(nodes=2, procs_per_node=4)


class TestBuildLockSpec:
    def test_all_schemes_buildable(self, machine):
        from repro.related.alock import ALockSpec
        from repro.related.cohort import CohortTicketLockSpec
        from repro.related.hbo import HBOLockSpec
        from repro.related.lock_server import LockServerSpec
        from repro.related.numa_rw import NumaRWLockSpec
        from repro.related.ticket import TicketLockSpec

        expected_types = {
            "fompi-spin": FompiSpinLockSpec,
            "d-mcs": DMCSLockSpec,
            "rma-mcs": RMAMCSLockSpec,
            "fompi-rw": FompiRWLockSpec,
            "rma-rw": RMARWLockSpec,
            "ticket": TicketLockSpec,
            "hbo": HBOLockSpec,
            "cohort": CohortTicketLockSpec,
            "numa-rw": NumaRWLockSpec,
            "alock": ALockSpec,
            "lock-server": LockServerSpec,
        }
        for scheme in SCHEMES:
            config = LockBenchConfig(machine=machine, scheme=scheme, t_l=(2, 2))
            spec, is_rw = build_lock_spec(config)
            assert isinstance(spec, expected_types[scheme])
            assert is_rw == config.is_rw_scheme

    def test_rw_thresholds_forwarded(self, machine):
        config = LockBenchConfig(machine=machine, scheme="rma-rw", t_dc=2, t_l=(3, 5), t_r=11, t_w=9)
        spec, _ = build_lock_spec(config)
        assert spec.t_dc == 2
        assert spec.reader_threshold == 11
        assert spec.writer_threshold == 9
        assert spec.locality_threshold(2) == 5


class TestRunLockBenchmark:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_every_scheme_runs_ecsb(self, machine, scheme):
        config = LockBenchConfig(
            machine=machine, scheme=scheme, benchmark="ecsb", iterations=6, fw=0.2, t_l=(2, 2), t_r=8
        )
        result = run_lock_benchmark(config)
        assert result.total_acquires == machine.num_processes * 6
        assert result.throughput_mln_per_s > 0
        assert result.latency_mean_us > 0
        assert result.elapsed_us > 0
        assert result.scheme == scheme

    @pytest.mark.parametrize("bench_name", ["lb", "ecsb", "sob", "wcsb", "warb"])
    def test_every_benchmark_runs(self, machine, bench_name):
        config = LockBenchConfig(
            machine=machine, scheme="rma-rw", benchmark=bench_name, iterations=5, fw=0.2, t_l=(2, 2), t_r=8
        )
        result = run_lock_benchmark(config)
        assert result.benchmark == bench_name
        assert result.reads + result.writes == result.total_acquires

    def test_mcs_schemes_count_everything_as_writes(self, machine):
        config = LockBenchConfig(machine=machine, scheme="d-mcs", benchmark="ecsb", iterations=4)
        result = run_lock_benchmark(config)
        assert result.reads == 0
        assert result.writes == result.total_acquires

    def test_rw_role_split_follows_fw(self, machine):
        config = LockBenchConfig(
            machine=machine, scheme="rma-rw", benchmark="ecsb", iterations=10, fw=0.0, t_l=(2, 2), t_r=8
        )
        result = run_lock_benchmark(config)
        assert result.writes == 0
        config = LockBenchConfig(
            machine=machine, scheme="rma-rw", benchmark="ecsb", iterations=10, fw=1.0, t_l=(2, 2), t_r=8
        )
        result = run_lock_benchmark(config)
        assert result.reads == 0

    def test_deterministic_given_seed(self, machine):
        config = LockBenchConfig(
            machine=machine, scheme="rma-rw", benchmark="sob", iterations=6, fw=0.2, t_l=(2, 2), t_r=8, seed=5
        )
        a = run_lock_benchmark(config)
        b = run_lock_benchmark(config)
        assert a.throughput_mln_per_s == b.throughput_mln_per_s
        assert a.latency_mean_us == b.latency_mean_us

    def test_seed_override(self, machine):
        config = LockBenchConfig(
            machine=machine, scheme="rma-rw", benchmark="ecsb", iterations=6, fw=0.5, t_l=(2, 2), t_r=8, seed=5
        )
        default_seed = run_lock_benchmark(config)
        overridden = run_lock_benchmark(config, seed=99)
        # different seeds change the reader/writer mix and therefore the result
        assert (default_seed.reads, default_seed.writes) != (overridden.reads, overridden.writes) or \
            default_seed.throughput_mln_per_s != overridden.throughput_mln_per_s

    def test_wcsb_slower_than_ecsb(self, machine):
        """The in-CS computation of WCSB must lower throughput vs an empty CS."""
        common = dict(machine=machine, scheme="d-mcs", iterations=6, seed=2)
        ecsb = run_lock_benchmark(LockBenchConfig(benchmark="ecsb", **common))
        wcsb = run_lock_benchmark(LockBenchConfig(benchmark="wcsb", **common))
        assert wcsb.throughput_mln_per_s < ecsb.throughput_mln_per_s

    def test_custom_latency_model(self, machine):
        config = LockBenchConfig(machine=machine, scheme="d-mcs", benchmark="ecsb", iterations=6)
        fast = run_lock_benchmark(config)
        slow = run_lock_benchmark(config, latency_model=LatencyModel.scaled(10.0))
        assert slow.throughput_mln_per_s < fast.throughput_mln_per_s

    def test_as_row_contents(self, machine):
        config = LockBenchConfig(machine=machine, scheme="rma-mcs", benchmark="sob", iterations=5, t_l=(2, 2))
        row = run_lock_benchmark(config).as_row()
        assert row["scheme"] == "rma-mcs"
        assert row["benchmark"] == "sob"
        assert row["P"] == machine.num_processes
        assert row["throughput_mln_s"] > 0
        assert {"latency_us", "latency_p95_us", "elapsed_us", "acquires"} <= set(row)
