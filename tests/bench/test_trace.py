"""Tests for event tracing and its analysis helpers."""

from __future__ import annotations

import pytest

from repro.bench.trace import (
    TraceEvent,
    TraceRecorder,
    distance_breakdown,
    hottest_targets,
    per_rank_summary,
    render_rank_activity,
    summarize_trace,
    trace_rows_by_distance,
)
from repro.core.dmcs import DMCSLockSpec
from repro.core.rma_mcs import RMAMCSLockSpec
from repro.rma.ops import RMACall
from repro.rma.sim_runtime import SimRuntime
from repro.topology.machine import Machine


def _events():
    return [
        TraceEvent(rank=0, call="put", target=1, start_us=0.0, duration_us=1.0),
        TraceEvent(rank=0, call="flush", target=1, start_us=1.0, duration_us=0.5),
        TraceEvent(rank=1, call="get", target=0, start_us=2.0, duration_us=2.0),
        TraceEvent(rank=1, call="get", target=1, start_us=4.0, duration_us=0.1),
    ]


class TestTraceRecorder:
    def test_record_and_len(self):
        recorder = TraceRecorder()
        recorder.record(0, RMACall.PUT, 1, 0.0, 1.5)
        recorder.record(1, RMACall.CAS, 0, 2.0, 0.5)
        assert len(recorder) == 2
        assert recorder.events[0].call == "put"
        assert recorder.events[1].end_us == pytest.approx(2.5)

    def test_capacity_bounds_memory(self):
        recorder = TraceRecorder(capacity=2)
        for i in range(5):
            recorder.record(0, RMACall.GET, 0, float(i), 0.1)
        assert len(recorder) == 2
        assert recorder.dropped_events == 3

    def test_clear_resets_everything(self):
        recorder = TraceRecorder(capacity=1)
        recorder.record(0, RMACall.GET, 0, 0.0, 0.1)
        recorder.record(0, RMACall.GET, 0, 1.0, 0.1)
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dropped_events == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)


class TestSummaries:
    def test_summarize_trace_counts_and_time(self):
        summary = summarize_trace(_events())
        assert summary.num_events == 4
        assert summary.ops_by_call == {"put": 1, "flush": 1, "get": 2}
        assert summary.total_comm_time_us == pytest.approx(3.6)
        assert summary.makespan_us == pytest.approx(4.1)
        rows = summary.as_rows()
        assert {r["call"] for r in rows} == {"put", "flush", "get"}
        assert abs(sum(r["share_pct"] for r in rows) - 100.0) < 1.0

    def test_empty_trace_summary(self):
        summary = summarize_trace([])
        assert summary.num_events == 0
        assert summary.total_comm_time_us == 0.0
        assert summary.as_rows() == []

    def test_per_rank_summary(self):
        per_rank = per_rank_summary(_events())
        assert set(per_rank) == {0, 1}
        assert per_rank[0]["ops"] == 2
        assert per_rank[1]["comm_time_us"] == pytest.approx(2.1)
        assert 0.0 < per_rank[1]["busy_fraction"] <= 1.0

    def test_distance_breakdown(self):
        machine = Machine.cluster(nodes=2, procs_per_node=1)  # ranks 0 and 1 on different nodes
        breakdown = distance_breakdown(_events(), machine)
        assert breakdown["remote"]["ops"] == 3
        assert breakdown["self"]["ops"] == 1
        assert breakdown["same_node"]["ops"] == 0
        assert breakdown["remote"]["ops_share_pct"] == pytest.approx(75.0)
        rows = trace_rows_by_distance(breakdown)
        assert [r["distance"] for r in rows] == ["self", "same_node", "remote"]

    def test_hottest_targets_excludes_local_traffic(self):
        rows = hottest_targets(_events(), top=3)
        targets = {r["target"] for r in rows}
        assert targets == {0, 1}
        by_target = {r["target"]: r["remote_ops"] for r in rows}
        assert by_target[1] == 2  # put + flush from rank 0; rank 1's local get does not count
        assert by_target[0] == 1
        with pytest.raises(ValueError):
            hottest_targets(_events(), top=0)


class TestRenderRankActivity:
    def test_renders_one_row_per_rank(self):
        text = render_rank_activity(_events(), num_ranks=2, width=20)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 ranks
        assert "#" in lines[1] and "#" in lines[2]

    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(ValueError):
            render_rank_activity(_events(), num_ranks=0)
        with pytest.raises(ValueError):
            render_rank_activity(_events(), num_ranks=2, width=0)

    def test_empty_trace_renders_blank_strips(self):
        text = render_rank_activity([], num_ranks=2, width=10)
        assert "#" not in text


class TestRuntimeIntegration:
    def test_tracer_records_every_rma_call(self):
        machine = Machine.cluster(nodes=2, procs_per_node=2)
        spec = DMCSLockSpec(num_processes=machine.num_processes)
        recorder = TraceRecorder()
        runtime = SimRuntime(machine, window_words=spec.window_words, tracer=recorder, seed=1)

        def program(ctx):
            lock = spec.make(ctx)
            ctx.barrier()
            for _ in range(2):
                with lock.held():
                    ctx.compute(0.2)
            ctx.barrier()

        result = runtime.run(program, window_init=spec.init_window)
        assert len(recorder) == result.total_ops()
        summary = summarize_trace(recorder.events)
        assert summary.ops_by_call["fao"] == result.op_counts["fao"]

    def test_topology_aware_lock_has_more_local_traffic(self):
        """The mechanism behind Figure 3: RMA-MCS keeps traffic inside nodes."""
        machine = Machine.cluster(nodes=2, procs_per_node=4)

        def trace_for(spec):
            recorder = TraceRecorder()
            runtime = SimRuntime(machine, window_words=spec.window_words, tracer=recorder, seed=2)

            def program(ctx):
                lock = spec.make(ctx)
                ctx.barrier()
                for _ in range(4):
                    with lock.held():
                        ctx.compute(0.2)
                ctx.barrier()

            runtime.run(program, window_init=spec.init_window)
            return distance_breakdown(recorder.events, machine)

        oblivious = trace_for(DMCSLockSpec(num_processes=machine.num_processes))
        aware = trace_for(RMAMCSLockSpec(machine, t_l=(4, 8)))
        assert aware["remote"]["ops_share_pct"] <= oblivious["remote"]["ops_share_pct"]
