"""Smoke tests of the figure drivers on tiny sweeps.

Each driver runs with a reduced process-count list and iteration count so the
whole module stays fast; the point is to validate row schemas, parameter
plumbing and the mapping from rows to paper figures, not performance numbers
(those live in benchmarks/).
"""

from __future__ import annotations

import pytest

from repro.bench import experiments

TINY = {"process_counts": (4, 8), "iterations": 5, "procs_per_node": 4}
TINY_NO_ITERS = {"process_counts": (4, 8), "procs_per_node": 4}


class TestFigure3:
    def test_rows_cover_schemes_and_benchmarks(self):
        rows = experiments.figure3(benchmarks=("lb", "ecsb"), **TINY)
        assert {r["figure"] for r in rows} == {"3a", "3b"}
        assert {r["scheme"] for r in rows} == {"fompi-spin", "d-mcs", "rma-mcs"}
        assert {r["P"] for r in rows} == {4, 8}
        assert all(r["throughput_mln_s"] > 0 for r in rows)


class TestFigure4:
    def test_t_dc_sweep(self):
        rows = experiments.figure4a(t_dc_values=(1, 4), **TINY)
        assert {r["t_dc"] for r in rows} == {1, 4}
        assert all(r["figure"] == "4a" for r in rows)

    def test_t_dc_values_exceeding_p_are_skipped(self):
        rows = experiments.figure4a(t_dc_values=(1, 64), process_counts=(4,), iterations=4, procs_per_node=4)
        assert {r["t_dc"] for r in rows} == {1}

    def test_tl_product_sweep(self):
        rows = experiments.figure4b(tl_products=(8, 16), **TINY)
        assert {r["tl_product"] for r in rows} == {8, 16}

    def test_tl_split_sweep(self):
        rows = experiments.figure4c(product=16, **TINY)
        assert {r["tl_split"] for r in rows} == {"2-8", "4-4", "8-2"}
        assert all(r["figure"] == "4c" for r in rows)

    def test_tl_split_latency_variant(self):
        rows = experiments.figure4d(product=16, **TINY)
        assert all(r["figure"] == "4d" for r in rows)
        assert all(r["latency_us"] > 0 for r in rows)

    def test_t_r_sweep(self):
        rows = experiments.figure4e(t_r_values=(8, 16), **TINY)
        assert {r["t_r"] for r in rows} == {8, 16}

    def test_t_r_fw_interaction(self):
        rows = experiments.figure4f(t_r_values=(8,), fw_values=(0.02, 0.05), **TINY)
        assert {r["series"] for r in rows} == {"8-2%", "8-5%"}


class TestFigure5:
    def test_series_labels_combine_scheme_and_fw(self):
        rows = experiments.figure5(benchmarks=("ecsb",), fw_values=(0.02,), **TINY)
        assert {r["series"] for r in rows} == {"rma-rw 2%", "fompi-rw 2%"}
        assert all(r["figure"] == "5b" for r in rows)


class TestFigure6:
    def test_dht_rows(self):
        rows = experiments.figure6(fw_values=(0.05,), ops_per_process=4, process_counts=(4, 8), procs_per_node=4)
        assert {r["scheme"] for r in rows} == {"fompi-a", "fompi-rw", "rma-rw"}
        assert all(r["figure"] == "6b" for r in rows)
        assert all(r["total_time_us"] > 0 for r in rows)


class TestAblations:
    def test_counter_placement(self):
        rows = experiments.ablation_counter_placement(**TINY)
        assert {r["series"] for r in rows} == {"dc-per-node", "dc-single"}

    def test_flat_latency(self):
        rows = experiments.ablation_flat_latency(**TINY)
        assert {r["fabric"] for r in rows} == {"hierarchical", "flat"}

    def test_locality(self):
        rows = experiments.ablation_locality(t_l2_values=(1, 4), **TINY)
        assert {r["t_l2"] for r in rows} == {1, 4}


class TestHandoffLocalityAblation:
    def test_reports_locality_and_throughput(self):
        rows = experiments.ablation_handoff_locality(
            t_l2_values=(1, 8), process_counts=(8,), iterations=5, procs_per_node=4
        )
        assert {r["t_l2"] for r in rows} == {1, 8}
        for row in rows:
            assert 0.0 <= row["node_locality_pct"] <= 100.0
            assert row["throughput_mln_s"] > 0
            assert row["grants"] == 8 * 5

    def test_more_locality_with_larger_threshold(self):
        rows = experiments.ablation_handoff_locality(
            t_l2_values=(1, 8), process_counts=(8,), iterations=6, procs_per_node=4
        )
        by_tl = {r["t_l2"]: r["node_locality_pct"] for r in rows}
        assert by_tl[8] >= by_tl[1]


class TestFabricContentionAblation:
    def test_rows_cover_both_fabrics_and_schemes(self):
        rows = experiments.ablation_fabric_contention(**TINY)
        assert {r["fabric"] for r in rows} == {"endpoint-only", "dragonfly-links"}
        assert {r["scheme"] for r in rows} == {"d-mcs", "rma-mcs"}
        assert all(r["throughput_mln_s"] > 0 for r in rows)

    def test_link_contention_never_speeds_up_a_scheme(self):
        rows = experiments.ablation_fabric_contention(process_counts=(8,), iterations=6, procs_per_node=4)
        by_series = {r["series"]: r["throughput_mln_s"] for r in rows}
        assert by_series["rma-mcs (dragonfly-links)"] <= by_series["rma-mcs (endpoint-only)"] * 1.001
        assert by_series["d-mcs (dragonfly-links)"] <= by_series["d-mcs (endpoint-only)"] * 1.001
