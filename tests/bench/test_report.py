"""Tests for the reporting/pivoting helpers."""

from __future__ import annotations

import pytest

from repro.bench.report import format_figure, format_table, pivot_rows, summarize_speedup

ROWS = [
    {"P": 4, "scheme": "a", "throughput_mln_s": 1.0},
    {"P": 4, "scheme": "b", "throughput_mln_s": 2.0},
    {"P": 8, "scheme": "a", "throughput_mln_s": 1.5},
    {"P": 8, "scheme": "b", "throughput_mln_s": 4.5},
]


class TestFormatTable:
    def test_renders_all_rows_and_columns(self):
        text = format_table(ROWS)
        lines = text.splitlines()
        assert len(lines) == 2 + len(ROWS)
        assert "scheme" in lines[0]
        assert "4.500" in text

    def test_empty(self):
        assert format_table([]) == "(no data)"

    def test_explicit_columns(self):
        text = format_table(ROWS, columns=["P", "scheme"])
        assert "throughput" not in text

    def test_missing_values_rendered_blank(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert text.count("\n") == 3


class TestPivot:
    def test_pivot_layout(self):
        pivoted = pivot_rows(ROWS)
        assert pivoted == [
            {"P": 4, "a": 1.0, "b": 2.0},
            {"P": 8, "a": 1.5, "b": 4.5},
        ]

    def test_pivot_missing_combination(self):
        rows = ROWS + [{"P": 16, "scheme": "a", "throughput_mln_s": 2.0}]
        pivoted = pivot_rows(rows)
        assert pivoted[-1]["b"] is None

    def test_pivot_custom_fields(self):
        rows = [
            {"t_r": 8, "series": "x", "latency_us": 3.0},
            {"t_r": 16, "series": "x", "latency_us": 4.0},
        ]
        pivoted = pivot_rows(rows, x="t_r", series="series", value="latency_us")
        assert pivoted[0] == {"t_r": 8, "x": 3.0}

    def test_format_figure_includes_title_and_metric(self):
        text = format_figure(ROWS, title="Figure X")
        assert text.startswith("== Figure X ==")
        assert "throughput_mln_s" in text
        assert "b" in text.splitlines()[1]


class TestSpeedup:
    def test_throughput_ratio(self):
        ratios = summarize_speedup(ROWS, ours="b", baseline="a")
        assert ratios["4"] == pytest.approx(2.0)
        assert ratios["8"] == pytest.approx(3.0)
        assert ratios["mean"] == pytest.approx(2.5)

    def test_latency_ratio_inverted(self):
        rows = [
            {"P": 4, "scheme": "ours", "latency_us": 1.0},
            {"P": 4, "scheme": "base", "latency_us": 5.0},
        ]
        ratios = summarize_speedup(rows, ours="ours", baseline="base", value="latency_us", higher_is_better=False)
        assert ratios["4"] == pytest.approx(5.0)

    def test_missing_series_skipped(self):
        ratios = summarize_speedup(ROWS + [{"P": 32, "scheme": "a", "throughput_mln_s": 1.0}], ours="b", baseline="a")
        assert "32" not in ratios

    def test_empty_result_when_no_overlap(self):
        assert summarize_speedup(ROWS, ours="zzz", baseline="a") == {}
