"""Tests for exporting benchmark rows to CSV/JSON."""

from __future__ import annotations

import json

import pytest

from repro.bench.export import load_rows, rows_to_csv, rows_to_json, save_figure_rows

ROWS = [
    {"P": 4, "scheme": "a", "throughput_mln_s": 1.25},
    {"P": 8, "scheme": "b", "throughput_mln_s": 2.5, "extra": "note"},
]


class TestCsv:
    def test_round_trip(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "fig.csv")
        loaded = load_rows(path)
        assert len(loaded) == 2
        assert loaded[0]["scheme"] == "a"
        assert float(loaded[1]["throughput_mln_s"]) == 2.5

    def test_union_of_columns(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "fig.csv")
        header = path.read_text().splitlines()[0]
        assert header.split(",") == ["P", "scheme", "throughput_mln_s", "extra"]

    def test_creates_parent_directories(self, tmp_path):
        path = rows_to_csv(ROWS, tmp_path / "nested" / "deep" / "fig.csv")
        assert path.exists()

    def test_empty_rows(self, tmp_path):
        path = rows_to_csv([], tmp_path / "empty.csv")
        assert load_rows(path) == []


class TestJson:
    def test_round_trip_preserves_types(self, tmp_path):
        path = rows_to_json(ROWS, tmp_path / "fig.json")
        loaded = load_rows(path)
        assert loaded[0]["P"] == 4
        assert loaded[1]["throughput_mln_s"] == 2.5

    def test_metadata_stored(self, tmp_path):
        path = rows_to_json(ROWS, tmp_path / "fig.json", metadata={"figure": "5b", "seed": 1})
        payload = json.loads(path.read_text())
        assert payload["metadata"] == {"figure": "5b", "seed": 1}


class TestSaveFigureRows:
    def test_writes_both_formats(self, tmp_path):
        out = save_figure_rows(ROWS, tmp_path / "figures", "fig5b")
        assert out["csv"].name == "fig5b.csv"
        assert out["json"].name == "fig5b.json"
        assert load_rows(out["csv"])[0]["scheme"] == "a"
        assert load_rows(out["json"])[1]["scheme"] == "b"

    def test_integration_with_figure_driver(self, tmp_path):
        from repro.bench import experiments

        rows = experiments.figure4a(t_dc_values=(1,), process_counts=(4,), iterations=4, procs_per_node=4)
        out = save_figure_rows(rows, tmp_path, "fig4a")
        loaded = load_rows(out["json"])
        assert loaded and loaded[0]["figure"] == "4a"
