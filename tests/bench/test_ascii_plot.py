"""Tests for the plain-text chart renderer."""

from __future__ import annotations

import pytest

from repro.bench.ascii_plot import bar_chart, figure_chart, line_chart


class TestLineChart:
    def test_renders_all_series_with_distinct_markers(self):
        chart = line_chart(
            {
                "rma-mcs": [(16, 1.0), (64, 2.0), (256, 3.0)],
                "fompi-spin": [(16, 0.8), (64, 0.4), (256, 0.1)],
            },
            title="ECSB throughput",
            x_label="P",
            y_label="mln locks/s",
        )
        assert "ECSB throughput" in chart
        assert "legend: o rma-mcs   x fompi-spin" in chart
        assert "o" in chart and "x" in chart
        assert "mln locks/s" in chart

    def test_log_scale_annotation(self):
        chart = line_chart(
            {"latency": [(16, 10.0), (1024, 1000.0)]},
            log_y=True,
            y_label="us",
        )
        assert "(log scale)" in chart

    def test_single_point_series_does_not_crash(self):
        chart = line_chart({"one": [(8, 5.0)]})
        assert "|" in chart

    def test_rejects_empty_and_degenerate_input(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})
        with pytest.raises(ValueError):
            line_chart({"a": [(1, 1)]}, width=4)

    def test_axis_labels_show_extremes(self):
        chart = line_chart({"s": [(4, 1.0), (64, 9.0)]})
        assert "4" in chart
        assert "64" in chart
        assert "9" in chart


class TestBarChart:
    def test_longest_bar_for_largest_value(self):
        chart = bar_chart({"same_node": 80.0, "remote": 20.0}, width=20, unit="%")
        lines = chart.splitlines()
        same_node_len = lines[0].count("#")
        remote_len = lines[1].count("#")
        assert same_node_len == 20
        assert remote_len < same_node_len
        assert "%" in chart

    def test_zero_values_render_empty_bars(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "#" not in chart

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=2)

    def test_title_is_included(self):
        assert bar_chart({"a": 1.0}, title="shares").startswith("shares")


class TestFigureChart:
    def test_groups_rows_by_series(self):
        rows = [
            {"scheme": "rma-mcs", "P": 16, "throughput_mln_s": 1.5},
            {"scheme": "rma-mcs", "P": 64, "throughput_mln_s": 2.5},
            {"scheme": "d-mcs", "P": 16, "throughput_mln_s": 1.0},
            {"scheme": "d-mcs", "P": 64, "throughput_mln_s": 0.8},
        ]
        chart = figure_chart(rows, title="figure 3b")
        assert "figure 3b" in chart
        assert "rma-mcs" in chart and "d-mcs" in chart

    def test_custom_series_and_value_columns(self):
        rows = [
            {"series": "T_R=8", "P": 8, "latency_us": 12.0},
            {"series": "T_R=64", "P": 8, "latency_us": 9.0},
        ]
        chart = figure_chart(rows, series="series", value="latency_us", log_y=True)
        assert "T_R=8" in chart and "T_R=64" in chart
