"""Tests for the campaign engine: grids, parallel execution, result cache."""

from __future__ import annotations

import pytest

from repro.api.registry import (
    UnknownNameError,
    get_scheme,
    register_scheme,
    scheme_names,
    unregister,
)
from repro.bench.campaign import (
    DETERMINISM_FIELDS,
    BenchTask,
    CampaignPoint,
    CampaignSpec,
    ResultCache,
    campaign_names,
    execute_tasks,
    get_campaign,
    register_campaign,
    run_campaign,
    run_point,
    unregister_campaign,
)
from repro.bench.harness import run_lock_benchmark
from repro.bench.workloads import LockBenchConfig
from repro.topology.builder import cached_machine

#: Small grid used throughout: 2 schemes x 2 machine sizes, tiny iterations.
TINY = CampaignSpec(
    name="tiny-test",
    schemes=("rma-mcs", "ticket"),
    benchmarks=("ecsb",),
    process_counts=(4, 8),
    fw_values=(0.02,),
    iterations=3,
    procs_per_node=4,
    seed=5,
)


def _strip_host_fields(row):
    return {k: v for k, v in row.items() if k not in ("wall_s", "sim_ops_per_s", "cached")}


class TestCampaignSpec:
    def test_ci_gate_covers_every_harness_scheme(self):
        points = get_campaign("ci-gate").points()
        assert {p.scheme for p in points} == set(scheme_names(harness=True))
        assert {p.procs for p in points} == {8, 32, 64}
        assert {p.benchmark for p in points} == {"wcsb"}
        # nine schemes x three process counts
        assert len(points) == 3 * len(scheme_names(harness=True))

    def test_selector_resolves_third_party_schemes(self):
        """A freshly registered lock joins selector-based campaigns for free."""
        builder = get_scheme("fompi-spin").builder
        register_scheme("campaign-test-lock", category="custom")(builder)
        try:
            points = get_campaign("ci-gate").points()
            assert "campaign-test-lock" in {p.scheme for p in points}
        finally:
            unregister("scheme", "campaign-test-lock")

    def test_unknown_scheme_selector_raises_with_suggestion(self):
        spec = CampaignSpec(name="bad", schemes=("rma-mc",))
        with pytest.raises(UnknownNameError, match="rma-mcs"):
            spec.points()

    def test_literal_non_harness_scheme_rejected_early(self):
        """A harness=False scheme without a conformance adapter must be
        rejected up front instead of crashing inside a pool worker.

        striped-rw (harness=False *with* an adapter) is a valid grid citizen
        since the traffic engine drives its native striped table; a scheme
        with neither capability still fails at expansion time.
        """
        from repro.api.registry import register_scheme, unregister

        striped = CampaignSpec(name="striped-ok", schemes=("striped-rw",))
        assert [p.scheme for p in striped.points()]

        @register_scheme("no-adapter-lock", harness=False)
        def _build(machine):  # pragma: no cover - expansion fails before building
            raise AssertionError

        try:
            bad = CampaignSpec(name="bad-harness", schemes=("no-adapter-lock",))
            with pytest.raises(ValueError, match="cannot run in a campaign grid"):
                bad.points()
        finally:
            unregister("scheme", "no-adapter-lock")

    def test_non_rw_schemes_skip_extra_writer_fractions(self):
        spec = CampaignSpec(
            name="fw-axis",
            schemes=("rma-mcs", "rma-rw"),
            benchmarks=("ecsb",),
            process_counts=(4,),
            fw_values=(0.002, 0.2),
            iterations=2,
            procs_per_node=4,
        )
        points = spec.points()
        assert sum(1 for p in points if p.scheme == "rma-mcs") == 1
        assert sum(1 for p in points if p.scheme == "rma-rw") == 2

    def test_case_names_are_unique(self):
        for name in campaign_names():
            points = get_campaign(name).points()
            assert len({p.case for p in points}) == len(points)

    def test_case_names_cover_every_config_axis(self):
        """Distinct points must never collide on one baseline row key."""
        from dataclasses import replace

        base = CampaignPoint(scheme="rma-mcs", benchmark="ecsb", procs=8)
        for change in (
            {"iterations": 99},
            {"procs_per_node": 4},
            {"scheduler": "baseline"},
            {"topology": "figure2"},
            {"seed": 9},
            {"fw": 0.5},
        ):
            assert replace(base, **change).case != base.case, change

    def test_param_overlay_joins_the_case_name_and_config(self):
        from dataclasses import replace

        base = CampaignPoint(scheme="hbo", benchmark="ecsb", procs=8,
                             params=(("local_cap_us", 0.5),))
        assert "local_cap_us=0.5" in base.case
        assert replace(base, params=()).case != base.case
        config = base.config()
        # Non-config-field params ride in the generic overlay...
        assert config.params == (("local_cap_us", 0.5),)
        # ...while params naming LockBenchConfig fields stay direct kwargs
        # (the historical cache-key behavior for the t_* thresholds).
        legacy = CampaignPoint(scheme="rma-rw", benchmark="ecsb", procs=8,
                               params=(("t_r", 16),))
        legacy_config = legacy.config()
        assert legacy_config.t_r == 16 and legacy_config.params == ()

    def test_points_carry_their_provider_module(self):
        points = get_campaign("ci-gate").points()
        providers = {p.scheme: p.provider for p in points}
        assert providers["rma-rw"] == "repro.core.rma_rw"
        assert providers["ticket"] == "repro.related.ticket"

    def test_register_and_unregister(self):
        spec = CampaignSpec(name="throwaway", schemes=("ticket",), process_counts=(4,))
        register_campaign(spec)
        try:
            assert get_campaign("throwaway") is spec
            with pytest.raises(ValueError, match="already registered"):
                register_campaign(CampaignSpec(name="throwaway"))
        finally:
            unregister_campaign("throwaway")
        with pytest.raises(UnknownNameError):
            get_campaign("throwaway")


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path, epoch="e1")
        report = run_campaign(TINY, jobs=1, cache=cache)
        assert report.cache_misses == report.points == 4
        assert all(row["cached"] is False for row in report.rows)

        again = run_campaign(TINY, jobs=1, cache=ResultCache(tmp_path, epoch="e1"))
        assert again.cache_hits == again.points == 4
        assert all(row["cached"] is True for row in again.rows)
        for fresh, cached in zip(report.rows, again.rows):
            assert _strip_host_fields(fresh) == _strip_host_fields(cached)
            # perf fields survive the JSON round-trip too
            assert fresh["sim_ops_per_s"] == cached["sim_ops_per_s"]

    def test_epoch_change_invalidates(self, tmp_path):
        run_campaign(TINY, jobs=1, cache=ResultCache(tmp_path, epoch="e1"))
        other = run_campaign(TINY, jobs=1, cache=ResultCache(tmp_path, epoch="e2"))
        assert other.cache_hits == 0
        assert other.cache_misses == other.points

    def test_key_depends_on_point_configuration(self, tmp_path):
        from dataclasses import replace

        cache = ResultCache(tmp_path, epoch="e1")
        base = CampaignPoint(scheme="rma-mcs", benchmark="ecsb", procs=4, procs_per_node=4)
        assert cache.key(base) != cache.key(replace(base, seed=9))
        assert cache.key(base) != cache.key(replace(base, iterations=7))
        assert cache.key(base) != cache.key(replace(base, params=(("t_l", (2, 2)),)))
        assert cache.key(base) == cache.key(
            CampaignPoint(scheme="rma-mcs", benchmark="ecsb", procs=4, procs_per_node=4)
        )

    def test_refresh_ignores_hits_but_restores_them(self, tmp_path):
        cache = ResultCache(tmp_path, epoch="e1")
        run_campaign(TINY, jobs=1, cache=cache)
        refreshed = run_campaign(TINY, jobs=1, cache=cache, refresh=True)
        assert refreshed.cache_hits == 0 and refreshed.cache_misses == refreshed.points
        warm = run_campaign(TINY, jobs=1, cache=cache)
        assert warm.cache_hits == warm.points

    def test_prune_removes_stale_epochs(self, tmp_path):
        run_campaign(TINY, jobs=1, cache=ResultCache(tmp_path, epoch="old"))
        cache = ResultCache(tmp_path, epoch="new")
        run_campaign(TINY, jobs=1, cache=cache)
        assert cache.prune() == 1
        assert cache.stats()["rows"] == 4
        # the current epoch survives pruning
        assert run_campaign(TINY, jobs=1, cache=cache).cache_hits == 4


class TestParallelExecution:
    def test_parallel_rows_match_serial_bit_for_bit(self):
        serial = run_campaign(TINY, jobs=1, cache=False)
        parallel = run_campaign(TINY, jobs=2, cache=False)
        assert serial.points == parallel.points
        for s_row, p_row in zip(serial.rows, parallel.rows):
            assert _strip_host_fields(s_row) == _strip_host_fields(p_row)
        for field in DETERMINISM_FIELDS:
            assert [r[field] for r in serial.rows] == [r[field] for r in parallel.rows]

    def test_execute_tasks_preserves_order_and_results(self):
        machine = cached_machine(4, 4)
        configs = [
            LockBenchConfig(machine=machine, scheme="rma-mcs", benchmark="ecsb", iterations=3),
            LockBenchConfig(machine=machine, scheme="ticket", benchmark="ecsb", iterations=3),
        ]
        expected = [run_lock_benchmark(c) for c in configs]
        got = execute_tasks([BenchTask(config=c) for c in configs], jobs=2)
        assert [r.scheme for r in got] == ["rma-mcs", "ticket"]
        assert [r.elapsed_us for r in got] == [r.elapsed_us for r in expected]
        assert [r.op_counts for r in got] == [r.op_counts for r in expected]

    def test_execute_tasks_pins_scheduler_and_provider(self, monkeypatch):
        """Workers receive the submit-time scheduler and the scheme's module
        (what keeps using_scheduler contexts and third-party locks alive
        under spawn-based pools)."""
        import repro.bench.campaign as campaign_mod

        machine = cached_machine(4, 4)
        config = LockBenchConfig(machine=machine, scheme="ticket", benchmark="ecsb", iterations=2)
        captured = []
        original = campaign_mod._execute_task
        monkeypatch.setattr(
            campaign_mod, "_execute_task", lambda t: (captured.append(t), original(t))[1]
        )
        results = execute_tasks([BenchTask(config=config)], jobs=1)
        assert results[0].scheme == "ticket"
        assert captured[0].provider == "repro.related.ticket"
        assert captured[0].scheduler == "horizon"

    def test_scheduler_override_keeps_rows_identical(self):
        horizon = run_campaign(TINY, jobs=1, cache=False)
        baseline = run_campaign(TINY, jobs=1, cache=False, scheduler="baseline")
        for h_row, b_row in zip(horizon.rows, baseline.rows):
            for field in DETERMINISM_FIELDS:
                assert h_row[field] == b_row[field]
            assert b_row["scheduler"] == "baseline"

    def test_unknown_scheduler_rejected_early(self):
        with pytest.raises(UnknownNameError):
            run_campaign(TINY, jobs=1, cache=False, scheduler="bogus")

    def test_unknown_name_error_survives_pickling(self):
        """A worker raising UnknownNameError must not kill the pool's result
        handler (which unpickles the exception in the parent)."""
        import pickle

        err = UnknownNameError("scheme", "nope", ["a", "b"])
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, UnknownNameError)
        assert (clone.kind, clone.name, clone.known) == (err.kind, err.name, err.known)
        assert str(clone) == str(err)

    def test_worker_error_propagates_instead_of_hanging(self):
        """End-to-end: an unknown scheme raised inside a pool worker surfaces
        in the parent as the helpful registry error."""
        machine = cached_machine(4, 4)
        config = LockBenchConfig(machine=machine, scheme="rma-mcs", benchmark="ecsb", iterations=2)
        good = BenchTask(config=config)
        bad = BenchTask(config=config, kind="bogus-kind")
        with pytest.raises(ValueError, match="bogus-kind"):
            execute_tasks([good, bad], jobs=2)

    def test_dht_tasks_reject_scheduler_override(self):
        from repro.dht.workload import DHTWorkloadConfig

        config = DHTWorkloadConfig(machine=cached_machine(4, 4), scheme="rma-rw", ops_per_process=2, fw=0.2, seed=1)
        with pytest.raises(ValueError, match="scheduler override"):
            execute_tasks([BenchTask(config=config, kind="dht", scheduler="baseline")], jobs=1)

    def test_report_records_effective_worker_count(self):
        report = run_campaign(TINY, jobs=16, cache=False)
        assert report.jobs == 16
        assert report.workers == min(16, report.points)


class TestRunPoint:
    def test_row_carries_determinism_and_perf_fields(self):
        point = CampaignPoint(
            scheme="rma-rw", benchmark="wcsb", procs=8, procs_per_node=4, iterations=3, fw=0.2, seed=7
        )
        row = run_point(point)
        for field in DETERMINISM_FIELDS:
            assert field in row
        assert row["case"] == "rma-rw-wcsb-p8-fw0.2-s7-i3-ppn4"
        assert row["acquires"] == 8 * 3
        assert len(row["fingerprint"]) == 64
        assert row["wall_s"] >= 0.0

    def test_same_point_is_bit_identical(self):
        point = CampaignPoint(scheme="rma-mcs", benchmark="ecsb", procs=8, procs_per_node=4, iterations=3)
        first = run_point(point)
        second = run_point(point)
        for field in DETERMINISM_FIELDS:
            assert first[field] == second[field]
