"""Tests for benchmark configuration and scaling knobs."""

from __future__ import annotations

import pytest

from repro.bench.workloads import (
    BENCHMARKS,
    MCS_SCHEMES,
    RELATED_MCS_SCHEMES,
    RELATED_RW_SCHEMES,
    RW_SCHEMES,
    SCHEMES,
    LockBenchConfig,
    bench_scale,
    default_process_counts,
)
from repro.topology.machine import Machine


@pytest.fixture
def machine() -> Machine:
    return Machine.cluster(nodes=2, procs_per_node=4)


class TestCatalogues:
    def test_benchmark_names_match_paper(self):
        assert set(BENCHMARKS) == {"lb", "ecsb", "sob", "wcsb", "warb"}

    def test_scheme_partition(self):
        mutex = set(MCS_SCHEMES) | set(RELATED_MCS_SCHEMES)
        rw = set(RW_SCHEMES) | set(RELATED_RW_SCHEMES)
        assert set(SCHEMES) == mutex | rw
        assert not mutex & rw
        assert "rma-rw" in RW_SCHEMES
        assert "rma-mcs" in MCS_SCHEMES
        assert "cohort" in RELATED_MCS_SCHEMES
        assert "numa-rw" in RELATED_RW_SCHEMES


class TestConfigValidation:
    def test_defaults_are_valid(self, machine):
        config = LockBenchConfig(machine=machine)
        assert config.scheme in SCHEMES
        assert config.is_rw_scheme

    def test_unknown_scheme(self, machine):
        with pytest.raises(ValueError):
            LockBenchConfig(machine=machine, scheme="nope")

    def test_unknown_benchmark(self, machine):
        with pytest.raises(ValueError):
            LockBenchConfig(machine=machine, benchmark="nope")

    def test_bad_iterations(self, machine):
        with pytest.raises(ValueError):
            LockBenchConfig(machine=machine, iterations=0)

    def test_bad_fw(self, machine):
        with pytest.raises(ValueError):
            LockBenchConfig(machine=machine, fw=-0.1)
        with pytest.raises(ValueError):
            LockBenchConfig(machine=machine, fw=1.1)

    def test_bad_warmup(self, machine):
        with pytest.raises(ValueError):
            LockBenchConfig(machine=machine, warmup_fraction=1.0)

    def test_bad_cs_compute_bounds(self, machine):
        with pytest.raises(ValueError):
            LockBenchConfig(machine=machine, cs_compute_us=(4.0, 1.0))
        with pytest.raises(ValueError):
            LockBenchConfig(machine=machine, wait_after_release_us=(-1.0, 1.0))

    def test_is_rw_scheme_flag(self, machine):
        assert not LockBenchConfig(machine=machine, scheme="d-mcs").is_rw_scheme
        assert LockBenchConfig(machine=machine, scheme="fompi-rw").is_rw_scheme

    def test_param_overlay_normalized_and_validated(self, machine):
        config = LockBenchConfig(
            machine=machine, scheme="hbo", params={"min_backoff_us": 0.2, "local_cap_us": 1.0}
        )
        assert config.params == (("local_cap_us", 1.0), ("min_backoff_us", 0.2))

    def test_param_overlay_rejects_unknown_names(self, machine):
        with pytest.raises(ValueError):
            LockBenchConfig(machine=machine, scheme="rma-rw", params=(("t_rr", 8),))


class TestEnvironmentKnobs:
    def test_bench_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_bench_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5

    def test_bench_scale_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        assert bench_scale() == pytest.approx(0.1)

    def test_bench_scale_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "not-a-number")
        assert bench_scale() == 1.0

    def test_default_process_counts_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_PROCS", raising=False)
        counts = default_process_counts()
        # The horizon scheduler (PR 1) extended the default sweep to P=128.
        assert counts == (4, 8, 16, 32, 64, 128)

    def test_default_process_counts_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_PROCS", "4, 8 12")
        assert default_process_counts() == (4, 8, 12)
