"""The deprecated ``--t-*`` aliases must be exact synonyms of ``--param``.

Property pinned here (ISSUE 9 satellite): for every generated threshold
alias, parsing ``--<t-flag> VALUE`` and parsing ``--param name=VALUE`` must
produce configurations whose campaign cache keys and run fingerprints are
bit-identical — plus the new conflict semantics: alias use warns, and an
alias disagreeing with a ``--param`` assignment of the same name exits 2
instead of silently letting one spelling win.
"""

from __future__ import annotations

import pytest

from repro.bench.campaign import CampaignPoint, ResultCache, run_result_sha
from repro.bench.harness import run_lock_benchmark_detailed
from repro.bench.workloads import LockBenchConfig
from repro.cli import _threshold_kwargs, build_parser
from repro.topology.builder import xc30_like

#: (alias argv fragment, --param equivalent, overlay pairs) per threshold.
ALIAS_CASES = [
    pytest.param(["--t-r", "16"], "t_r=16", (("t_r", 16),), id="t_r"),
    pytest.param(["--t-dc", "2"], "t_dc=2", (("t_dc", 2),), id="t_dc"),
    pytest.param(["--t-w", "8"], "t_w=8", (("t_w", 8),), id="t_w"),
    pytest.param(["--t-l", "2", "4"], "t_l=[2, 4]", (("t_l", (2, 4)),), id="t_l"),
]


def _parse_kwargs(extra):
    parser = build_parser()
    args = parser.parse_args(["bench", "--scheme", "rma-rw", "--procs", "8"] + extra)
    return _threshold_kwargs(args)


def _overlay(kwargs):
    """Normalize threshold kwargs to one canonical ``params`` overlay."""
    pairs = {name: value for name, value in kwargs.items() if name != "params"}
    pairs.update(dict(kwargs.get("params", ())))
    return tuple(sorted(pairs.items()))


class TestAliasParamEquivalence:
    @pytest.mark.parametrize("alias_argv,param_value,overlay", ALIAS_CASES)
    def test_cache_keys_are_bit_identical(self, alias_argv, param_value, overlay):
        with pytest.warns(DeprecationWarning):
            alias_kwargs = _parse_kwargs(alias_argv)
        param_kwargs = _parse_kwargs(["--param", param_value])
        assert _overlay(alias_kwargs) == _overlay(param_kwargs) == overlay

        points = [
            CampaignPoint(
                scheme="rma-rw", benchmark="ecsb", procs=8, procs_per_node=4,
                iterations=4, fw=0.2, seed=3, params=_overlay(kwargs),
            )
            for kwargs in (alias_kwargs, param_kwargs)
        ]
        assert points[0].describe() == points[1].describe()
        assert points[0].case == points[1].case
        cache = ResultCache()
        assert cache.key(points[0]) == cache.key(points[1])

    @pytest.mark.parametrize("alias_argv,param_value,overlay", ALIAS_CASES)
    def test_run_fingerprints_are_bit_identical(self, alias_argv, param_value, overlay):
        machine = xc30_like(8, procs_per_node=4)
        with pytest.warns(DeprecationWarning):
            alias_kwargs = _parse_kwargs(alias_argv)
        param_kwargs = _parse_kwargs(["--param", param_value])
        shas = []
        for kwargs in (alias_kwargs, param_kwargs):
            config = LockBenchConfig(
                machine=machine, scheme="rma-rw", benchmark="ecsb",
                iterations=4, fw=0.2, seed=3, **kwargs,
            )
            _, raw = run_lock_benchmark_detailed(config)
            shas.append(run_result_sha(raw))
        assert shas[0] == shas[1]


class TestAliasConflicts:
    def test_alias_use_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="--t-r is a deprecated alias"):
            _parse_kwargs(["--t-r", "16"])

    def test_plain_param_use_does_not_warn(self, recwarn):
        _parse_kwargs(["--param", "t_r=16"])
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_conflicting_values_exit_2(self, capsys):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(SystemExit) as excinfo:
                _parse_kwargs(["--t-r", "16", "--param", "t_r=64"])
        assert excinfo.value.code == 2
        assert "conflicting values" in capsys.readouterr().err

    def test_agreeing_values_pass_through_the_overlay(self):
        with pytest.warns(DeprecationWarning):
            kwargs = _parse_kwargs(["--t-r", "16", "--param", "t_r=16"])
        # The overlay carries the value; the deprecated direct kwarg is gone.
        assert kwargs == {"params": (("t_r", 16),)}
