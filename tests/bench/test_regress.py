"""Tests for the `repro regress` gate: comparisons, exit codes, blessing."""

from __future__ import annotations

import json

import pytest

from repro.bench.campaign import CampaignSpec, run_campaign
from repro.bench.regress import (
    EXIT_FAIL,
    EXIT_HARD,
    EXIT_OK,
    bless,
    check_runtime_manifest,
    compare_campaign_rows,
    exit_code,
    format_findings,
    run_regress,
)

TINY = CampaignSpec(
    name="tiny-regress",
    schemes=("rma-mcs", "rma-rw"),
    benchmarks=("ecsb",),
    process_counts=(4,),
    fw_values=(0.1,),
    iterations=3,
    procs_per_node=4,
    seed=11,
)


def _baseline_row(case="a", ops=1000.0, fingerprint="f" * 64):
    return {
        "case": case,
        "fingerprint": fingerprint,
        "elapsed_us": 10.0,
        "throughput_mln_s": 1.5,
        "latency_mean_us": 2.0,
        "latency_p95_us": 3.0,
        "acquires": 12,
        "reads": 10,
        "writes": 2,
        "rma_ops": 100,
        "op_counts": {"get": 50, "put": 50},
        "sim_ops_per_s": ops,
    }


class TestCompare:
    def test_identical_rows_pass(self):
        rows = [_baseline_row("a"), _baseline_row("b")]
        findings = compare_campaign_rows(rows, [dict(r) for r in rows])
        assert findings == []
        assert exit_code(findings) == EXIT_OK

    def test_soft_fail_manifest_exits_1(self):
        """A throughput regression beyond the applicable tolerance is exit 1."""
        base = [_baseline_row("a", ops=1000.0)]
        slow = [dict(_baseline_row("a"), sim_ops_per_s=100.0)]  # 90% drop
        findings = compare_campaign_rows(base, slow, soft=True)
        assert [f.level for f in findings] == ["fail"]
        assert exit_code(findings) == EXIT_FAIL

    def test_moderate_drop_warns_in_soft_mode_fails_in_strict(self):
        base = [_baseline_row("a", ops=1000.0)]
        slower = [dict(_baseline_row("a"), sim_ops_per_s=600.0)]  # 40% drop
        strict = compare_campaign_rows(base, slower, soft=False)
        assert exit_code(strict) == EXIT_FAIL
        soft = compare_campaign_rows(base, slower, soft=True)
        assert [f.level for f in soft] == ["warn"]
        assert exit_code(soft) == EXIT_OK

    def test_hard_fail_manifest_exits_2(self):
        """Any determinism-field divergence is a hard failure."""
        base = [_baseline_row("a")]
        diverged = [dict(_baseline_row("a"), fingerprint="0" * 64)]
        findings = compare_campaign_rows(base, diverged, soft=True)
        assert any(f.level == "hard" and f.field == "fingerprint" for f in findings)
        assert exit_code(findings) == EXIT_HARD

    def test_op_count_divergence_is_hard(self):
        base = [_baseline_row("a")]
        diverged = [dict(_baseline_row("a"), op_counts={"get": 51, "put": 49})]
        assert exit_code(compare_campaign_rows(base, diverged)) == EXIT_HARD

    def test_missing_case_is_hard_new_case_warns(self):
        base = [_baseline_row("a")]
        current = [_baseline_row("b")]
        findings = compare_campaign_rows(base, current)
        levels = {f.case: f.level for f in findings}
        assert levels["a"] == "hard"
        assert levels["b"] == "warn"

    def test_custom_tolerances(self):
        base = [_baseline_row("a", ops=1000.0)]
        slower = [dict(_baseline_row("a"), sim_ops_per_s=890.0)]  # 11% drop
        assert exit_code(compare_campaign_rows(base, slower, strict_tol=0.10)) == EXIT_FAIL
        assert exit_code(compare_campaign_rows(base, slower, strict_tol=0.15)) == EXIT_OK

    def test_format_findings_orders_worst_first(self):
        findings = compare_campaign_rows(
            [_baseline_row("a"), _baseline_row("b", ops=1000.0)],
            [dict(_baseline_row("a"), fingerprint="0" * 64), dict(_baseline_row("b"), sim_ops_per_s=10.0)],
        )
        text = format_findings(findings)
        assert text.index("[HARD") < text.index("[FAIL")


class TestRuntimeManifest:
    def test_committed_manifest_passes(self):
        from repro.bench.regress import DEFAULT_RUNTIME_BASELINE

        payload = json.loads(DEFAULT_RUNTIME_BASELINE.read_text())
        assert check_runtime_manifest(payload) == []

    def test_low_recorded_speedup_fails(self):
        payload = {"cases": [{"case": "g", "gate": True, "speedup": 1.2}]}
        findings = check_runtime_manifest(payload)
        assert [f.level for f in findings] == ["fail"]

    def test_missing_gate_case_is_hard(self):
        assert exit_code(check_runtime_manifest({"cases": [{"case": "x", "gate": False}]})) == EXIT_HARD
        assert exit_code(check_runtime_manifest({"cases": []})) == EXIT_HARD


class TestEndToEnd:
    @pytest.fixture()
    def blessed(self, tmp_path, monkeypatch):
        """A blessed tiny-campaign baseline backed by a tmp cache dir."""
        from repro.bench import campaign as campaign_mod

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        campaign_mod.register_campaign(TINY, replace=True)
        baseline = tmp_path / "BENCH_campaign.json"
        yield baseline
        campaign_mod.unregister_campaign(TINY.name)

    def test_bless_then_regress_passes_twice_bit_identically(self, blessed, tmp_path):
        bless(TINY.name, blessed, jobs=1, print_fn=lambda *_: None)
        payload = json.loads(blessed.read_text())
        assert payload["campaign"] == TINY.name
        assert payload["timing"]["warm_wall_s"] >= 0.0
        assert len(payload["rows"]) == 2

        out1 = tmp_path / "run1.json"
        out2 = tmp_path / "run2.json"
        # Gate determinism only: host wall-clock throughput of a millisecond
        # 2-point campaign is far too noisy for the default tolerance under
        # parallel test-suite load.
        code1 = run_regress(
            campaign=TINY.name, baseline_path=blessed, runtime_baseline_path=None,
            jobs=1, output=out1, strict_tol=1e9, print_fn=lambda *_: None,
        )
        code2 = run_regress(
            campaign=TINY.name, baseline_path=blessed, runtime_baseline_path=None,
            jobs=1, output=out2, strict_tol=1e9, print_fn=lambda *_: None,
        )
        assert code1 == EXIT_OK and code2 == EXIT_OK
        # Both runs recompute every point; determinism fields repeat bit-exactly.
        from repro.bench.campaign import DETERMINISM_FIELDS

        rows1 = json.loads(out1.read_text())["rows"]
        rows2 = json.loads(out2.read_text())["rows"]
        for r1, r2 in zip(rows1, rows2):
            for field in DETERMINISM_FIELDS:
                assert r1[field] == r2[field]

    def test_regress_detects_tampered_fingerprint(self, blessed, tmp_path):
        report = bless(TINY.name, blessed, jobs=1, print_fn=lambda *_: None)
        payload = json.loads(blessed.read_text())
        payload["rows"][0]["fingerprint"] = "0" * 64
        blessed.write_text(json.dumps(payload))
        code = run_regress(
            campaign=TINY.name, baseline_path=blessed, runtime_baseline_path=None,
            jobs=1, strict_tol=1e9, print_fn=lambda *_: None,
        )
        assert code == EXIT_HARD
        assert report.points == 2

    def test_regress_malformed_baseline_rows_is_hard(self, blessed, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"rows": ["not-a-row"]}))
        code = run_regress(
            campaign=TINY.name, baseline_path=bad, runtime_baseline_path=None,
            jobs=1, print_fn=lambda *_: None,
        )
        assert code == EXIT_HARD

    def test_regress_missing_baseline_is_hard(self, blessed):
        code = run_regress(
            campaign=TINY.name, baseline_path=blessed, runtime_baseline_path=None,
            jobs=1, print_fn=lambda *_: None,
        )
        assert code == EXIT_HARD

    def test_cached_rerun_is_much_faster_than_cold(self, blessed, tmp_path):
        """The acceptance criterion: a fully-cached re-run well under the cold time."""
        cold = run_campaign(TINY.name, jobs=1, refresh=True)
        warm = run_campaign(TINY.name, jobs=1)
        assert warm.cache_hits == warm.points
        assert warm.wall_s < cold.wall_s
