"""The README lock-family matrix is generated, not hand-written.

``tools/lock_matrix.py`` renders one row per ``@register_scheme`` lock from
the live registry (category, fairness bound, crash contract, swap
compatibility, tunables).  This test fails whenever the committed README
drifts from what the registry says — e.g. a new lock family was registered
without re-running the tool.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

from repro.api.registry import get_scheme, load_builtin_schemes, scheme_names
from repro.fault.plan import recovery_info

TOOLS_DIR = Path(__file__).resolve().parents[2] / "tools"


def _load_tool():
    spec = importlib.util.spec_from_file_location(
        "lock_matrix", TOOLS_DIR / "lock_matrix.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules.setdefault("lock_matrix", module)
    spec.loader.exec_module(module)
    return module


def test_readme_matrix_matches_registry():
    tool = _load_tool()
    current = tool.README.read_text()
    assert tool.BEGIN in current and tool.END in current
    assert tool.render_readme(current) == current, (
        "README lock-family matrix is stale; run "
        "`PYTHONPATH=src python tools/lock_matrix.py`"
    )


def test_matrix_covers_every_registered_scheme():
    load_builtin_schemes()
    tool = _load_tool()
    table = tool.matrix_markdown()
    for name in scheme_names():
        assert f"| `{name}` |" in table
    # The PR 9 lock families appear with their tunable policy knobs.
    assert "| `alock` |" in table and "| `lock-server` |" in table
    assert "`queue_threshold`" in table


def test_matrix_crash_contract_column_tracks_declarations():
    load_builtin_schemes()
    tool = _load_tool()
    table = tool.matrix_markdown()
    for name in scheme_names():
        rec = recovery_info(name)
        if rec.scenarios:
            for scenario in rec.scenarios:
                row = next(l for l in table.splitlines() if l.startswith(f"| `{name}` |"))
                assert scenario in row
    # Undeclared schemes are expected-unavailable, never a silent pass.
    assert "none (crash => unavailable)" in table


def test_matrix_swap_column_tracks_structural_probe():
    load_builtin_schemes()
    tool = _load_tool()
    table = tool.matrix_markdown()
    for name in scheme_names():
        swap = "yes" if get_scheme(name).swap_compatible else "no"
        row = next(l for l in table.splitlines() if l.startswith(f"| `{name}` |"))
        assert f"| {swap} |" in row
    # striped-rw opts out of the plain lock-handle protocol.
    striped = next(l for l in table.splitlines() if l.startswith("| `striped-rw` |"))
    assert "| no |" in striped
