"""Tests for the Cluster/Session facade."""

from __future__ import annotations

import pytest

from repro.api import Cluster, ClusterLock, ParamSpec, UnknownNameError, register_scheme, unregister
from repro.bench.harness import LockBenchResult, run_lock_benchmark
from repro.bench.workloads import LockBenchConfig
from repro.core.rma_rw import RMARWLockSpec


class TestClusterConstruction:
    def test_builds_xc30_machine(self):
        with Cluster(procs=16, procs_per_node=4) as c:
            assert c.num_processes == 16
            assert c.machine.n_levels == 2
            assert "runtime=horizon" in c.describe()

    def test_figure2_topology(self):
        c = Cluster(topology="figure2", procs_per_node=3)
        assert c.machine.n_levels == 3

    def test_unknown_topology_suggests(self):
        with pytest.raises(UnknownNameError) as excinfo:
            Cluster(topology="xc-30")
        assert excinfo.value.suggestion == "xc30"

    def test_unknown_runtime_rejected_eagerly(self):
        with pytest.raises(UnknownNameError):
            Cluster(procs=8, runtime="horizn")

    def test_explicit_machine_wins(self):
        from repro.topology.machine import Machine

        machine = Machine.cluster(nodes=3, procs_per_node=2)
        c = Cluster(procs=999, machine=machine)
        assert c.num_processes == 6


class TestClusterLock:
    def test_lock_builds_registered_spec(self):
        c = Cluster(procs=8, procs_per_node=4)
        lock = c.lock("rma-rw", t_dc=4, t_l=(2, 2), t_r=16)
        assert isinstance(lock, ClusterLock)
        assert isinstance(lock.spec, RMARWLockSpec)
        assert lock.is_rw
        assert lock.spec.t_dc == 4
        assert lock.spec.reader_threshold == 16
        assert lock.window_words == lock.spec.window_words
        assert "rma-rw" in repr(lock)

    def test_unknown_scheme_and_param_errors(self):
        c = Cluster(procs=8, procs_per_node=4)
        with pytest.raises(UnknownNameError):
            c.lock("rma-rv")
        with pytest.raises(UnknownNameError) as excinfo:
            c.lock("rma-rw", t_rr=8)
        assert excinfo.value.suggestion == "t_r"


class TestClusterBench:
    def test_bench_returns_lock_bench_result(self):
        with Cluster(procs=8, procs_per_node=4) as c:
            lock = c.lock("rma-rw", t_l=(2, 2), t_r=16)
            result = c.bench(lock, "wcsb", fw=0.02, iterations=5)
        assert isinstance(result, LockBenchResult)
        assert result.scheme == "rma-rw"
        assert result.benchmark == "wcsb"
        assert result.total_acquires == 8 * 5
        assert result.throughput_mln_per_s > 0

    def test_bench_accepts_scheme_name_with_params(self):
        with Cluster(procs=8, procs_per_node=4) as c:
            result = c.bench("rma-mcs", "ecsb", iterations=4, t_l=(2, 2))
        assert result.scheme == "rma-mcs"

    def test_bench_matches_classic_harness_path_bit_for_bit(self):
        """`Cluster.bench` and the config-driven path must agree exactly."""
        with Cluster(procs=16, procs_per_node=4, seed=1) as c:
            lock = c.lock("rma-rw", t_r=32, t_l=(2, 2))
            facade = c.bench(lock, "wcsb", fw=0.02, iterations=6)
        classic = run_lock_benchmark(
            LockBenchConfig(
                machine=c.machine,
                scheme="rma-rw",
                benchmark="wcsb",
                iterations=6,
                fw=0.02,
                t_r=32,
                t_l=(2, 2),
                seed=1,
            )
        )
        assert facade.latency_mean_us == classic.latency_mean_us
        assert facade.elapsed_us == classic.elapsed_us
        assert facade.op_counts == classic.op_counts
        assert facade.as_row() == classic.as_row()

    def test_bench_on_baseline_runtime_is_bit_identical(self):
        with Cluster(procs=8, procs_per_node=4, runtime="baseline") as c:
            baseline = c.bench("rma-rw", "ecsb", iterations=5, t_l=(2, 2))
        with Cluster(procs=8, procs_per_node=4, runtime="horizon") as c:
            horizon = c.bench("rma-rw", "ecsb", iterations=5, t_l=(2, 2))
        assert baseline.as_row() == horizon.as_row()
        assert baseline.latency_mean_us == horizon.latency_mean_us

    def test_bench_rejects_params_with_prebuilt_lock(self):
        c = Cluster(procs=8, procs_per_node=4)
        lock = c.lock("d-mcs")
        with pytest.raises(TypeError):
            c.bench(lock, "ecsb", t_r=8)


class TestSession:
    def test_session_merges_layouts_and_runs(self):
        with Cluster(procs=8, procs_per_node=4, seed=9) as c:
            lock = c.lock("rma-mcs", t_l=(2, 2))
            session = c.session(lock, extra_words=1)
            assert session.window_words == lock.window_words + 1
            counter_offset = lock.window_words

            def program(ctx):
                handle = lock.make(ctx)
                ctx.barrier()
                for _ in range(3):
                    with handle.held():
                        ctx.accumulate(1, 0, counter_offset)
                        ctx.flush(0)
                ctx.barrier()

            result = session.run(program)
            assert session.window(0).read(counter_offset) == 8 * 3
            assert result.total_ops() > 0

    def test_session_window_init_merges_multiple_specs(self):
        with Cluster(procs=8, procs_per_node=4) as c:
            first = c.lock("d-mcs")
            second = c.lock("ticket")
            # Conflicting offsets (both start at 0) must be caught on merge...
            session = c.session(first, second)
            with pytest.raises(ValueError, match="conflicting"):
                for rank in range(c.num_processes):
                    session.window_init(rank)

    def test_session_rejects_non_spec_objects(self):
        c = Cluster(procs=8, procs_per_node=4)
        with pytest.raises(TypeError):
            c.session(object())

    def test_thread_runtime_cluster_runs_real_threads(self):
        with Cluster(procs=4, procs_per_node=4, runtime="thread") as c:
            lock = c.lock("ticket")
            session = c.session(lock, extra_words=1)
            offset = lock.window_words

            def program(ctx):
                handle = lock.make(ctx)
                ctx.barrier()
                for _ in range(5):
                    with handle.held():
                        value = ctx.get(0, offset)
                        ctx.flush(0)
                        ctx.put(value + 1, 0, offset)
                        ctx.flush(0)
                ctx.barrier()

            session.run(program)
            assert session.window(0).read(offset) == 4 * 5

    def test_thread_runtime_rejects_latency_model(self):
        from repro.rma.latency import LatencyModel

        with pytest.raises(ValueError, match="wall-clock"):
            Cluster(procs=4, runtime="thread", latency_model=LatencyModel.flat(1.0)).session()


class TestCustomSchemeEndToEnd:
    def test_registered_scheme_flows_through_cluster_and_harness(self):
        @register_scheme(
            "test-session-lock",
            category="test",
            params=(ParamSpec("home_rank", int, 0, "home rank"),),
            help="test-only centralized lock",
        )
        def _build(machine, home_rank=0):
            from repro.related.ticket import TicketLockSpec

            return TicketLockSpec(num_processes=machine.num_processes, home_rank=home_rank)

        try:
            with Cluster(procs=8, procs_per_node=4) as c:
                lock = c.lock("test-session-lock", home_rank=2)
                assert lock.spec.home_rank == 2
                result = c.bench(lock, "ecsb", iterations=4)
                assert result.scheme == "test-session-lock"
                assert result.total_acquires == 8 * 4
            # The config-driven path accepts it too (live registry validation).
            config = LockBenchConfig(machine=c.machine, scheme="test-session-lock", iterations=3)
            classic = run_lock_benchmark(config)
            assert classic.throughput_mln_per_s > 0
        finally:
            unregister("scheme", "test-session-lock")
