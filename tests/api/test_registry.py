"""Tests for the self-registering scheme/benchmark/runtime registries."""

from __future__ import annotations

import pytest

from repro.api import (
    ParamSpec,
    UnknownNameError,
    benchmark_names,
    get_benchmark,
    get_runtime,
    get_scheme,
    register_benchmark,
    register_runtime,
    register_scheme,
    runtime_names,
    scheme_names,
    unregister,
)
from repro.bench.workloads import (
    BENCHMARKS,
    MCS_SCHEMES,
    RELATED_MCS_SCHEMES,
    RELATED_RW_SCHEMES,
    RW_SCHEMES,
    SCHEMES,
)


class TestBuiltinCatalogue:
    def test_all_nine_schemes_registered(self):
        for scheme in SCHEMES:
            info = get_scheme(scheme)
            assert info.name == scheme
            assert info.harness

    def test_catalogue_tuples_derive_from_registry(self):
        assert MCS_SCHEMES == scheme_names(category="mcs") == ("fompi-spin", "d-mcs", "rma-mcs")
        assert RW_SCHEMES == scheme_names(category="rw") == ("fompi-rw", "rma-rw")
        assert (
            RELATED_MCS_SCHEMES
            == scheme_names(category="related-mcs")
            == ("ticket", "hbo", "cohort", "alock", "lock-server")
        )
        assert RELATED_RW_SCHEMES == scheme_names(category="related-rw") == ("numa-rw",)

    def test_rw_flags_match_catalogue(self):
        for scheme in RW_SCHEMES + RELATED_RW_SCHEMES:
            assert get_scheme(scheme).rw
        for scheme in MCS_SCHEMES + RELATED_MCS_SCHEMES:
            assert not get_scheme(scheme).rw

    def test_striped_rw_registered_but_not_harness_compatible(self):
        info = get_scheme("striped-rw")
        assert info.rw
        assert not info.harness
        assert "striped-rw" not in SCHEMES

    def test_benchmarks_registered(self):
        assert BENCHMARKS == ("lb", "ecsb", "sob", "wcsb", "warb")
        # The live registry additionally carries the open-loop traffic
        # scenarios; the paper's five always lead the catalogue.
        assert benchmark_names()[:5] == BENCHMARKS
        assert set(benchmark_names(tag="traffic")) >= {"traffic-zipf", "traffic-phased"}
        assert get_benchmark("sob").cs_kind == "single-op"
        assert get_benchmark("wcsb").cs_kind == "counter-compute"
        assert get_benchmark("warb").post_release_wait
        assert not get_benchmark("lb").post_release_wait

    def test_runtimes_registered(self):
        assert set(runtime_names()) >= {"horizon", "baseline", "thread"}
        assert get_runtime("horizon").deterministic
        assert get_runtime("baseline").deterministic
        assert not get_runtime("thread").deterministic

    def test_param_specs_documented(self):
        info = get_scheme("rma-rw")
        names = [p.name for p in info.params]
        assert names == ["t_dc", "t_l", "t_r", "t_w"]
        for param in info.params:
            assert param.help  # every parameter carries a description
        assert info.param("t_r").default == 64
        assert info.param("t_l").sequence


class TestUnknownNames:
    def test_unknown_scheme_lists_and_suggests(self):
        with pytest.raises(ValueError) as excinfo:
            get_scheme("rma-rv")
        message = str(excinfo.value)
        for scheme in SCHEMES:
            assert scheme in message
        assert "Did you mean 'rma-rw'?" in message
        assert excinfo.value.suggestion == "rma-rw"

    def test_unknown_benchmark_suggests(self):
        with pytest.raises(UnknownNameError) as excinfo:
            get_benchmark("wscb")
        assert excinfo.value.suggestion == "wcsb"

    def test_unknown_runtime_suggests(self):
        with pytest.raises(UnknownNameError) as excinfo:
            get_runtime("horizont")
        assert excinfo.value.suggestion == "horizon"

    def test_no_close_match_still_lists_names(self):
        with pytest.raises(UnknownNameError) as excinfo:
            get_scheme("zzzzzz")
        assert excinfo.value.suggestion is None
        assert "registered schemes" in str(excinfo.value)

    def test_unknown_name_error_is_a_value_error(self):
        # Callers that predate the registry catch ValueError; keep that working.
        assert issubclass(UnknownNameError, ValueError)


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_scheme("rma-rw")
            def _clash(machine):  # pragma: no cover - never called
                return None

    def test_custom_scheme_lifecycle(self):
        @register_scheme(
            "test-registry-lock",
            category="test",
            params=(ParamSpec("home_rank", int, 0, "home rank"),),
            help="test-only entry",
        )
        def _build(machine, home_rank=0):
            from repro.related.ticket import TicketLockSpec

            return TicketLockSpec(num_processes=machine.num_processes, home_rank=home_rank)

        try:
            info = get_scheme("test-registry-lock")
            assert info.category == "test"
            assert "test-registry-lock" in scheme_names(category="test")
            machine_names = scheme_names()
            assert "test-registry-lock" in machine_names
        finally:
            unregister("scheme", "test-registry-lock")
        with pytest.raises(UnknownNameError):
            get_scheme("test-registry-lock")

    def test_custom_benchmark_and_runtime_decorators(self):
        @register_benchmark("test-registry-bench", help="test-only")
        def _factory(config, spec, is_rw, shared_offset):  # pragma: no cover
            raise NotImplementedError

        @register_runtime("test-registry-runtime", deterministic=False, help="test-only")
        def _runtime_factory(machine, **kwargs):  # pragma: no cover
            raise NotImplementedError

        try:
            assert get_benchmark("test-registry-bench").program_factory is _factory
            assert "test-registry-runtime" in runtime_names(deterministic=False)
        finally:
            unregister("benchmark", "test-registry-bench")
            unregister("runtime", "test-registry-runtime")


class TestParamSpec:
    def test_scalar_coercion(self):
        spec = ParamSpec("t_r", int, 64, "reader threshold")
        assert spec.coerce("32") == 32
        assert spec.coerce(16.0) == 16
        assert spec.coerce(None) is None

    def test_sequence_coercion(self):
        spec = ParamSpec("t_l", int, None, "locality thresholds", sequence=True)
        assert spec.coerce([2, "4"]) == (2, 4)
        assert spec.coerce(None) is None
        mapping = {2: 8}  # per-level mapping passes through untouched
        assert spec.coerce(mapping) is mapping

    def test_from_config_extractor(self):
        spec = ParamSpec("bound", int, 7, "bound", from_config=lambda cfg: cfg.value * 2)

        class Config:
            value = 5

        assert spec.extract(Config()) == 10
        plain = ParamSpec("bound", int, 7, "bound")
        assert plain.extract(object()) == 7

    def test_build_rejects_unknown_parameter(self):
        info = get_scheme("rma-rw")
        from repro.topology.machine import Machine

        with pytest.raises(UnknownNameError) as excinfo:
            info.build(Machine.cluster(nodes=2, procs_per_node=4), t_rr=8)
        assert excinfo.value.suggestion == "t_r"


class TestTunableParams:
    """The tune suite derives its threshold axes from ParamSpec metadata."""

    def test_numeric_params_are_tunable_by_default(self):
        assert ParamSpec("t_r", int, 64, "threshold").is_tunable
        assert ParamSpec("cap", float, 2.0, "cap").is_tunable
        assert not ParamSpec("mode", str, "fair", "mode").is_tunable

    def test_explicit_flag_overrides_the_inference(self):
        assert not ParamSpec("home_rank", int, 0, "home", tunable=False).is_tunable
        assert ParamSpec("mode", str, "fair", "mode", tunable=True).is_tunable

    def test_builtin_schemes_expose_their_thresholds(self):
        names = {spec.name for spec in get_scheme("rma-rw").tunable_params()}
        assert {"t_dc", "t_r"} <= names
        # ticket's home_rank is a placement choice, not a threshold.
        assert get_scheme("ticket").tunable_params() == ()

    def test_params_from_config_applies_the_overlay(self):
        info = get_scheme("rma-rw")

        class Config:
            t_dc = None
            t_l = None
            t_r = 64
            t_w = None
            params = (("t_r", "16"),)  # coerced through the ParamSpec

        values = info.params_from_config(Config())
        assert values["t_r"] == 16

    def test_overlay_rejects_unknown_names(self):
        info = get_scheme("rma-rw")

        class Config:
            t_dc = None
            t_l = None
            t_r = 64
            t_w = None
            params = (("t_rr", 16),)

        with pytest.raises(UnknownNameError):
            info.params_from_config(Config())


class TestBenchmarkInfoValidation:
    def test_cs_kind_typo_rejected_at_registration(self):
        from repro.api import BenchmarkInfo

        with pytest.raises(UnknownNameError) as excinfo:
            BenchmarkInfo("bad-bench", cs_kind="single_op")
        assert excinfo.value.suggestion == "single-op"

    def test_custom_factory_skips_cs_kind_validation(self):
        from repro.api import BenchmarkInfo

        info = BenchmarkInfo("ok-bench", cs_kind="irrelevant", program_factory=lambda *a: None)
        assert info.program_factory is not None


class TestReloadSafety:
    """importlib.reload re-executes registrations with fresh-but-identically-
    named provider objects; the registry treats that as a refresh, not a clash."""

    def test_same_provider_re_registration_is_a_refresh(self):
        def make_builder():
            # Two distinct function objects with identical module/qualname,
            # exactly what a module reload produces.
            def _build_reload_probe(machine):  # pragma: no cover - never called
                return None

            return _build_reload_probe

        try:
            register_scheme("test-reload-probe", category="test")(make_builder())
            register_scheme("test-reload-probe", category="test")(make_builder())
            assert get_scheme("test-reload-probe").category == "test"
        finally:
            unregister("scheme", "test-reload-probe")

    def test_declarative_benchmark_re_registration_is_a_refresh(self):
        from repro.api import BenchmarkInfo, register_benchmark_info

        try:
            register_benchmark_info(BenchmarkInfo("test-reload-bench", cs_kind="single-op"))
            register_benchmark_info(BenchmarkInfo("test-reload-bench", cs_kind="single-op"))
            assert get_benchmark("test-reload-bench").cs_kind == "single-op"
        finally:
            unregister("benchmark", "test-reload-bench")

    def test_different_provider_claiming_existing_name_still_raises(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_scheme("rma-rw")
            def _imposter(machine):  # pragma: no cover - never called
                return None


class TestHarnessRejectsWallClockScheduler:
    def test_thread_scheduler_rejected_by_harness(self):
        from repro.bench.harness import run_lock_benchmark
        from repro.bench.workloads import LockBenchConfig
        from repro.topology.builder import xc30_like

        config = LockBenchConfig(machine=xc30_like(4, procs_per_node=4), iterations=2)
        with pytest.raises(ValueError, match="wall-clock"):
            run_lock_benchmark(config, scheduler="thread")

    def test_thread_cluster_bench_rejected_but_session_works(self):
        from repro.api import Cluster

        c = Cluster(procs=4, procs_per_node=4, runtime="thread")
        with pytest.raises(ValueError, match="wall-clock"):
            c.bench("ticket", "ecsb", iterations=2)
        session = c.session(c.lock("ticket"))  # sessions stay supported
        assert session.runtime_info.name == "thread"
