"""The README scheduler-selection matrix is generated, not hand-written.

``tools/scheduler_matrix.py`` renders one row per ``@register_runtime``
backend from the live registry (name, determinism flag, help string).  This
test fails whenever the committed README drifts from what the registry says
— e.g. a new runtime was registered without re-running the tool.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

from repro.api.registry import runtime_names

TOOLS_DIR = Path(__file__).resolve().parents[2] / "tools"


def _load_tool():
    spec = importlib.util.spec_from_file_location(
        "scheduler_matrix", TOOLS_DIR / "scheduler_matrix.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    sys.modules.setdefault("scheduler_matrix", module)
    spec.loader.exec_module(module)
    return module


def test_readme_matrix_matches_registry():
    tool = _load_tool()
    current = tool.README.read_text()
    assert tool.BEGIN in current and tool.END in current
    assert tool.render_readme(current) == current, (
        "README scheduler matrix is stale; run "
        "`PYTHONPATH=src python tools/scheduler_matrix.py`"
    )


def test_matrix_covers_every_registered_runtime():
    tool = _load_tool()
    table = tool.matrix_markdown()
    for name in runtime_names():
        assert f"| `{name}` |" in table
    # Non-deterministic backends are present but flagged.
    assert "| `thread` | no |" in table


def test_matrix_fault_injection_column_tracks_registry():
    from repro.api.registry import get_runtime

    tool = _load_tool()
    table = tool.matrix_markdown()
    assert "| fault injection |" in table.splitlines()[0]
    for name in runtime_names():
        info = get_runtime(name)
        faults = "yes" if info.fault_injection else "no"
        assert f"| `{name}` | {'yes' if info.deterministic else 'no'} | {faults} |" in table
    # Every deterministic core honors FaultPlan; the wall-clock backend does not.
    assert "| `horizon` | yes | yes |" in table
    assert "| `thread` | no | no |" in table
