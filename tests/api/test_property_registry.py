"""Registry-wide property tests (ISSUE 2 satellite).

For every registered scheme at P in {8, 32}:

* ``init_window(rank)`` only touches offsets below ``window_words``;
* the per-process handles satisfy the declared ``LockHandle`` /
  ``RWLockHandle`` protocol (and actually provide one acquire/release);
* the registry's parameter specs round-trip through ``Cluster.lock(**params)``.
"""

from __future__ import annotations

import pytest

from repro.api import Cluster, get_scheme, scheme_names
from repro.core.lock_base import LockHandle, RWLockHandle

PROCESS_COUNTS = (8, 32)
PROCS_PER_NODE = 4

#: Sample values (per parameter name) used when a parameter has no default;
#: chosen to be valid on every machine shape this test sweeps.
SAMPLE_VALUES = {
    "t_dc": 4,
    "t_l": (2, 2),
    "t_r": 16,
    "t_w": 4,
    "max_local_passes": 3,
    "home_rank": 1,
    "local_cap_us": 1.5,
    "remote_cap_us": 12.0,
    "min_backoff_us": 0.4,
    "max_backoff_us": 6.0,
}


def _sample_params(info):
    params = {}
    for spec in info.params:
        if spec.name in SAMPLE_VALUES:
            params[spec.name] = SAMPLE_VALUES[spec.name]
        elif spec.default is not None:
            params[spec.name] = spec.default
    return params


@pytest.mark.parametrize("procs", PROCESS_COUNTS)
@pytest.mark.parametrize("scheme", scheme_names())
class TestEverySchemeAtScale:
    def test_init_window_offsets_within_window(self, scheme, procs):
        cluster = Cluster(procs=procs, procs_per_node=PROCS_PER_NODE)
        info = get_scheme(scheme)
        spec = info.build(cluster.machine, **_sample_params(info))
        words = spec.window_words
        assert words >= 1
        for rank in range(procs):
            init = spec.init_window(rank)
            for offset, value in init.items():
                assert 0 <= offset < words, (
                    f"{scheme}: rank {rank} initializes offset {offset} outside "
                    f"its declared window of {words} words"
                )
                assert isinstance(value, int)

    def test_parameter_specs_round_trip_through_cluster_lock(self, scheme, procs):
        cluster = Cluster(procs=procs, procs_per_node=PROCS_PER_NODE)
        info = get_scheme(scheme)
        params = _sample_params(info)
        lock = cluster.lock(scheme, **params)
        assert lock.name == scheme
        assert lock.is_rw == info.rw
        for name, value in params.items():
            expected = info.param(name).coerce(value)
            # Specs expose their parameters under matching attribute names
            # (possibly post-processed, e.g. rma-rw normalizes t_l); only the
            # verbatim-stored ones are compared.
            if hasattr(lock.spec, name):
                assert getattr(lock.spec, name) == expected, (
                    f"{scheme}: parameter {name} did not round-trip"
                )


@pytest.mark.parametrize("procs", PROCESS_COUNTS)
@pytest.mark.parametrize("scheme", scheme_names(harness=True))
def test_handles_satisfy_declared_protocol(scheme, procs):
    """Handles implement the protocol their registration declares, live."""
    cluster = Cluster(procs=procs, procs_per_node=PROCS_PER_NODE)
    info = get_scheme(scheme)
    lock = cluster.lock(scheme, **_sample_params(info))
    session = cluster.session(lock)
    expected_type = RWLockHandle if info.rw else LockHandle
    observations = []

    def program(ctx):
        handle = lock.make(ctx)
        ok = isinstance(handle, expected_type)
        ctx.barrier()
        # Rank 0 exercises one full acquire/release cycle of each declared side.
        if ctx.rank == 0:
            if info.rw:
                with handle.writing():
                    pass
                with handle.reading():
                    pass
            else:
                with handle.held():
                    pass
        ctx.barrier()
        return ok

    result = session.run(program)
    observations.extend(result.returns)
    assert all(observations), f"{scheme}: handle does not satisfy {expected_type.__name__}"
